"""Ablation — analytic traffic model vs exact LRU cache simulation.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``ablation_model`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter ablation_model``.
"""

from repro.bench.harness import run_for_pytest


def test_ablation_model(benchmark):
    run_for_pytest("ablation_model", benchmark)
