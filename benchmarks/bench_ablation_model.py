"""Ablation — analytic traffic model vs exact LRU cache simulation.

Quantifies the substitution at the heart of this reproduction: the
analytic working-set/popularity model must (a) track the exact
simulator's hit rates and (b) be orders of magnitude faster, since every
figure sweep calls it hundreds of times.

Expected shape: per-structure alpha agreement within ~0.15 absolute, and
an analytic-vs-exact runtime ratio well above 10x.
"""

import time

import numpy as np
import pytest

from repro.bench import render_rows, write_result
from repro.kernels import get_kernel
from repro.machine import (
    STRUCTURES,
    CacheHierarchy,
    CacheLevel,
    MachineSpec,
    estimate_traffic,
    mttkrp_trace,
)
from repro.tensor import poisson_tensor


def _machine():
    return MachineSpec(
        name="ablation",
        frequency_hz=1e9,
        caches=(
            CacheLevel("L1", 8 * 1024, 128, 4),
            CacheLevel("L2", 32 * 1024, 128, 8),
            CacheLevel("L3", 128 * 1024, 128, 8),
        ),
        read_bandwidth=10e9,
        write_bandwidth=5e9,
        flops_per_cycle=8,
        loadstore_per_cycle=2,
        vector_doubles=2,
        vector_registers=64,
    )


CONFIGS = [
    ("splatt", {}),
    ("mb", {"block_counts": (1, 4, 2)}),
    ("rankb", {"n_rank_blocks": 4}),
]


def run_ablation():
    tensor = poisson_tensor((150, 200, 170), 25_000, seed=3, concentration=0.2)
    machine = _machine()
    rank = 32
    rows = []
    for name, params in CONFIGS:
        plan = get_kernel(name).prepare(tensor, 0, **params)
        t0 = time.perf_counter()
        est = estimate_traffic(plan, rank, machine)
        t_analytic = time.perf_counter() - t0
        t0 = time.perf_counter()
        lines, tags = mttkrp_trace(plan, rank, machine)
        exact = CacheHierarchy(machine).run_trace(lines, tags)
        t_exact = time.perf_counter() - t0
        exact_b = exact.structure_hit_rate(STRUCTURES["B"])
        exact_c = exact.structure_hit_rate(STRUCTURES["C"])
        rows.append(
            {
                "kernel": name,
                "alpha_B_analytic": round(est.b.alpha, 3),
                "alpha_B_exact": round(exact_b, 3),
                "alpha_C_analytic": round(est.c.alpha, 3),
                "alpha_C_exact": round(exact_c, 3),
                "analytic_ms": round(t_analytic * 1e3, 2),
                "exact_ms": round(t_exact * 1e3, 2),
                "speedup": round(t_exact / max(t_analytic, 1e-9), 1),
            }
        )
    return rows


def test_ablation_model_accuracy(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_rows(rows, title="Ablation: analytic traffic model vs exact LRU")
    write_result("ablation_model", text)
    print("\n" + text)

    for row in rows:
        assert abs(row["alpha_B_analytic"] - row["alpha_B_exact"]) < 0.15
        assert row["speedup"] > 10
