"""Ablation — dimension-tree memoization vs three independent MTTKRPs.

Quantifies the related-work memoization trade-off (HyperTensor's
dimension trees, reference [17]): flops per ALS sweep, the memo's
storage overhead, and wall-clock per sweep for the pure-NumPy drivers.

Expected shape: the memoized sweep needs fewer flops whenever pairs are
reused, at a storage cost of ``8*R*P`` bytes; wall clock follows the
flop saving (both drivers are NumPy-vectorized, so relative flops show
through).  Trajectories are identical (asserted).
"""

import time

import numpy as np

from repro.bench import render_rows, write_result
from repro.cpd import cp_als, cp_als_dimtree, init_factors
from repro.cpd.dimtree import DimTreePlan
from repro.tensor import SplattTensor, load_dataset
from repro.util import format_bytes

RANK = 64


def run_ablation():
    rows = []
    for name in ("poisson2", "poisson3"):
        tensor = load_dataset(name, nnz=300_000)
        plan = DimTreePlan(tensor)
        standard_flops = 0.0
        for mode in range(3):
            s = SplattTensor.from_coo(tensor, output_mode=mode)
            standard_flops += 2.0 * RANK * (s.nnz + s.n_fibers)
        memo_flops = plan.flops_per_sweep(RANK)

        init = init_factors(tensor, RANK, seed=1)
        t0 = time.perf_counter()
        standard = cp_als(
            tensor, RANK, n_iters=3, tol=0.0, init=[f.copy() for f in init]
        )
        t_standard = (time.perf_counter() - t0) / 3
        t0 = time.perf_counter()
        memoized = cp_als_dimtree(
            tensor, RANK, n_iters=3, tol=0.0, init=[f.copy() for f in init]
        )
        t_memo = (time.perf_counter() - t0) / 3
        np.testing.assert_allclose(memoized.fits, standard.fits, rtol=1e-9)

        rows.append(
            {
                "dataset": name,
                "nnz": tensor.nnz,
                "pairs": plan.n_pairs,
                "flops_standard": f"{standard_flops:.3g}",
                "flops_memoized": f"{memo_flops:.3g}",
                "flop_ratio": round(standard_flops / memo_flops, 2),
                "memo_storage": format_bytes(plan.memo_bytes(RANK)),
                "sweep_ms_standard": round(t_standard * 1e3, 1),
                "sweep_ms_memoized": round(t_memo * 1e3, 1),
            }
        )
    return rows


def test_ablation_dimtree(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_rows(rows, title="Ablation: dimension-tree memoization (R=64)")
    write_result("ablation_dimtree", text)
    print("\n" + text)

    for row in rows:
        assert row["flop_ratio"] > 1.0
        assert row["pairs"] < row["nnz"]
