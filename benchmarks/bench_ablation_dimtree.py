"""Ablation — dimension-tree memoization vs three independent MTTKRPs.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``ablation_dimtree`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter ablation_dimtree``.
"""

from repro.bench.harness import run_for_pytest


def test_ablation_dimtree(benchmark):
    run_for_pytest("ablation_dimtree", benchmark)
