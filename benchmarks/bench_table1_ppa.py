"""Table I — pressure points for SPLATT MTTKRP (Poisson3, rank 128, one
POWER8 core).

Expected shape (paper Section IV-B): savings ordered
type 1 (B removed) > type 2 (B in L1) > type 3 (no accumulator loads)
> type 4 (C removed), with type 5 (flops moved inward) ~ no change.
Paper values: 37.1%, 30.3%, 18.8%, 6.6%, -1.5%.
"""

from repro.bench import experiment_table1, render_rows, write_result


def test_table1_ppa(benchmark):
    rows = benchmark.pedantic(experiment_table1, rounds=1, iterations=1)
    text = render_rows(rows, title="Table I: pressure points (modeled)")
    write_result("table1_ppa", text)
    print("\n" + text)

    saving = {r["type"]: r["saving_%"] for r in rows}
    assert saving[1] > saving[2] > saving[3] > saving[4]
    assert abs(saving[5]) < 10.0
    assert saving[6] == 0.0
