"""Table I — pressure points for SPLATT MTTKRP (Poisson3, rank 128, one core).

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``table1_ppa`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter table1_ppa``.
"""

from repro.bench.harness import run_for_pytest


def test_table1_ppa(benchmark):
    run_for_pytest("table1_ppa", benchmark)
