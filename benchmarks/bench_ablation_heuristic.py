"""Ablation — the Section V-C greedy heuristic vs exhaustive search.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``ablation_heuristic`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter ablation_heuristic``.
"""

from repro.bench.harness import run_for_pytest


def test_ablation_heuristic(benchmark):
    run_for_pytest("ablation_heuristic", benchmark)
