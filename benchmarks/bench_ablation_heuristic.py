"""Ablation — the Section V-C greedy heuristic vs exhaustive search.

The paper's future-work section concedes the heuristic only finds local
minima; this bench quantifies the gap on a moderate configuration space
(all MB grids with power-of-two counts up to 16 per mode, crossed with
rank strip widths).

Expected shape: the heuristic reaches within ~15% of the exhaustive
optimum while evaluating an order of magnitude fewer configurations.
"""

import itertools

from repro.bench import render_rows, write_result
from repro.blocking import RankBlocking, select_blocking
from repro.machine import power8_socket
from repro.perf import ConfigPlanner, predict_time
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS

RANK = 256


def run_ablation():
    rows = []
    for name in ("poisson2", "nell2"):
        tensor = load_dataset(name)
        machine = power8_socket().scaled(DATASETS[name].machine_scale)
        planner = ConfigPlanner(tensor, 0)
        evaluate = planner.evaluator(RANK, machine)

        choice = select_blocking(tensor, 0, RANK, evaluate)
        heuristic_cost = choice.cost
        heuristic_evals = choice.n_evaluations

        counts_axis = [1, 2, 4, 8, 16]
        rb_axis = [None, 16, 32, 64, 128]
        best = float("inf")
        n_exhaustive = 0
        for counts in itertools.product(counts_axis, repeat=3):
            if any(c > s for c, s in zip(counts, tensor.shape)):
                continue
            for cols in rb_axis:
                rb = None if cols is None else RankBlocking(block_cols=cols)
                key = None if counts == (1, 1, 1) else counts
                cost = evaluate(key, rb)
                n_exhaustive += 1
                best = min(best, cost)

        rows.append(
            {
                "dataset": name,
                "heuristic_ms": round(heuristic_cost * 1e3, 4),
                "exhaustive_ms": round(best * 1e3, 4),
                "gap_%": round((heuristic_cost / best - 1.0) * 100, 2),
                "heuristic_evals": heuristic_evals,
                "exhaustive_evals": n_exhaustive,
            }
        )
    return rows


def test_ablation_heuristic(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_rows(rows, title="Ablation: V-C heuristic vs exhaustive search")
    write_result("ablation_heuristic", text)
    print("\n" + text)

    for row in rows:
        assert row["gap_%"] < 25.0
        assert row["heuristic_evals"] < row["exhaustive_evals"] / 3
