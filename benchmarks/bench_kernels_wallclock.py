"""Supplementary: real wall-clock timings of the vectorized kernels on
this host (pytest-benchmark, many rounds).

These do NOT reproduce the paper's figures — pure-Python kernels are
interpreter-bound, so cache-blocking effects are invisible here (the
reason the repository's primary instrument is the machine model).  They
document the kernels' relative Python-level costs and guard against
performance regressions in the vectorized implementations.

Expected shape: SPLATT beats COO (fiber compression saves flops and
scatter work) and all kernels are within a small factor of each other.
"""

import numpy as np
import pytest

from repro.kernels import get_kernel
from repro.tensor import poisson_tensor

RANK = 64


@pytest.fixture(scope="module")
def problem():
    tensor = poisson_tensor((300, 400, 350), 200_000, seed=1)
    rng = np.random.default_rng(2)
    factors = [rng.standard_normal((n, RANK)) for n in tensor.shape]
    return tensor, factors


KERNEL_PARAMS = {
    "coo": {},
    "splatt": {},
    "csf": {},
    "mb": {"block_counts": (1, 8, 4)},
    "rankb": {"n_rank_blocks": 4},
    "mb+rankb": {"block_counts": (1, 8, 4), "n_rank_blocks": 4},
}


@pytest.mark.parametrize("name", sorted(KERNEL_PARAMS))
def test_kernel_wallclock(benchmark, problem, name):
    tensor, factors = problem
    kernel = get_kernel(name)
    plan = kernel.prepare(tensor, 0, **KERNEL_PARAMS[name])
    out = np.zeros((tensor.shape[0], RANK))
    result = benchmark(kernel.execute, plan, factors, out)
    assert np.isfinite(result).all()


def test_prepare_wallclock(benchmark, problem):
    """Plan preparation (the amortized setup cost)."""
    tensor, _ = problem
    kernel = get_kernel("splatt")
    plan = benchmark(kernel.prepare, tensor, 0)
    assert plan.nnz == tensor.nnz
