"""Supplementary — real wall-clock timings of the vectorized kernels.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``kernels_wallclock`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter kernels_wallclock``.
"""

from repro.bench.harness import run_for_pytest


def test_kernels_wallclock(benchmark):
    run_for_pytest("kernels_wallclock", benchmark)
