"""Supplementary — the serve tier: open-loop latency/throughput of the
``repro.serve`` decomposition service and warm-config amortization.

Thin declaration: the experiment bodies, parameters, checks, and
rendering live in the registered benchmarks ``serve_openloop`` and
``serve_warm_cache`` (see ``repro.bench.registry``); these wrappers only
hook them into pytest-benchmark.  ``serve_openloop`` drives a fixed
arrival-rate (open-loop) mixed float32/float64 workload with two
concurrent clients against an in-process server and verifies every
completed job bitwise against a direct serial kernel execution;
``serve_warm_cache`` pins the tune-once-then-hit amortization contract
and the cross-dtype cache gate.  Run standalone with
``repro bench run --filter serve``.
"""

from repro.bench.harness import run_for_pytest


def test_serve_openloop(benchmark):
    run_for_pytest("serve_openloop", benchmark)


def test_serve_warm_cache(benchmark):
    run_for_pytest("serve_warm_cache", benchmark)
