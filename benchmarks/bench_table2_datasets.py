"""Table II — data-set inventory plus the Section III-C memory comparison.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``table2_datasets`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter table2_datasets``.
"""

from repro.bench.harness import run_for_pytest


def test_table2_datasets(benchmark):
    run_for_pytest("table2_datasets", benchmark)
