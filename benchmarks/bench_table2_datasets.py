"""Table II — the data-set inventory, paper stats beside the scaled
stand-ins, plus the Section III-C memory-footprint comparison
(COO = 32*nnz bytes vs SPLATT = 16 + 8I + 16F + 16nnz bytes).

Expected shape: SPLATT storage < COO storage for every data set (the
fiber compression always wins at these fiber lengths).
"""

from repro.bench import experiment_table2, render_rows, write_result


def test_table2_datasets(benchmark):
    rows = benchmark.pedantic(experiment_table2, rounds=1, iterations=1)
    text = render_rows(rows, title="Table II: data sets (paper vs stand-in)")
    write_result("table2_datasets", text)
    print("\n" + text)

    assert len(rows) == 7
    for row in rows:
        assert row["splatt_MiB"] < row["coo_MiB"]
        assert 0 < row["fibers_per_nnz"] <= 1.0
