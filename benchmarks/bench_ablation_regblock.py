"""Ablation — register blocking on/off inside rank blocking.

Isolates the load-unit half of the paper's optimization: the same rank
strips, with and without the accumulator held in registers.  The paper's
Table I (type 3) attributes ~19% of the baseline runtime to accumulator
load pressure, so the register-blocked variant must show a material
load-time reduction at every strip count.

Expected shape: load-unit time drops substantially when register
blocking is on; total modeled time improves; the gain persists across
strip counts.
"""

from repro.bench import render_rows, write_result
from repro.blocking import RankBlocking
from repro.kernels import get_kernel
from repro.machine import estimate_loads, power8_socket
from repro.perf import predict_time
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS


def run_ablation():
    tensor = load_dataset("poisson3")
    machine = power8_socket().scaled(DATASETS["poisson3"].machine_scale)
    rank = 256
    base_plan = get_kernel("splatt").prepare(tensor, 0)
    base = predict_time(base_plan, rank, machine)

    rows = [
        {
            "config": "baseline (no RankB)",
            "load_ms": round(base.load_time * 1e3, 3),
            "total_ms": round(base.total * 1e3, 3),
            "speedup": "1.00x",
        }
    ]
    for n_blocks in (1, 4, 16):
        plan = get_kernel("rankb").prepare(tensor, 0, n_rank_blocks=n_blocks)
        with_reg = predict_time(plan, rank, machine)
        # "Without register blocking": charge the baseline's accumulator
        # micro-ops back onto the strip loop.
        loads_with = estimate_loads(plan, rank, machine)
        base_loads = estimate_loads(base_plan, rank, machine)
        ops_without = (
            loads_with.total_ops
            - loads_with.stream_loads
            - loads_with.b_loads
            + base_loads.stream_loads
            + base_loads.b_loads
            + base_loads.acc_loads
            + base_loads.acc_stores
        )
        load_time_without = ops_without / machine.loadstore_rate
        total_without = with_reg.total - with_reg.load_time + load_time_without
        rows.append(
            {
                "config": f"RankB n={n_blocks}, RegB on",
                "load_ms": round(with_reg.load_time * 1e3, 3),
                "total_ms": round(with_reg.total * 1e3, 3),
                "speedup": f"{base.total / with_reg.total:.2f}x",
            }
        )
        rows.append(
            {
                "config": f"RankB n={n_blocks}, RegB off",
                "load_ms": round(load_time_without * 1e3, 3),
                "total_ms": round(total_without * 1e3, 3),
                "speedup": f"{base.total / total_without:.2f}x",
            }
        )
    return rows


def test_ablation_regblock(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_rows(rows, title="Ablation: register blocking on/off")
    write_result("ablation_regblock", text)
    print("\n" + text)

    by_config = {r["config"]: r for r in rows}
    for n in (1, 4, 16):
        on = by_config[f"RankB n={n}, RegB on"]
        off = by_config[f"RankB n={n}, RegB off"]
        assert on["load_ms"] < off["load_ms"]
        assert on["total_ms"] < off["total_ms"]
