"""Ablation — register blocking on/off inside rank blocking.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``ablation_regblock`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter ablation_regblock``.
"""

from repro.bench.harness import run_for_pytest


def test_ablation_regblock(benchmark):
    run_for_pytest("ablation_regblock", benchmark)
