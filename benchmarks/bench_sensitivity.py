"""Sensitivity — robustness of the reproduced conclusions to calibrated knobs.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``sensitivity`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter sensitivity``.
"""

from repro.bench.harness import run_for_pytest


def test_sensitivity(benchmark):
    run_for_pytest("sensitivity", benchmark)
