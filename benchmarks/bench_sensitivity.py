"""Sensitivity analysis — are the reproduced conclusions robust to the
machine model's calibrated knobs?

The two knobs that were *calibrated* (rather than taken from the paper's
Section VI-A or the POWER8 spec) are the L3 gather bandwidth (default
2x DRAM) and the per-core sustainable DRAM bandwidth (20 GB/s read).
This bench perturbs them and checks that the headline qualitative
results survive:

* Table I's ordering (B removal > B-in-L1 > accumulator loads > C
  removal; flops ~ 0);
* Figure 4's Poisson2 interior sweet spot (blocking helps, with a
  maximum away from both ends).

Expected shape: every perturbation preserves both properties — the
conclusions depend on structure, not on the tuned constants.
"""

import dataclasses

from repro.bench import render_rows, write_result
from repro.blocking import RankBlocking
from repro.kernels import get_kernel
from repro.machine import power8, power8_socket
from repro.perf import predict_time, run_ppa
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS

L3_RATIOS = (1.5, 2.0, 3.0)
RANK = 512


def run_sensitivity():
    t3 = load_dataset("poisson3")
    t2 = load_dataset("poisson2")
    plan3 = get_kernel("splatt").prepare(t3, 0)
    planner2 = {
        n: get_kernel("rankb").prepare(t2, 0, rank_blocking=RankBlocking(n_blocks=n))
        for n in (1, 2, 4, 8, 16, 32)
    }
    base2 = get_kernel("splatt").prepare(t2, 0)

    rows = []
    for ratio in L3_RATIOS:
        m1 = power8(1).scaled(DATASETS["poisson3"].machine_scale)
        m1 = dataclasses.replace(m1, l3_read_bandwidth=ratio * m1.read_bandwidth)
        savings = [r.saving for r in run_ppa(plan3, 128, m1)]
        ordering_ok = (
            savings[0] > savings[1] > savings[2] > savings[3]
            and abs(savings[4]) < 0.10
        )

        ms = power8_socket().scaled(DATASETS["poisson2"].machine_scale)
        ms = dataclasses.replace(ms, l3_read_bandwidth=ratio * ms.read_bandwidth)
        baseline = predict_time(base2, RANK, ms).total
        perf = {
            n: baseline / predict_time(p, RANK, ms).total
            for n, p in planner2.items()
        }
        values = [perf[n] for n in (1, 2, 4, 8, 16, 32)]
        peak_idx = values.index(max(values))
        sweet_spot_ok = 0 < peak_idx < len(values) - 1 and max(values) > 1.3

        rows.append(
            {
                "l3_ratio": ratio,
                "table1_savings_%": " / ".join(f"{s * 100:.0f}" for s in savings[:4]),
                "table1_order_ok": ordering_ok,
                "fig4_peak_blocks": (1, 2, 4, 8, 16, 32)[peak_idx],
                "fig4_peak_perf": round(max(values), 2),
                "fig4_sweet_spot_ok": sweet_spot_ok,
            }
        )
    return rows


def test_sensitivity(benchmark):
    rows = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    text = render_rows(rows, title="Sensitivity: L3 gather-bandwidth ratio")
    write_result("sensitivity", text)
    print("\n" + text)

    for row in rows:
        assert row["table1_order_ok"], row
        assert row["fig4_sweet_spot_ok"], row
