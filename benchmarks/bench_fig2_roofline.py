"""Figure 2 — arithmetic intensity of SPLATT MTTKRP vs rank, one series
per cache hit rate (Equation 3).

Expected shape (paper Section IV-A): intensity grows with rank and
saturates at R/8 only for alpha = 1; at alpha = 0.95 it spans ~1.43
(R=16) to ~4.90 (R=2048) — below the 6-12 system balance of current
processors, hence "memory bound in most cases".
"""

from repro.bench import experiment_fig2, render_series, write_result


def test_fig2_roofline(benchmark):
    data = benchmark.pedantic(experiment_fig2, rounds=1, iterations=1)
    text = render_series(
        data["x_label"],
        data["x_values"],
        data["series"],
        title="Figure 2: arithmetic intensity (flops/byte) vs rank",
    )
    write_result("fig2_roofline", text)
    print("\n" + text)

    # Shape assertions from the paper's prose.
    a95 = data["series"]["alpha=0.95"]
    assert abs(a95[0] - 1.43) < 0.01
    assert abs(a95[-1] - 4.90) < 0.01
    a1 = data["series"]["alpha=1"]
    assert abs(a1[-1] - 2048 / 8) < 0.5
