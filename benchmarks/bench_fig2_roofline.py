"""Figure 2 — arithmetic intensity of SPLATT MTTKRP vs rank (Eq. 3).

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``fig2_roofline`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter fig2_roofline``.
"""

from repro.bench.harness import run_for_pytest


def test_fig2_roofline(benchmark):
    run_for_pytest("fig2_roofline", benchmark)
