"""Supplementary — blocking speedups on a 4-mode tensor.

The paper's claim that its methodology "can trivially be extended to
higher-order data", exercised: the general blocked CSF kernel versus the
unblocked CSF baseline on a 4-mode clustered tensor, across ranks,
through the machine model.

Expected shape: the same qualitative behaviour as the 3-mode Figure 6 —
speedups grow with rank as the baseline's factor rows fall out of cache,
and blocking plus rank strips recover the residency.
"""

from repro.bench import render_series, write_result
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.perf import predict_time
from repro.tensor import clustered_tensor

RANKS = (16, 64, 256, 1024)


def run_experiment():
    tensor = clustered_tensor(
        (600, 500, 800, 52), 400_000, n_clusters=48, seed=5
    )
    machine = power8_socket().scaled(1.0 / 32.0)
    base_plan = get_kernel("csf").prepare(tensor, 0)
    blocked_plan = get_kernel("csf-blocked").prepare(
        tensor, 0, block_counts=(1, 4, 8, 1), n_rank_blocks=4
    )
    speedups = []
    for rank in RANKS:
        t_base = predict_time(base_plan, rank, machine).total
        t_blocked = predict_time(blocked_plan, rank, machine).total
        speedups.append(round(t_base / t_blocked, 3))
    return {
        "x_label": "rank",
        "x_values": list(RANKS),
        "series": {"blocked CSF vs CSF": speedups},
    }


def test_csf_higher_order(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = render_series(
        data["x_label"],
        data["x_values"],
        data["series"],
        title="Higher-order (4-mode) blocking speedup",
    )
    write_result("csf_higher_order", text)
    print("\n" + text)

    s = data["series"]["blocked CSF vs CSF"]
    assert s[-1] > 1.2  # blocking pays at high rank
    assert s[-1] >= s[0]  # and grows with rank
