"""Supplementary — blocking speedups on a 4-mode tensor.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``csf_higher_order`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter csf_higher_order``.
"""

from repro.bench.harness import run_for_pytest


def test_csf_higher_order(benchmark):
    run_for_pytest("csf_higher_order", benchmark)
