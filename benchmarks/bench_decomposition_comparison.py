"""Supplementary — coarse vs medium-grained vs 4D decompositions.

The paper's related-work hierarchy made concrete: coarse-grained
(DFacTo/SALS, one partitioned mode + fully replicated factors),
medium-grained (distributed SPLATT, all modes partitioned), and the
paper's 4D rank-extension, compared on modeled time and communication
volume per MTTKRP across process counts.

Expected shape: coarse-grained's communication volume grows linearly
with p (factor replication) while medium-grained's grows sublinearly, so
medium-grained overtakes as p grows; the 4D grid then beats plain
medium-grained at the largest p by holding more nonzeros per process.
"""

import numpy as np

from repro.bench import render_rows, write_result
from repro.dist import (
    ProcessGrid,
    coarse_grain_decompose,
    coarse_grained_mttkrp,
    distributed_mttkrp,
    medium_grain_decompose,
    network_for_dataset,
)
from repro.dist.comm import SimCluster
from repro.dist.driver import choose_grid
from repro.machine import power8_socket
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS

DATASET = "nell2"
RANK = 128


def run_experiment():
    info = DATASETS[DATASET]
    tensor = load_dataset(DATASET)
    machine = power8_socket().scaled(info.machine_scale)
    network = network_for_dataset(info)
    rng = np.random.default_rng(0)
    factors = [rng.standard_normal((n, RANK)) for n in tensor.shape]

    rows = []
    for p in (4, 16, 64):
        coarse = coarse_grained_mttkrp(
            coarse_grain_decompose(tensor, p, mode=0),
            list(factors),
            machine,
            SimCluster(p, network),
        )
        dims = choose_grid(p, tensor.shape)
        medium = distributed_mttkrp(
            medium_grain_decompose(tensor, ProcessGrid(dims), seed=0),
            factors,
            0,
            machine,
            SimCluster(p, network),
        )
        dims4 = choose_grid(p // 4, tensor.shape) if p >= 8 else dims
        groups = 4 if p >= 8 else 1
        four_d = distributed_mttkrp(
            medium_grain_decompose(tensor, ProcessGrid(dims4), seed=0),
            factors,
            0,
            machine,
            SimCluster(p, network),
            rank_groups=groups,
        )
        for label, res in (
            ("coarse", coarse),
            ("medium", medium),
            ("4D", four_d),
        ):
            rows.append(
                {
                    "procs": p,
                    "scheme": label,
                    "grid": res.grid_label,
                    "time_ms": round(res.total_time * 1e3, 4),
                    "comm_KiB": round(res.comm_bytes / 1024, 1),
                }
            )
    return rows


def test_decomposition_comparison(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = render_rows(
        rows, title=f"Decomposition comparison ({DATASET}, R={RANK})"
    )
    write_result("decomposition_comparison", text)
    print("\n" + text)

    by = {(r["procs"], r["scheme"]): r for r in rows}
    # Coarse replication volume grows ~linearly with p.
    assert by[(64, "coarse")]["comm_KiB"] > 8 * by[(4, "coarse")]["comm_KiB"]
    # Medium-grained beats coarse at scale.
    assert by[(64, "medium")]["time_ms"] < by[(64, "coarse")]["time_ms"]
    # The 4D grid wins at the largest p.
    assert by[(64, "4D")]["time_ms"] <= by[(64, "medium")]["time_ms"] * 1.05
