"""Supplementary — coarse vs medium-grained vs 4D decompositions.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``decomposition_comparison`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter decomposition_comparison``.
"""

from repro.bench.harness import run_for_pytest


def test_decomposition_comparison(benchmark):
    run_for_pytest("decomposition_comparison", benchmark)
