"""Figure 4 — performance vs RankB block size for Poisson2 and Poisson3
at rank 512 (larger block size = fewer blocks).

Expected shape (paper Section VI-B): Poisson2 improves at every block
count with an interior sweet spot around 16 blocks; Poisson3 peaks at a
small block count and degrades as blocks multiply (the per-strip tensor
re-streaming overtakes the residency gains).
"""

from repro.bench import experiment_fig4, render_series, write_result


def test_fig4_rankb_sweep(benchmark):
    data = benchmark.pedantic(experiment_fig4, rounds=1, iterations=1)
    text = render_series(
        data["x_label"],
        data["x_values"],
        data["series"],
        title="Figure 4: relative performance vs RankB blocks (R=512, baseline=1.0)",
    )
    write_result("fig4_rankb_sweep", text)
    print("\n" + text)

    p2 = data["series"]["poisson2"]
    p3 = data["series"]["poisson3"]
    # Poisson2: always at least baseline, interior maximum.
    assert min(p2) >= 0.95
    assert max(p2) > 1.5
    assert p2.index(max(p2)) not in (0,)
    # Poisson3: interior maximum, declining tail.
    peak3 = p3.index(max(p3))
    assert 0 < peak3 < len(p3) - 1
    assert p3[-1] < max(p3)
