"""Figure 4 — performance vs RankB block size (Poisson2/Poisson3, R=512).

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``fig4_rankb_sweep`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter fig4_rankb_sweep``.
"""

from repro.bench.harness import run_for_pytest


def test_fig4_rankb_sweep(benchmark):
    run_for_pytest("fig4_rankb_sweep", benchmark)
