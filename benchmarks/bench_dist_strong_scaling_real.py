"""Process-backend distributed strong scaling vs the BKR lower bound.

Thin declaration: the experiment body, parameters, parity/byte checks,
and rendering all live in the registered benchmark
``dist_strong_scaling_real`` (see ``repro.bench.registry``); this
wrapper only hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter dist_strong_scaling_real``.
"""

from repro.bench.harness import run_for_pytest


def test_dist_strong_scaling_real(benchmark):
    run_for_pytest("dist_strong_scaling_real", benchmark)
