"""Figure 6 — speedup of MB / RankB / MB+RankB over SPLATT across ranks.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``fig6_speedup`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter fig6_speedup``.
"""

from repro.bench.harness import run_for_pytest


def test_fig6_speedup(benchmark):
    run_for_pytest("fig6_speedup", benchmark)
