"""Figure 6 — speedup of MB, RankB, and MB+RankB over baseline SPLATT
across ranks 16..1024, one benchmark per data set, block sizes chosen by
the Section V-C heuristic.

Expected shapes (paper Section VI-C):

* Poisson2 / Poisson3 / NELL-2 (small tensors): speedup grows with rank
  (the baseline loses cache residency as rows widen, blocking keeps it).
* Netflix / Reddit / Amazon (huge dimensions): speedups flatten or peak
  at moderate ranks instead of growing without bound.
* MB+RankB >= max(MB, RankB) at every point (the combination never has
  to be worse — the heuristic can always pick one alone).
* Real data sets reach higher peak speedups than the synthetics overall
  (dense sub-structure; paper: 3.54x vs 2.02x).
"""

import pytest

from repro.bench import experiment_fig6, render_series, write_result

SMALL = ("poisson2", "poisson3", "nell2")
LARGE = ("netflix", "reddit", "amazon")


@pytest.mark.parametrize("dataset", SMALL + LARGE)
def test_fig6_speedup(benchmark, dataset):
    data = benchmark.pedantic(
        experiment_fig6, args=(dataset,), rounds=1, iterations=1
    )
    from repro.bench import bar_chart

    text = render_series(
        data["x_label"],
        data["x_values"],
        data["series"],
        title=f"Figure 6 ({dataset}): speedup over SPLATT",
    )
    text += "\n\n" + bar_chart(
        data["x_values"],
        {"MB+RankB": data["series"]["MB+RankB"]},
        title="MB+RankB speedup by rank ('|' = baseline 1.0x)",
        reference=1.0,
    )
    write_result(f"fig6_{dataset}", text)
    print("\n" + text)

    combo = data["series"]["MB+RankB"]
    mb = data["series"]["MB"]
    rankb = data["series"]["RankB"]
    # The combination is never (materially) worse than either technique.
    for c, m, r in zip(combo, mb, rankb):
        assert c >= max(m, r) - 0.05
    # Blocking never loses to the baseline by more than noise.
    assert min(combo) > 0.95
    # Something real is gained at high rank.
    assert max(combo) > 1.3

    if dataset in SMALL:
        # Speedup grows with rank: the top-rank value is near the maximum.
        assert combo[-1] >= 0.75 * max(combo)
        assert combo[-1] > combo[0]
