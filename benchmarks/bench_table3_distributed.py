"""Table III — distributed strong scaling on NELL-2 and Netflix:
distributed SPLATT vs our 3D (blocked local kernel) vs our 4D
(rank-extended grid), 1-64 nodes, two MPI ranks (sockets) per node.

Expected shape (paper Section VI-D): our implementation beats SPLATT at
every node count; the 4D partitioning overtakes 3D as node counts grow
(more nonzeros per process, no extra communication inside rank groups);
times decrease monotonically with nodes; the 64-node speedup lands in
the paper's 1.4-1.6x regime (we accept 1.2-2.5x).
"""

import pytest

from repro.bench import experiment_table3, render_rows, write_result


@pytest.mark.parametrize("dataset", ["nell2", "netflix"])
def test_table3_distributed(benchmark, dataset):
    rows = benchmark.pedantic(
        experiment_table3, args=(dataset,), rounds=1, iterations=1
    )
    text = render_rows(rows, title=f"Table III ({dataset}): distributed times")
    write_result(f"table3_{dataset}", text)
    print("\n" + text)

    assert [r["nodes"] for r in rows] == [1, 2, 4, 8, 16, 32, 64]
    splatt = [r["splatt_ms"] for r in rows]
    ours = [min(r["3d_ms"], r["4d_ms"]) for r in rows]
    # Strong scaling: SPLATT and ours both speed up monotonically.
    assert splatt == sorted(splatt, reverse=True)
    assert ours == sorted(ours, reverse=True)
    # Ours always wins.
    for r in rows:
        assert min(r["3d_ms"], r["4d_ms"]) <= r["splatt_ms"] * 1.02
    # 4D wins at scale.
    last = rows[-1]
    assert last["4d_ms"] <= last["3d_ms"]
    # 64-node speedup in the paper's regime.
    speedup = splatt[-1] / ours[-1]
    assert 1.2 < speedup < 3.0
