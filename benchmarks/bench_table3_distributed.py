"""Table III — distributed strong scaling on NELL-2 and Netflix.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``table3_distributed`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter table3_distributed``.
"""

from repro.bench.harness import run_for_pytest


def test_table3_distributed(benchmark):
    run_for_pytest("table3_distributed", benchmark)
