"""Supplementary — intra-socket thread scaling of the MTTKRP (modeled).

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``parallel_scaling`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter parallel_scaling``.
"""

from repro.bench.harness import run_for_pytest


def test_parallel_scaling(benchmark):
    run_for_pytest("parallel_scaling", benchmark)
