"""Supplementary — measured thread scaling of the parallel MTTKRP
executor against the machine model's predicted makespan.

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``parallel_scaling`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  The sweep runs
:class:`repro.exec.ParallelExecutor` at each thread count (plans
prepared outside the clock) and pairs every measured point with
:func:`repro.perf.parallel.parallel_predict_time` — the paper's
Section VI measured-vs-predicted methodology.  Run it standalone with
``repro bench run --filter parallel --threads 2``.
"""

from repro.bench.harness import run_for_pytest


def test_parallel_scaling(benchmark):
    run_for_pytest("parallel_scaling", benchmark)
