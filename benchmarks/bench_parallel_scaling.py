"""Supplementary — intra-socket thread scaling of the MTTKRP.

The paper's single-processor experiments use 10 cores with two SMT
threads each; this bench models that axis: output-slice parallelism with
private cores and shared memory bandwidth.

Expected shape: near-linear speedup while per-core bandwidth caps bind
(<= ~4 threads on the POWER8 figures), bending as the socket's links
saturate, with skewed data adding a load-imbalance penalty on top.
"""

from repro.bench import render_rows, write_result
from repro.machine import power8
from repro.perf import thread_scaling
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS

RANK = 128
THREADS = (1, 2, 4, 8, 10, 20)


def run_experiment():
    rows = []
    for name in ("poisson2", "netflix"):
        tensor = load_dataset(name)
        core = power8(1).scaled(DATASETS[name].machine_scale)
        for r in thread_scaling(tensor, 0, RANK, core, thread_counts=THREADS):
            rows.append({"dataset": name, **r})
    return rows


def test_parallel_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = render_rows(rows, title="Thread scaling (modeled, R=128)")
    write_result("parallel_scaling", text)
    print("\n" + text)

    for name in ("poisson2", "netflix"):
        series = {r["threads"]: r for r in rows if r["dataset"] == name}
        assert series[2]["speedup"] > 1.4  # near-linear early
        assert series[20]["speedup"] < 20  # sublinear at scale
        assert series[20]["speedup"] >= series[10]["speedup"] * 0.8
        # Makespans shrink monotonically up to 10 threads.
        assert series[10]["makespan_ms"] < series[1]["makespan_ms"]
