"""Figure 5 — performance vs multi-dimensional blocking grid (R=512).

Thin declaration: the experiment body, parameters, expected-shape
checks, and rendering all live in the registered benchmark
``fig5_mb_sweep`` (see ``repro.bench.registry``); this wrapper only
hooks it into pytest-benchmark.  Run it standalone with
``repro bench run --filter fig5_mb_sweep``.
"""

from repro.bench.harness import run_for_pytest


def test_fig5_mb_sweep(benchmark):
    run_for_pytest("fig5_mb_sweep", benchmark)
