"""Figure 5 — performance vs multi-dimensional blocking grid for
Poisson2 (a) and Poisson3 (b) at rank 512.

Expected shape (paper Section VI-B): for Poisson2 blocking the long
mode-2 alone is best and extreme grids fall below baseline; for Poisson3
moderate grids improve on the baseline with the best sizes around
1x10x5, and mode-2 blocking beats blocking either other mode alone.
"""

import pytest

from repro.bench import experiment_fig5, render_rows, write_result


def test_fig5a_poisson2(benchmark):
    rows = benchmark.pedantic(
        experiment_fig5, args=("poisson2",), rounds=1, iterations=1
    )
    text = render_rows(rows, title="Figure 5a: Poisson2 MB grids (R=512)")
    write_result("fig5a_poisson2", text)
    print("\n" + text)

    perf = {r["grid"]: r["relative_perf"] for r in rows}
    mode2_only = [v for g, v in perf.items() if _counts(g)[0] == 1 and _counts(g)[2] == 1 and _counts(g)[1] > 1]
    assert max(mode2_only) > 1.2
    # Extreme grids lose.
    assert perf["16x16x16"] < 1.0 or perf["32x1x32"] < 1.0
    # Blocking mode-2 alone beats single-mode blocking of mode-1.
    assert max(mode2_only) > perf["8x1x1"]


def test_fig5b_poisson3(benchmark):
    rows = benchmark.pedantic(
        experiment_fig5, args=("poisson3",), rounds=1, iterations=1
    )
    text = render_rows(rows, title="Figure 5b: Poisson3 MB grids (R=512)")
    write_result("fig5b_poisson3", text)
    print("\n" + text)

    perf = {r["grid"]: r["relative_perf"] for r in rows}
    # Moderate mode-2-centred grids beat the baseline...
    assert max(perf["1x10x5"], perf["1x10x1"]) > 1.05
    # ...and beat blocking mode-1 or mode-3 alone.
    assert perf["1x10x1"] >= max(perf["10x1x1"], perf["1x1x10"]) - 0.02


def _counts(grid: str) -> tuple[int, int, int]:
    a, b, c = grid.split("x")
    return int(a), int(b), int(c)
