"""Tests for the machine specification."""

import pytest

from repro.machine import CacheLevel, MachineSpec, power8, power8_socket
from repro.util.errors import ReproError


class TestCacheLevel:
    def test_derived_geometry(self):
        c = CacheLevel("L1", 64 * 1024, 128, 8)
        assert c.n_lines == 512
        assert c.n_sets == 64

    def test_capacity_granularity_checked(self):
        with pytest.raises(ReproError):
            CacheLevel("L1", 1000, 128, 8)

    @pytest.mark.parametrize("cap,line,assoc", [(0, 128, 8), (1024, 0, 8), (1024, 128, 0)])
    def test_positive_fields(self, cap, line, assoc):
        with pytest.raises(ReproError):
            CacheLevel("x", cap, line, assoc)


class TestPower8:
    def test_paper_figures(self):
        """Section VI-A: 3.49 GHz, 64 KB L1 / 512 KB L2 per core, two
        128-bit FMA issues per cycle, 75/35 GB/s per socket."""
        m = power8_socket()
        assert m.frequency_hz == pytest.approx(3.49e9)
        assert m.caches[0].capacity_bytes == 64 * 1024 * 10
        assert m.caches[1].capacity_bytes == 512 * 1024 * 10
        assert m.line_bytes == 128
        assert m.read_bandwidth == pytest.approx(75e9)
        assert m.write_bandwidth == pytest.approx(35e9)
        assert m.peak_flops == pytest.approx(3.49e9 * 80)

    def test_single_core_bandwidth_capped(self):
        """One core cannot pull the whole socket's bandwidth."""
        assert power8(1).read_bandwidth < power8_socket().read_bandwidth

    def test_system_balance_in_paper_range(self):
        """The paper cites system balances of 6-12 for current CPUs."""
        m = power8_socket()
        assert 2.0 < m.system_balance < 15.0

    def test_fast_tier_is_l2(self):
        m = power8_socket()
        assert m.fast_cache_bytes == m.caches[-2].capacity_bytes
        assert m.effective_cache_bytes == m.caches[-1].capacity_bytes

    def test_l3_bandwidth_default(self):
        m = power8(1)
        assert m.l3_bandwidth == pytest.approx(2.0 * m.read_bandwidth)


class TestScaling:
    def test_caches_scale_rates_do_not(self):
        m = power8_socket()
        s = m.scaled(1.0 / 16.0)
        assert s.caches[1].capacity_bytes == pytest.approx(
            m.caches[1].capacity_bytes / 16, rel=0.05
        )
        assert s.read_bandwidth == m.read_bandwidth
        assert s.peak_flops == m.peak_flops

    def test_scale_one_is_identity(self):
        m = power8(1)
        assert m.scaled(1.0) is m

    def test_grain_respected(self):
        s = power8(1).scaled(1.0 / 512.0)
        for c in s.caches:
            assert c.capacity_bytes % (c.line_bytes * c.associativity) == 0
            assert c.capacity_bytes >= c.line_bytes * c.associativity

    def test_bad_factor(self):
        with pytest.raises(ReproError):
            power8(1).scaled(0.0)
        with pytest.raises(ReproError):
            power8(1).scaled(2.0)

    def test_describe_mentions_name(self):
        assert "POWER8" in power8(2).describe()
