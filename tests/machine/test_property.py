"""Property-based tests for the machine models (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import get_kernel
from repro.machine import CacheHierarchy, CacheLevel, MachineSpec, estimate_traffic
from repro.machine.cache import SetAssociativeCache
from repro.tensor import COOTensor


def fully_associative(n_lines: int, line: int = 64) -> SetAssociativeCache:
    return SetAssociativeCache(CacheLevel("FA", n_lines * line, line, n_lines))


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=300),
    st.integers(1, 16),
)
@settings(max_examples=50, deadline=None)
def test_lru_inclusion_property(trace, small_lines):
    """For fully-associative LRU, a larger cache hits on a superset of
    the accesses a smaller one hits on (the classic stack property)."""
    small = fully_associative(small_lines)
    big = fully_associative(small_lines * 2)
    small_hits = [small.access(a) for a in trace]
    big_hits = [big.access(a) for a in trace]
    for s_hit, b_hit in zip(small_hits, big_hits):
        if s_hit:
            assert b_hit


@given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_compulsory_lower_bound(trace):
    """Any cache misses at least once per distinct line."""
    cache = fully_associative(8)
    for a in trace:
        cache.access(a)
    assert cache.misses >= len(set(trace))
    assert cache.hits + cache.misses == len(trace)


@st.composite
def traffic_problems(draw):
    shape = tuple(draw(st.integers(3, 20)) for _ in range(3))
    nnz = draw(st.integers(1, 120))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    indices = np.stack([rng.integers(0, s, nnz) for s in shape], axis=1)
    tensor = COOTensor(shape, indices, rng.random(nnz) + 0.5)
    rank = draw(st.sampled_from([1, 8, 32]))
    return tensor, rank


def machine_with(l2_kib: int, l3_kib: int) -> MachineSpec:
    return MachineSpec(
        name="prop",
        frequency_hz=1e9,
        caches=(
            CacheLevel("L1", 2 * 1024, 128, 2),
            CacheLevel("L2", l2_kib * 1024, 128, 8),
            CacheLevel("L3", l3_kib * 1024, 128, 8),
        ),
        read_bandwidth=1e9,
        write_bandwidth=1e9,
        flops_per_cycle=8,
        loadstore_per_cycle=2,
        vector_doubles=2,
        vector_registers=64,
    )


@given(traffic_problems())
@settings(max_examples=40, deadline=None)
def test_traffic_invariants(problem):
    """Misses bounded by accesses and below by distinct rows; alphas in
    [0, 1]; tiers nested."""
    tensor, rank = problem
    plan = get_kernel("splatt").prepare(tensor, 0)
    est = estimate_traffic(plan, rank, machine_with(4, 16))
    stats = plan.block_stats()[0]
    for s, d in ((est.b, stats.distinct_inner), (est.c, stats.distinct_fiber)):
        assert d - 1e-9 <= s.mem_misses <= s.accesses + 1e-9
        assert s.mem_misses <= s.fast_misses + 1e-9
        assert 0.0 <= s.alpha <= 1.0
        assert 0.0 <= s.fast_alpha <= 1.0


@given(traffic_problems())
@settings(max_examples=40, deadline=None)
def test_traffic_monotone_in_cache(problem):
    """More cache never increases modeled memory traffic."""
    tensor, rank = problem
    plan = get_kernel("splatt").prepare(tensor, 0)
    small = estimate_traffic(plan, rank, machine_with(2, 8))
    big = estimate_traffic(plan, rank, machine_with(64, 512))
    assert big.read_bytes <= small.read_bytes + 1e-6
    assert big.factor_alpha >= small.factor_alpha - 1e-12


@given(traffic_problems(), st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_stream_traffic_scales_with_strips(problem, n_strips):
    """Rank strips multiply the stream bytes exactly."""
    tensor, rank = problem
    if rank < n_strips:
        return
    base_plan = get_kernel("splatt").prepare(tensor, 0)
    rb_plan = get_kernel("rankb").prepare(tensor, 0, n_rank_blocks=n_strips)
    m = machine_with(4, 16)
    base = estimate_traffic(base_plan, rank, m)
    rb = estimate_traffic(rb_plan, rank, m)
    actual_strips = rb_plan.rank_blocking.n_strips(rank)
    assert rb.stream_read_bytes == pytest.approx(
        actual_strips * base.stream_read_bytes
    )
