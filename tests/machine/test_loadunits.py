"""Tests for the load/store-instruction model."""

import pytest

from repro.kernels import get_kernel
from repro.machine import estimate_loads, power8
from repro.tensor import poisson_tensor


@pytest.fixture(scope="module")
def plan_pair():
    t = poisson_tensor((40, 60, 50), 5000, seed=5)
    base = get_kernel("splatt").prepare(t, 0)
    rb = get_kernel("rankb").prepare(t, 0, n_rank_blocks=1)
    return t, base, rb


class TestBaselineCounts:
    def test_closed_form(self, plan_pair):
        """Per nonzero: 2 + R/vw B + R/vw acc loads + R/vw acc stores;
        per fiber: 2 + R/vw C + R/vw A loads + R/vw A stores."""
        t, base, _ = plan_pair
        m = power8(1)
        rank = 64
        vec = rank // m.vector_doubles
        est = estimate_loads(base, rank, m)
        s = base.splatt
        assert est.stream_loads == 2 * s.nnz + 2 * s.n_fibers
        assert est.b_loads == s.nnz * vec
        assert est.acc_loads == s.nnz * vec
        assert est.acc_stores == s.nnz * vec
        assert est.c_loads == s.n_fibers * vec
        assert est.a_loads == s.n_fibers * vec
        assert est.a_stores == s.n_fibers * vec
        assert est.loop_ops == s.nnz + s.n_fibers

    def test_totals_consistent(self, plan_pair):
        _, base, _ = plan_pair
        est = estimate_loads(base, 32, power8(1))
        assert est.total_ops == pytest.approx(est.loads + est.stores + est.loop_ops)


class TestRegisterBlocking:
    def test_accumulator_ops_eliminated(self, plan_pair):
        """Table I type 3 / Algorithm 2: register blocking removes the
        accumulator's memory micro-ops entirely."""
        _, base, rb = plan_pair
        m = power8(1)
        base_est = estimate_loads(base, 64, m)
        rb_est = estimate_loads(rb, 64, m)
        assert base_est.acc_loads > 0
        assert rb_est.acc_loads == 0
        assert rb_est.acc_stores == 0

    def test_stream_reread_per_register_block(self, plan_pair):
        """val/j_index are re-read once per register block pass."""
        _, base, rb = plan_pair
        m = power8(1)
        rank = 64  # 4 register blocks of 16
        base_est = estimate_loads(base, rank, m)
        rb_est = estimate_loads(rb, rank, m)
        s = base.splatt
        assert rb_est.stream_loads == 4 * 2 * s.nnz + 2 * s.n_fibers

    def test_net_reduction(self, plan_pair):
        """Register blocking must reduce total micro-ops (the whole point)."""
        _, base, rb = plan_pair
        m = power8(1)
        assert (
            estimate_loads(rb, 128, m).total_ops
            < estimate_loads(base, 128, m).total_ops
        )

    def test_loop_ops_grow_with_strips(self, plan_pair):
        t, _, _ = plan_pair
        m = power8(1)
        one = get_kernel("rankb").prepare(t, 0, n_rank_blocks=1)
        four = get_kernel("rankb").prepare(t, 0, n_rank_blocks=4)
        assert (
            estimate_loads(four, 64, m).loop_ops
            == 4 * estimate_loads(one, 64, m).loop_ops
        )

    def test_b_loads_invariant_across_strip_counts(self, plan_pair):
        """Total B loads depend on R, not on how it is stripped."""
        t, _, _ = plan_pair
        m = power8(1)
        one = get_kernel("rankb").prepare(t, 0, n_rank_blocks=1)
        four = get_kernel("rankb").prepare(t, 0, n_rank_blocks=4)
        assert estimate_loads(one, 64, m).b_loads == pytest.approx(
            estimate_loads(four, 64, m).b_loads
        )
