"""Tests for the exact set-associative LRU cache simulator."""

import numpy as np
import pytest

from repro.machine import CacheHierarchy, CacheLevel, MachineSpec, SetAssociativeCache


def tiny_machine(l1_lines=8, l2_lines=32, assoc=2, line=64):
    return MachineSpec(
        name="tiny",
        frequency_hz=1e9,
        caches=(
            CacheLevel("L1", l1_lines * line, line, assoc),
            CacheLevel("L2", l2_lines * line, line, assoc),
        ),
        read_bandwidth=1e9,
        write_bandwidth=1e9,
        flops_per_cycle=1,
        loadstore_per_cycle=1,
        vector_doubles=2,
        vector_registers=32,
    )


class TestSingleLevel:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(CacheLevel("L1", 1024, 64, 2))
        assert c.access(5) is False
        assert c.access(5) is True
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_within_set(self):
        # 2-way, n_sets = 1024/(64*2) = 8; lines 0, 8, 16 map to set 0.
        c = SetAssociativeCache(CacheLevel("L1", 1024, 64, 2))
        c.access(0)
        c.access(8)
        c.access(16)  # evicts 0 (LRU)
        assert c.access(8) is True
        assert c.access(0) is False  # was evicted

    def test_lru_refresh_on_hit(self):
        c = SetAssociativeCache(CacheLevel("L1", 1024, 64, 2))
        c.access(0)
        c.access(8)
        c.access(0)  # refresh 0: now 8 is LRU
        c.access(16)  # evicts 8
        assert c.access(0) is True
        assert c.access(8) is False

    def test_capacity_working_set_all_hits(self):
        c = SetAssociativeCache(CacheLevel("L1", 1024, 64, 2))
        lines = np.arange(16)  # exactly the capacity
        for addr in lines:
            c.access(int(addr))
        c.reset_counters()
        for addr in lines:
            assert c.access(int(addr)) is True

    def test_flush(self):
        c = SetAssociativeCache(CacheLevel("L1", 1024, 64, 2))
        c.access(3)
        c.flush()
        assert c.access(3) is False


class TestHierarchy:
    def test_l2_catches_l1_evictions(self):
        h = CacheHierarchy(tiny_machine(l1_lines=4, l2_lines=64))
        # Working set of 16 lines: too big for L1 (4 lines), fits L2.
        trace = np.tile(np.arange(16), 3)
        res = h.run_trace(trace)
        assert res.memory_fetches == 16  # only compulsory
        assert res.level_hits[1] > 0  # L2 served the re-reads

    def test_result_accounting_conserves(self):
        h = CacheHierarchy(tiny_machine())
        trace = np.array([1, 2, 3, 1, 2, 3, 99])
        res = h.run_trace(trace)
        assert res.accesses == 7
        assert sum(res.level_hits) + res.memory_fetches == 7

    def test_hit_rate(self):
        h = CacheHierarchy(tiny_machine())
        res = h.run_trace(np.array([1, 1, 1, 1]))
        assert res.hit_rate == pytest.approx(0.75)

    def test_structure_attribution(self):
        h = CacheHierarchy(tiny_machine())
        trace = np.array([1, 2, 1, 2])
        tags = np.array([0, 1, 0, 1])
        res = h.run_trace(trace, tags)
        assert res.structure_accesses == {0: 2, 1: 2}
        assert res.structure_fetches == {0: 1, 1: 1}
        assert res.structure_hit_rate(0) == pytest.approx(0.5)
        assert res.structure_hit_rate(42) == 1.0  # no accesses

    def test_empty_trace(self):
        h = CacheHierarchy(tiny_machine())
        res = h.run_trace(np.empty(0, dtype=np.int64))
        assert res.accesses == 0
        assert res.hit_rate == 1.0

    def test_flush_between_runs(self):
        h = CacheHierarchy(tiny_machine())
        h.run_trace(np.array([7]))
        res = h.run_trace(np.array([7]), flush_first=True)
        assert res.memory_fetches == 1
        res2 = h.run_trace(np.array([7]), flush_first=False)
        assert res2.memory_fetches == 0
