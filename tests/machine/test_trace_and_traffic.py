"""Trace generation tests + validation of the analytic traffic model
against the exact LRU simulator — the core soundness check of the
machine-model substitution (DESIGN.md §2)."""

import numpy as np
import pytest

from repro.kernels import get_kernel
from repro.machine import (
    STRUCTURES,
    CacheHierarchy,
    CacheLevel,
    MachineSpec,
    estimate_traffic,
    mttkrp_trace,
)
from repro.tensor import poisson_tensor, uniform_random_tensor


def small_machine(l2_kib=16, l3_kib=64):
    """A machine small enough that a modest tensor stresses it."""
    return MachineSpec(
        name="small",
        frequency_hz=1e9,
        caches=(
            CacheLevel("L1", 4 * 1024, 128, 4),
            CacheLevel("L2", l2_kib * 1024, 128, 8),
            CacheLevel("L3", l3_kib * 1024, 128, 8),
        ),
        read_bandwidth=10e9,
        write_bandwidth=5e9,
        flops_per_cycle=8,
        loadstore_per_cycle=2,
        vector_doubles=2,
        vector_registers=64,
    )


@pytest.fixture(scope="module")
def tensor():
    return poisson_tensor((120, 150, 130), 20_000, seed=99, concentration=0.2)


class TestTraceGeneration:
    def test_trace_length_formula(self, tensor):
        """nnz*(2 + rowlines) + F*(1 + 2*rowlines) accesses per phase."""
        plan = get_kernel("splatt").prepare(tensor, 0)
        m = small_machine()
        rank = 32  # rowlines = ceil(32*8/128) = 2
        lines, tags = mttkrp_trace(plan, rank, m)
        s = plan.splatt
        expected = s.nnz * (2 + 2) + s.n_fibers * (1 + 4)
        assert lines.shape == tags.shape == (expected,)

    def test_structure_mix(self, tensor):
        plan = get_kernel("splatt").prepare(tensor, 0)
        lines, tags = mttkrp_trace(plan, 16, small_machine())
        s = plan.splatt
        counts = {k: int((tags == sid).sum()) for k, sid in STRUCTURES.items()}
        assert counts["val"] == s.nnz
        assert counts["jidx"] == s.nnz
        assert counts["B"] == s.nnz  # one line per row at rank 16
        assert counts["fiber"] == s.n_fibers
        assert counts["C"] == counts["A"] == s.n_fibers

    def test_regions_disjoint(self, tensor):
        plan = get_kernel("splatt").prepare(tensor, 0)
        lines, tags = mttkrp_trace(plan, 16, small_machine())
        for a in STRUCTURES.values():
            for b in STRUCTURES.values():
                if a < b:
                    la = set(lines[tags == a][:500].tolist())
                    lb = set(lines[tags == b][:500].tolist())
                    assert not la & lb

    def test_rank_strips_multiply_stream(self, tensor):
        base_plan = get_kernel("splatt").prepare(tensor, 0)
        rb_plan = get_kernel("rankb").prepare(tensor, 0, n_rank_blocks=4)
        m = small_machine()
        lines1, tags1 = mttkrp_trace(base_plan, 64, m)
        lines4, tags4 = mttkrp_trace(rb_plan, 64, m)
        # val accesses: nnz per strip.
        n1 = int((tags1 == STRUCTURES["val"]).sum())
        n4 = int((tags4 == STRUCTURES["val"]).sum())
        assert n4 == 4 * n1

    def test_blocked_trace_covers_all_nonzeros(self, tensor):
        plan = get_kernel("mb").prepare(tensor, 0, block_counts=(2, 3, 2))
        lines, tags = mttkrp_trace(plan, 16, small_machine())
        assert int((tags == STRUCTURES["val"]).sum()) == tensor.nnz


class TestAnalyticVsExact:
    """The analytic model must track the exact simulator's per-structure
    hit rates.  Tolerances are loose — the analytic model ignores set
    conflicts and stream-induced evictions — but the *direction* of every
    blocking effect must agree."""

    @pytest.mark.parametrize("rank", [16, 64])
    def test_b_alpha_close(self, tensor, rank):
        plan = get_kernel("splatt").prepare(tensor, 0)
        m = small_machine()
        lines, tags = mttkrp_trace(plan, rank, m)
        exact = CacheHierarchy(m).run_trace(lines, tags)
        analytic = estimate_traffic(plan, rank, m)
        exact_alpha = exact.structure_hit_rate(STRUCTURES["B"])
        assert analytic.b.alpha == pytest.approx(exact_alpha, abs=0.15)

    def test_blocking_improves_both(self, tensor):
        """MB blocking must raise the B hit rate in both models (memory
        hit rate in the exact simulator, fast-tier hit rate in the
        analytic model — with blocks sized for L2, that is the tier the
        blocking targets)."""
        m = small_machine(l2_kib=8, l3_kib=16)
        rank = 64
        base = get_kernel("splatt").prepare(tensor, 0)
        blocked = get_kernel("mb").prepare(tensor, 0, block_counts=(1, 5, 3))

        h = CacheHierarchy(m)
        exact_base = h.run_trace(*mttkrp_trace(base, rank, m))
        exact_blk = h.run_trace(*mttkrp_trace(blocked, rank, m))
        ana_base = estimate_traffic(base, rank, m)
        ana_blk = estimate_traffic(blocked, rank, m)

        b = STRUCTURES["B"]
        assert exact_blk.structure_hit_rate(b) > exact_base.structure_hit_rate(b)
        assert ana_blk.b.alpha > ana_base.b.alpha
        assert ana_blk.b.fast_alpha > ana_base.b.fast_alpha

    def test_rank_blocking_improves_both(self, tensor):
        m = small_machine(l2_kib=8, l3_kib=32)
        rank = 128
        base = get_kernel("splatt").prepare(tensor, 0)
        rb = get_kernel("rankb").prepare(tensor, 0, n_rank_blocks=8)

        h = CacheHierarchy(m)
        exact_base = h.run_trace(*mttkrp_trace(base, rank, m))
        exact_rb = h.run_trace(*mttkrp_trace(rb, rank, m))
        ana_base = estimate_traffic(base, rank, m)
        ana_rb = estimate_traffic(rb, rank, m)

        b = STRUCTURES["B"]
        assert exact_rb.structure_hit_rate(b) > exact_base.structure_hit_rate(b)
        assert ana_rb.b.alpha > ana_base.b.alpha


class TestTrafficModel:
    def test_stream_bytes_exact(self, tensor):
        plan = get_kernel("splatt").prepare(tensor, 0)
        est = estimate_traffic(plan, 32, small_machine())
        s = plan.splatt
        assert est.stream_read_bytes == 16 * s.nnz + 16 * s.n_fibers

    def test_everything_fits_only_compulsory(self, tensor):
        """With a huge cache, misses are exactly the distinct rows."""
        m = small_machine(l2_kib=1 << 14, l3_kib=1 << 15)  # 16 MiB L2
        plan = get_kernel("splatt").prepare(tensor, 0)
        est = estimate_traffic(plan, 16, m)
        stats = plan.block_stats()[0]
        assert est.b.mem_misses == pytest.approx(stats.distinct_inner)
        assert est.c.mem_misses == pytest.approx(stats.distinct_fiber)
        assert est.b.fast_misses == pytest.approx(stats.distinct_inner)

    def test_alpha_increases_with_cache(self, tensor):
        plan = get_kernel("splatt").prepare(tensor, 0)
        small = estimate_traffic(plan, 128, small_machine(l2_kib=8, l3_kib=16))
        big = estimate_traffic(plan, 128, small_machine(l2_kib=256, l3_kib=1024))
        assert big.factor_alpha > small.factor_alpha

    def test_line_granularity_floor(self, tensor):
        """A rank-1 row still moves a whole 128-byte line per miss."""
        plan = get_kernel("splatt").prepare(tensor, 0)
        est = estimate_traffic(plan, 1, small_machine())
        assert est.b.read_bytes >= est.b.mem_misses * 128

    def test_mem_misses_bounded_by_fast_misses(self, tensor):
        plan = get_kernel("splatt").prepare(tensor, 0)
        est = estimate_traffic(plan, 64, small_machine())
        for s in (est.b, est.c, est.a):
            assert s.mem_misses <= s.fast_misses + 1e-9
            assert s.fast_misses <= s.accesses + 1e-9

    def test_uniform_fallback_without_histograms(self):
        """BlockStats without count arrays uses the proportional model."""
        from repro.kernels.base import BlockStats
        from repro.machine.traffic import _PhaseProfile, _phase_traffic

        stats = BlockStats(
            coords=(0, 0, 0),
            nnz=10_000,
            n_fibers=2_000,
            distinct_out=100,
            distinct_inner=500,
            distinct_fiber=200,
        )
        profile = _PhaseProfile(stats)
        assert profile.uniform
        b, c, a = _phase_traffic(profile, 512.0, small_machine())
        assert b.mem_misses >= stats.distinct_inner
        assert b.accesses == stats.nnz
