"""Job state machine and admission queue — deterministic unit tests.

These pin the concurrency semantics the server builds on (cancellation
racing completion, deadline expiry mid-queue, queue-full rejection)
without any threads, so every race is exercised as an explicit
interleaving rather than a timing accident.
"""

import time

import pytest

from repro.serve import AdmissionQueue, JobSpec, QueueFullError
from repro.serve.job import Job, JobState
from repro.util.errors import ConfigError, ServeError

INLINE = {
    "shape": [4, 3, 2],
    "coords": [[0, 0, 0], [1, 2, 1], [3, 1, 0]],
    "values": [1.0, -2.0, 3.0],
}


def make_job(job_id, *, priority=0, deadline_s=None, rank=8):
    spec = JobSpec.from_payload({"tensor": dict(INLINE), "rank": rank})
    return Job(job_id, spec, priority=priority, deadline_s=deadline_s)


class TestJobStateMachine:
    def test_happy_path(self):
        job = make_job("j1")
        assert job.state is JobState.QUEUED
        assert job.try_start()
        assert job.state is JobState.RUNNING
        assert job.try_finish(JobState.COMPLETED, {"ok": True})
        assert job.state is JobState.COMPLETED
        assert job.future.result(timeout=0) == {"ok": True}
        assert job.total_latency_s() >= 0.0

    def test_finish_requires_terminal_state(self):
        job = make_job("j1")
        with pytest.raises(ValueError):
            job.try_finish(JobState.RUNNING, {})

    def test_cancel_queued_resolves_immediately(self):
        job = make_job("j1")
        accepted, observed = job.try_cancel({"state": "cancelled"})
        assert accepted and observed is JobState.QUEUED
        assert job.state is JobState.CANCELLED
        assert job.future.result(timeout=0) == {"state": "cancelled"}
        # The dispatcher's later pickup must skip the entry.
        assert not job.try_start()

    def test_cancel_running_is_cooperative(self):
        job = make_job("j1")
        assert job.try_start()
        accepted, observed = job.try_cancel({"state": "cancelled"})
        assert accepted and observed is JobState.RUNNING
        # Token set, but the job is NOT terminal: the runner decides.
        assert job.token.cancelled
        assert job.state is JobState.RUNNING
        assert not job.future.done()

    def test_cancel_racing_completion_single_winner(self):
        # The canonical race: runner finishes while a cancel is in
        # flight.  Whoever transitions first wins; the loser observes a
        # terminal state and cannot clobber the payload.
        job = make_job("j1")
        job.try_start()
        assert job.try_finish(JobState.COMPLETED, {"state": "completed"})
        accepted, observed = job.try_cancel({"state": "cancelled"})
        assert not accepted and observed is JobState.COMPLETED
        assert job.future.result(timeout=0) == {"state": "completed"}
        # And the mirror ordering: cancel-first means finish loses.
        job2 = make_job("j2")
        job2.try_cancel({"state": "cancelled"})
        assert not job2.try_finish(JobState.COMPLETED, {"state": "completed"})
        assert job2.future.result(timeout=0) == {"state": "cancelled"}

    def test_deadline_trip_distinguishes_expiry_from_cancel(self):
        job = make_job("j1", deadline_s=30.0)
        job.try_start()
        assert not job.deadline_tripped
        job.trip_deadline()
        assert job.deadline_tripped and job.token.cancelled
        # A tripped job that is already terminal is left alone.
        job.try_finish(JobState.EXPIRED, {"state": "expired"})
        job.trip_deadline()
        assert job.state is JobState.EXPIRED

    def test_expired_clock(self):
        job = make_job("j1", deadline_s=1e-4)
        time.sleep(0.002)
        assert job.expired()
        assert job.deadline_remaining() < 0
        assert not make_job("j2").expired()
        assert make_job("j2").deadline_remaining() is None


class TestAdmissionQueue:
    def test_rejects_bad_limit(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(0)

    def test_queue_full_rejection(self):
        q = AdmissionQueue(2)
        q.offer(make_job("a"))
        q.offer(make_job("b"))
        with pytest.raises(QueueFullError) as exc:
            q.offer(make_job("c"), retry_after_ms=42.0)
        assert exc.value.limit == 2
        assert exc.value.retry_after_ms == 42.0
        assert q.n_rejected_full == 1
        assert q.peak_depth == 2

    def test_batch_coalesces_same_signature(self):
        q = AdmissionQueue(16)
        same = [make_job(f"s{i}") for i in range(3)]
        other = make_job("o1", rank=16)  # different batch_key
        q.offer(same[0])
        q.offer(other)
        q.offer(same[1])
        q.offer(same[2])
        batch, expired = q.take_batch(max_batch=8, timeout=0)
        assert [j.job_id for j in batch] == ["s0", "s1", "s2"]
        assert expired == []
        batch2, _ = q.take_batch(max_batch=8, timeout=0)
        assert [j.job_id for j in batch2] == ["o1"]
        assert q.depth == 0

    def test_max_batch_bound(self):
        q = AdmissionQueue(16)
        for i in range(5):
            q.offer(make_job(f"s{i}"))
        batch, _ = q.take_batch(max_batch=2, timeout=0)
        assert len(batch) == 2
        assert q.depth == 3

    def test_priority_orders_lead_selection(self):
        q = AdmissionQueue(16)
        q.offer(make_job("low", priority=0))
        q.offer(make_job("high", priority=5, rank=16))
        batch, _ = q.take_batch(timeout=0)
        assert batch[0].job_id == "high"

    def test_deadline_expiry_mid_queue(self):
        # An expired job is never silently dropped: take_batch returns it
        # separately so the caller can resolve its future.
        q = AdmissionQueue(16)
        doomed = make_job("doomed", deadline_s=1e-4)
        live = make_job("live")
        q.offer(doomed)
        q.offer(live)
        time.sleep(0.002)
        batch, expired = q.take_batch(timeout=0)
        assert [j.job_id for j in expired] == ["doomed"]
        assert [j.job_id for j in batch] == ["live"]

    def test_only_expired_entries(self):
        q = AdmissionQueue(16)
        q.offer(make_job("doomed", deadline_s=1e-4))
        time.sleep(0.002)
        got = q.take_batch(timeout=0)
        assert got is not None
        batch, expired = got
        assert batch == [] and [j.job_id for j in expired] == ["doomed"]

    def test_cancelled_entries_discarded_silently(self):
        # A job cancelled while queued already resolved its future; the
        # queue just forgets it.
        q = AdmissionQueue(16)
        gone = make_job("gone")
        live = make_job("live")
        q.offer(gone)
        q.offer(live)
        gone.try_cancel({"state": "cancelled"})
        batch, expired = q.take_batch(timeout=0)
        assert [j.job_id for j in batch] == ["live"]
        assert expired == []

    def test_timeout_returns_none(self):
        q = AdmissionQueue(4)
        assert q.take_batch(timeout=0.01) is None

    def test_close_stops_offers_but_drains(self):
        q = AdmissionQueue(4)
        q.offer(make_job("a"))
        q.close()
        assert q.closed
        with pytest.raises(ServeError):
            q.offer(make_job("b"))
        # Queued entries stay takeable so a drain can finish them...
        batch, _ = q.take_batch(timeout=0)
        assert [j.job_id for j in batch] == ["a"]
        # ...then closed-and-empty reads as None without blocking.
        assert q.take_batch(timeout=30.0) is None
        assert len(q) == 0
