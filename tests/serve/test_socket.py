"""NDJSON/TCP transport: framing edges and cross-connection behaviour."""

import threading

import pytest

from repro.serve import ServeConfig, SocketClient, start_in_thread
from repro.util.errors import ServeError

pytestmark = pytest.mark.parallel_exec

SMALL_FRAME = 4096


def job_payload(*, dtype="float64", factors_seed=0):
    return {
        "tensor": {
            "synthetic": "uniform",
            "dims": [20, 18, 16],
            "nnz": 400,
            "seed": 0,
            "dtype": dtype,
        },
        "rank": 4,
        "kernel": "mb",
        "tune": True,
        "factors_seed": factors_seed,
    }


@pytest.fixture()
def handle():
    h = start_in_thread(
        ServeConfig(port=0, max_frame_bytes=SMALL_FRAME, n_workers=2)
    )
    try:
        yield h
    finally:
        h.drain_and_stop()


def connect(handle, **kw):
    return SocketClient("127.0.0.1", handle.port, **kw)


class TestSocketTransport:
    def test_ping_and_submit(self, handle):
        with connect(handle) as client:
            assert client.ping()["ok"]
            resp = client.submit(job_payload())
            assert resp["ok"] and resp["state"] == "completed"
            assert isinstance(resp["sha256"], str) and len(resp["sha256"]) == 64

    def test_malformed_frame(self, handle):
        with connect(handle) as client:
            resp = client.send_raw(b"this is not json\n")
            assert not resp["ok"]
            assert resp["error"]["code"] == "malformed"
            # The connection survives a malformed frame.
            assert client.ping()["ok"]

    def test_oversized_frame_closes_connection(self, handle):
        with connect(handle) as client:
            resp = client.send_raw(b"x" * (2 * SMALL_FRAME) + b"\n")
            assert not resp["ok"]
            assert resp["error"]["code"] == "oversized"
            # Oversized is unrecoverable mid-stream: server closed us
            # (EOF on read, or a pipe error if the send loses the race).
            with pytest.raises((ServeError, OSError)):
                client.ping()
        # ...but the server itself is fine for new connections.
        with connect(handle) as client:
            assert client.ping()["ok"]

    def test_pipelined_responses_matched_by_id(self, handle):
        # Two submits race on one connection; each response carries the
        # request id so the client pairs them up regardless of order.
        with connect(handle) as a, connect(handle) as b:
            out = {}

            def run(name, client, seed):
                out[name] = client.submit(job_payload(factors_seed=seed))

            t1 = threading.Thread(target=run, args=("a", a, 1))
            t2 = threading.Thread(target=run, args=("b", b, 2))
            t1.start(), t2.start()
            t1.join(60), t2.join(60)
            assert out["a"]["ok"] and out["b"]["ok"]
            assert out["a"]["sha256"] != out["b"]["sha256"]

    def test_two_clients_mixed_dtypes(self, handle):
        results = {}

        def run(name, dtype):
            with connect(handle) as client:
                results[name] = client.submit(job_payload(dtype=dtype))

        threads = [
            threading.Thread(target=run, args=(f"{d}-{i}", d))
            for i in range(2)
            for d in ("float32", "float64")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert len(results) == 4
        for name, resp in results.items():
            assert resp["ok"], resp
            assert resp["dtype"] == name.rsplit("-", 1)[0]

    def test_cross_connection_cancel(self, handle):
        # One connection submits a pre-named job; another cancels it.
        # Whatever the race outcome, the cancel response must be typed
        # and the submit response terminal.
        box = {}

        def submitter():
            with connect(handle) as c:
                box["resp"] = c.submit(job_payload(), job_id="xc-1")

        t = threading.Thread(target=submitter)
        t.start()
        with connect(handle) as c:
            cancel = None
            for _ in range(2000):
                cancel = c.cancel("xc-1")
                if cancel["ok"] or not t.is_alive():
                    break
        t.join(timeout=60)
        assert box["resp"]["state"] in ("completed", "cancelled")
        assert cancel is not None

    def test_drain_over_socket(self, handle):
        port = handle.port
        with connect(handle) as client:
            assert client.submit(job_payload())["ok"]
            drain = client.drain()
            assert drain["ok"] and drain["drained"] is True
            assert drain["queue_depth"] == 0
        # Listener is closed: fresh connections are refused.
        with pytest.raises(OSError):
            SocketClient("127.0.0.1", port)
