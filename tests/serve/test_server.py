"""End-to-end and admission-path tests for the serve server."""

import asyncio
import threading

import pytest

from repro.kernels import get_kernel
from repro.serve import (
    JobSpec,
    ServeClient,
    ServeConfig,
    ServeServer,
    factors_for_spec,
    result_sha256,
)
from repro.serve.job import Job
from repro.serve.protocol import TensorRef

pytestmark = pytest.mark.parallel_exec


def job_payload(*, dtype="float64", seed=0, factors_seed=0, rank=4, nnz=600):
    return {
        "tensor": {
            "synthetic": "poisson",
            "dims": [24, 20, 22],
            "nnz": nnz,
            "seed": seed,
            "dtype": dtype,
        },
        "mode": 0,
        "rank": rank,
        "kernel": "mb",
        "tune": True,
        "factors_seed": factors_seed,
    }


def assert_bitwise_identical(resp, job):
    """The service contract: a completed response's checksum matches a
    direct serial kernel execution with the applied parameters."""
    spec = JobSpec.from_payload(job)
    tensor = spec.tensor.build()
    factors = factors_for_spec(
        tensor.shape, spec.rank, spec.factors_seed, spec.tensor.dtype
    )
    params = {
        k: (tuple(v) if isinstance(v, list) else v)
        for k, v in resp["applied_params"].items()
    }
    direct = get_kernel(spec.kernel).mttkrp(tensor, factors, spec.mode, **params)
    assert resp["sha256"] == result_sha256(direct)
    assert resp["dtype"] == spec.tensor.dtype


@pytest.fixture()
def client():
    c = ServeClient.start(ServeConfig(port=None, n_workers=2, n_runners=2))
    try:
        yield c
    finally:
        c.close()


class TestEndToEnd:
    def test_ping_and_stats(self, client):
        ping = client.ping()
        assert ping["ok"] and ping["state"] == "serving"
        stats = client.stats()
        assert stats["ok"]
        assert stats["queue"]["limit"] == 64
        assert set(stats["latency_ms"]) >= {"count", "p50", "p95", "p99"}
        assert stats["pool"]["n_threads"] == 2

    def test_unknown_op(self, client):
        resp = client.request({"op": "frobnicate", "id": "x"})
        assert not resp["ok"]
        assert resp["error"]["code"] == "unknown_op"

    def test_submit_is_bitwise_identical_to_direct_execution(self, client):
        job = job_payload(factors_seed=7)
        resp = client.submit(job)
        assert resp["ok"] and resp["state"] == "completed"
        assert resp["tuned"] is not None
        assert resp["exec_ms"] >= 0 and resp["queue_ms"] >= 0
        assert_bitwise_identical(resp, job)

    def test_float32_stays_float32(self, client):
        job = job_payload(dtype="float32", factors_seed=3)
        resp = client.submit(job)
        assert resp["ok"] and resp["dtype"] == "float32"
        assert_bitwise_identical(resp, job)

    def test_untuned_explicit_params(self, client):
        job = dict(job_payload(), tune=False,
                   params={"block_counts": [2, 2, 2]})
        resp = client.submit(job)
        assert resp["ok"] and resp["tuned"] is None
        assert resp["applied_params"] == {"block_counts": [2, 2, 2]}
        assert_bitwise_identical(resp, job)

    def test_invalid_job_rejected(self, client):
        resp = client.submit({"tensor": {}, "rank": 4})
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_job"
        stats = client.stats()
        assert stats["counters"].get("rejected_invalid", 0) >= 1

    def test_warm_cache_amortizes_tuning(self, client):
        for _ in range(3):
            assert client.submit(job_payload())["ok"]
        warm = client.stats()["warm_cache"]
        assert warm["entries"] == 1
        assert warm["misses"] >= 1
        assert warm["hits"] >= 2

    def test_concurrent_mixed_dtypes(self, client):
        jobs = [
            job_payload(dtype=d, seed=s, factors_seed=i)
            for i, (d, s) in enumerate(
                [("float64", 0), ("float32", 0), ("float64", 1), ("float32", 1)]
            )
        ] * 2
        results = [None] * len(jobs)

        def submit(i):
            results[i] = client.submit(jobs[i])

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(jobs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for job, resp in zip(jobs, results):
            assert resp["ok"], resp
            assert_bitwise_identical(resp, job)
        counters = client.stats()["counters"]
        assert counters["completed"] == len(jobs)

    def test_deadline_expiry(self, client):
        # A microscopic deadline lapses before (or during) execution; the
        # job must resolve as expired either way, never hang or complete.
        resp = client.submit(job_payload(), deadline_ms=0.01)
        assert not resp["ok"]
        assert resp["error"]["code"] == "deadline_expired"
        assert resp["state"] == "expired"
        assert client.stats()["counters"].get("deadline_expired", 0) >= 1

    def test_zero_deadline_rejected(self, client):
        resp = client.submit(job_payload(), deadline_ms=0)
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_job"


class TestCancellation:
    def test_cancel_unknown_job(self, client):
        resp = client.cancel("never-submitted")
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_job"

    def test_cancel_racing_completion_is_consistent(self, client):
        # Fire a submit and cancel it from this thread as fast as
        # possible.  The outcome is timing-dependent by design; the
        # *consistency* between the cancel response and the terminal
        # submit response is not.
        box = {}

        def submitter():
            box["resp"] = client.submit(job_payload(), job_id="race-1")

        t = threading.Thread(target=submitter)
        t.start()
        cancel = None
        for _ in range(2000):
            cancel = client.cancel("race-1")
            if cancel["ok"] or not t.is_alive():
                break
        t.join(timeout=60)
        resp = box["resp"]
        assert resp["state"] in ("completed", "cancelled")
        if cancel is not None and cancel["ok"]:
            if cancel["observed_state"] == "queued":
                # Cancelled in-queue: terminal response must agree.
                assert resp["state"] == "cancelled"
                assert resp["error"]["code"] == "cancelled"
            elif not cancel["accepted"]:
                # Too late: the observed terminal state is the outcome.
                assert cancel["observed_state"] == resp["state"]
        if resp["state"] == "cancelled":
            assert client.stats()["counters"].get("cancelled", 0) >= 1

    def test_cancel_after_completion_reports_terminal(self, client):
        resp = client.submit(job_payload(), job_id="done-1")
        assert resp["ok"]
        cancel = client.cancel("done-1")
        assert cancel["ok"]
        assert cancel["accepted"] is False
        assert cancel["observed_state"] == "completed"


class TestAdmissionPaths:
    """Typed-rejection paths, driven deterministically by staging the
    server state by hand (no dispatcher, no timing)."""

    @staticmethod
    def _handle(server, request):
        return asyncio.run(server.handle(request))

    def test_queue_full_rejection_with_retry_hint(self):
        server = ServeServer(ServeConfig(port=None, queue_limit=1))
        server._state = "serving"
        blocker = Job("blocker", JobSpec.from_payload(job_payload()))
        server.queue.offer(blocker)
        resp = self._handle(
            server, {"op": "submit", "id": "q", "job": job_payload()}
        )
        assert not resp["ok"]
        assert resp["error"]["code"] == "queue_full"
        assert resp["retry_after_ms"] > 0
        assert server.stats.get("rejected_full") == 1
        # The rejected job must not linger in the ledger.
        assert server._jobs == {}

    def test_shutting_down_rejection(self):
        server = ServeServer(ServeConfig(port=None))
        server._state = "draining"
        resp = self._handle(
            server, {"op": "submit", "id": "s", "job": job_payload()}
        )
        assert not resp["ok"]
        assert resp["error"]["code"] == "shutting_down"

    def test_duplicate_live_job_id_rejected(self):
        server = ServeServer(ServeConfig(port=None))
        server._state = "serving"
        live = Job("dup", JobSpec.from_payload(job_payload()))
        server._jobs["dup"] = live
        resp = self._handle(
            server,
            {"op": "submit", "id": "d", "job": job_payload(), "job_id": "dup"},
        )
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_job"
        assert "already live" in resp["error"]["message"]

    def test_overlong_job_id_rejected(self):
        server = ServeServer(ServeConfig(port=None))
        server._state = "serving"
        resp = self._handle(
            server,
            {"op": "submit", "id": "l", "job": job_payload(),
             "job_id": "x" * 65},
        )
        assert not resp["ok"]
        assert resp["error"]["code"] == "invalid_job"

    def test_tensor_cache_is_bounded_lru(self):
        server = ServeServer(ServeConfig(port=None, tensor_cache_entries=2))
        specs = [
            JobSpec.from_payload(job_payload(seed=s)) for s in range(4)
        ]
        for spec in specs:
            server._tensor_for(spec)
        assert len(server._tensors) == 2
        # Most recent refs stay resident; a re-request rebuilds cheaply.
        assert specs[3].tensor.key() in server._tensors


class TestDrain:
    def test_drain_completes_admitted_work(self):
        client = ServeClient.start(ServeConfig(port=None))
        try:
            for i in range(4):
                assert client.submit(job_payload(factors_seed=i))["ok"]
        finally:
            report = client.close()
        assert report["drained"] is True
        assert report["queue_depth"] == 0
        assert report["server_state"] == "stopped"
        assert report["completed"] == 4
        server = client.handle.server
        assert server.state == "stopped"
        assert server.pool.closed

    def test_drain_op_then_submit_rejected(self):
        client = ServeClient.start(ServeConfig(port=None))
        try:
            assert client.submit(job_payload())["ok"]
            drain = client.drain()
            assert drain["ok"] and drain["drained"] is True
            resp = client.submit(job_payload())
            assert not resp["ok"]
            assert resp["error"]["code"] == "shutting_down"
        finally:
            client.close()
