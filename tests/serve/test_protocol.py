"""Wire framing, tensor references, and job-spec validation."""

import numpy as np
import pytest

from repro.serve import (
    ERROR_CODES,
    JobSpec,
    ProtocolError,
    TensorRef,
    decode_frame,
    encode_frame,
    factors_for_spec,
    result_sha256,
)
from repro.serve.protocol import error_response, ok_response

INLINE = {
    "shape": [4, 3, 2],
    "coords": [[0, 0, 0], [1, 2, 1], [3, 1, 0], [2, 2, 1]],
    "values": [1.0, -2.5, 3.25, 0.5],
}


class TestFraming:
    def test_roundtrip(self):
        obj = {"op": "ping", "id": "x-1", "nested": {"a": [1, 2]}}
        frame = encode_frame(obj)
        assert frame.endswith(b"\n")
        assert decode_frame(frame) == obj

    def test_compact_encoding(self):
        assert encode_frame({"a": 1}) == b'{"a":1}\n'

    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"this is not json\n")
        assert exc.value.code == "malformed"

    def test_non_object_frame(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"[1, 2, 3]\n")
        assert exc.value.code == "malformed"

    def test_non_utf8_frame(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"\xff\xfe{}\n")
        assert exc.value.code == "malformed"

    def test_response_helpers(self):
        ok = ok_response("id-1", "ping", state="serving")
        assert ok["ok"] is True and ok["state"] == "serving"
        err = error_response("id-2", "submit", "queue_full", "full",
                             retry_after_ms=12.5)
        assert err["ok"] is False
        assert err["error"]["code"] == "queue_full"
        assert err["retry_after_ms"] == 12.5

    def test_error_codes_are_closed(self):
        with pytest.raises(ValueError):
            error_response(None, "x", "no_such_code", "nope")
        with pytest.raises(ValueError):
            ProtocolError("no_such_code", "nope")
        assert "queue_full" in ERROR_CODES and "oversized" in ERROR_CODES


class TestTensorRef:
    def test_synthetic_build_is_deterministic(self):
        d = {"synthetic": "poisson", "dims": [12, 10, 8], "nnz": 200, "seed": 3}
        a = TensorRef.from_payload(dict(d)).build()
        b = TensorRef.from_payload(dict(d)).build()
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.values.dtype == np.float64

    def test_dtype_is_honored(self):
        d = {"synthetic": "uniform", "dims": [10, 10], "nnz": 50,
             "dtype": "float32"}
        ref = TensorRef.from_payload(d)
        assert ref.build().values.dtype == np.float32

    def test_dataset_ref(self):
        ref = TensorRef.from_payload({"dataset": "poisson2", "seed": 1})
        assert ref.kind == "dataset"
        assert ref.key() == "dataset:poisson2:1:float64"

    def test_inline_build_and_key(self):
        ref = TensorRef.from_payload(dict(INLINE))
        t = ref.build()
        assert t.shape == (4, 3, 2)
        assert t.nnz == 4
        # Equal payloads hash to equal keys; dtype is part of the key.
        assert ref.key() == TensorRef.from_payload(dict(INLINE)).key()
        f32 = TensorRef.from_payload({**INLINE, "dtype": "float32"})
        assert f32.key() != ref.key()

    def test_key_separates_seeds_and_generators(self):
        base = {"synthetic": "poisson", "dims": [8, 8], "nnz": 30}
        k0 = TensorRef.from_payload(dict(base)).key()
        k1 = TensorRef.from_payload({**base, "seed": 1}).key()
        k2 = TensorRef.from_payload({**base, "synthetic": "uniform"}).key()
        assert len({k0, k1, k2}) == 3

    def test_payload_roundtrip(self):
        for payload in (
            {"synthetic": "poisson", "dims": [6, 5], "nnz": 10, "seed": 2,
             "dtype": "float32"},
            {"dataset": "poisson1", "seed": 0, "dtype": "float64"},
            {**INLINE, "dtype": "float64"},
        ):
            ref = TensorRef.from_payload(dict(payload))
            again = TensorRef.from_payload(ref.to_payload())
            assert again == ref

    @pytest.mark.parametrize(
        "bad",
        [
            {"dataset": "no-such-dataset"},
            {"synthetic": "no-such-generator", "dims": [4, 4], "nnz": 5},
            {"synthetic": "poisson", "dims": [4], "nnz": 5},
            {"synthetic": "poisson", "dims": [4, 0], "nnz": 5},
            {"synthetic": "poisson", "dims": [4, 4], "nnz": 0},
            {"synthetic": "poisson", "dims": [4, 4], "nnz": 10_000_000_000},
            {"synthetic": "poisson", "dims": [4, 4], "nnz": 5,
             "dtype": "float16"},
            {"shape": [4, 4], "coords": [[0, 0]], "values": [1.0, 2.0]},
            {"shape": [4, 4], "coords": [[0, 0, 0]], "values": [1.0]},
            {"shape": [4, 4], "coords": [["a", "b"]], "values": [1.0]},
            {},
        ],
    )
    def test_rejections(self, bad):
        with pytest.raises(ProtocolError) as exc:
            TensorRef.from_payload(bad)
        assert exc.value.code == "invalid_job"


class TestJobSpec:
    def _payload(self, **over):
        d = {"tensor": dict(INLINE), "mode": 0, "rank": 8, "kernel": "mb",
             "tune": True, "factors_seed": 3}
        d.update(over)
        return d

    def test_valid_spec(self):
        spec = JobSpec.from_payload(self._payload())
        assert spec.kernel == "mb" and spec.rank == 8 and spec.tune

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            JobSpec.from_payload(self._payload(surprise=1))
        assert "surprise" in str(exc.value)

    def test_tune_requires_tunable_kernel(self):
        with pytest.raises(ProtocolError):
            JobSpec.from_payload(self._payload(kernel="splatt", tune=True))
        # ...but splatt without tuning is a legal job.
        spec = JobSpec.from_payload(self._payload(kernel="splatt", tune=False))
        assert not spec.tune

    @pytest.mark.parametrize(
        "over",
        [
            {"rank": 0},
            {"rank": 513},
            {"mode": -1},
            {"kernel": "no-such-kernel"},
            {"params": [1, 2]},
            {"tensor": {}},
        ],
    )
    def test_rejections(self, over):
        with pytest.raises(ProtocolError):
            JobSpec.from_payload(self._payload(**over))

    def test_missing_tensor(self):
        with pytest.raises(ProtocolError):
            JobSpec.from_payload({"rank": 4})
        with pytest.raises(ProtocolError):
            JobSpec.from_payload("not an object")

    def test_params_normalized_hashable(self):
        spec = JobSpec.from_payload(
            self._payload(tune=False, params={"block_counts": [2, 2, 1]})
        )
        assert spec.params == (("block_counts", (2, 2, 1)),)
        hash(spec)  # frozen + tuples: usable as a dict key

    def test_batch_key_groups_equal_work(self):
        a = JobSpec.from_payload(self._payload(factors_seed=1))
        b = JobSpec.from_payload(self._payload(factors_seed=2))
        # Different factor seeds share a batch (factors differ per job)...
        assert a.batch_key() == b.batch_key()
        # ...different rank/dtype/kernel do not.
        c = JobSpec.from_payload(self._payload(rank=16))
        d = JobSpec.from_payload(
            self._payload(tensor={**INLINE, "dtype": "float32"})
        )
        assert a.batch_key() != c.batch_key()
        assert a.batch_key() != d.batch_key()

    def test_payload_roundtrip(self):
        spec = JobSpec.from_payload(
            self._payload(tune=False, params={"block_counts": [2, 1, 1]})
        )
        assert JobSpec.from_payload(spec.to_payload()) == spec


class TestFactorContract:
    def test_deterministic_and_dtyped(self):
        a = factors_for_spec((6, 5, 4), 3, seed=9, dtype="float32")
        b = factors_for_spec((6, 5, 4), 3, seed=9, dtype="float32")
        assert len(a) == 3
        for fa, fb in zip(a, b):
            assert fa.dtype == np.float32
            np.testing.assert_array_equal(fa, fb)
        c = factors_for_spec((6, 5, 4), 3, seed=10, dtype="float32")
        assert not np.array_equal(a[0], c[0])

    def test_result_sha256_is_bytewise(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert result_sha256(x) == result_sha256(x.copy())
        assert result_sha256(x) != result_sha256(x.astype(np.float32))
        # Non-contiguous views hash their C-order bytes.
        assert result_sha256(x.T) == result_sha256(np.ascontiguousarray(x.T))
