"""The open-loop load generator and its report."""

import pytest

from repro.serve import (
    LoadReport,
    LoadSpec,
    ServeClient,
    ServeConfig,
    default_job_mix,
    run_open_loop,
)

pytestmark = pytest.mark.parallel_exec


class TestLoadSpec:
    def test_validation(self):
        jobs = default_job_mix()
        with pytest.raises(ValueError):
            LoadSpec(jobs=())
        with pytest.raises(ValueError):
            LoadSpec(jobs=jobs, rate_hz=0)
        with pytest.raises(ValueError):
            LoadSpec(jobs=jobs, n_requests=0)
        with pytest.raises(ValueError):
            LoadSpec(jobs=jobs, n_clients=0)

    def test_default_mix_covers_both_dtypes(self):
        mix = default_job_mix(nnz=500, dims=(16, 14, 12), rank=4)
        assert len(mix) == 4
        dtypes = {j["tensor"]["dtype"] for j in mix}
        assert dtypes == {"float32", "float64"}
        signatures = {
            (j["tensor"]["synthetic"], j["tensor"]["seed"], j["tensor"]["dtype"])
            for j in mix
        }
        assert len(signatures) == 4  # four distinct batch signatures

    def test_report_shape(self):
        report = LoadReport()
        assert report.throughput == 0.0
        d = report.to_dict()
        assert set(d) >= {
            "n_sent", "n_completed", "n_errors", "errors_by_code",
            "throughput_jobs_s", "latency_ms", "n_verified",
            "n_verify_failed",
        }
        assert d["latency_ms"]["count"] == 0


class TestOpenLoop:
    def test_open_loop_run_verified(self):
        spec = LoadSpec(
            jobs=default_job_mix(nnz=500, dims=(20, 18, 16), rank=4),
            rate_hz=200.0,
            n_requests=12,
            n_clients=2,
            verify=True,
        )
        client = ServeClient.start(
            ServeConfig(port=None, n_workers=2, n_runners=2)
        )
        try:

            def factory():
                return client

            report = run_open_loop(factory, spec)
        finally:
            # The drain report carries the final counters (the counter
            # update trails the future resolution, so a live stats()
            # probe could still be one behind).
            drain = client.close()
        assert report.n_sent == 12
        assert report.n_completed + report.n_errors == 12
        assert report.n_errors == 0, report.errors_by_code
        # Every completed job verified bitwise against direct execution.
        assert report.n_verified == report.n_completed
        assert report.n_verify_failed == 0
        assert report.latency.count == report.n_completed
        assert report.throughput > 0
        assert report.percentile_ms(99) >= report.percentile_ms(50) > 0
        assert drain["counters"]["completed"] == 12
        assert drain["counters"]["accepted"] == 12

    def test_error_accounting(self):
        # A job the server must reject (tune on an untunable kernel)
        # lands in errors_by_code, not in the latency population.
        bad = {
            "tensor": {"synthetic": "poisson", "dims": [10, 10], "nnz": 50},
            "rank": 4,
            "kernel": "splatt",
            "tune": True,
        }
        spec = LoadSpec(jobs=(bad,), rate_hz=500.0, n_requests=5, n_clients=1)
        with ServeClient.start(ServeConfig(port=None)) as client:

            def factory():
                return client

            report = run_open_loop(factory, spec)
        assert report.n_sent == 5
        assert report.n_errors == 5
        assert report.errors_by_code == {"invalid_job": 5}
        assert report.latency.count == 0
