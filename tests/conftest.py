"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import poisson_tensor, uniform_random_tensor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_tensor():
    """A small 3-mode Poisson tensor exercised by most kernel tests."""
    return poisson_tensor((18, 25, 21), 1500, seed=42)


@pytest.fixture
def medium_tensor():
    """A mid-size tensor for plan/partition tests (too big to densify in
    every test, structurally interesting)."""
    return uniform_random_tensor((60, 200, 80), 8000, seed=7)


@pytest.fixture
def factors_for(rng):
    """Factory: random factor matrices for a tensor and rank."""

    def make(tensor, rank: int):
        return [rng.standard_normal((n, rank)) for n in tensor.shape]

    return make
