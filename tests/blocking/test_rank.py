"""Tests for rank blocking configuration."""

import pytest

from repro.blocking import REGISTER_BLOCK_COLS, RankBlocking
from repro.util import ConfigError


class TestStrips:
    def test_identity_default(self):
        rb = RankBlocking()
        assert rb.is_identity
        assert rb.strips(64) == [(0, 64)]

    def test_n_blocks(self):
        rb = RankBlocking(n_blocks=4)
        strips = rb.strips(64)
        assert len(strips) == 4
        assert strips[0] == (0, 16)
        assert strips[-1] == (48, 64)

    def test_block_cols(self):
        rb = RankBlocking(block_cols=48)
        strips = rb.strips(128)
        assert strips == [(0, 48), (48, 96), (96, 128)]

    def test_strips_cover_and_disjoint(self):
        for rb in (RankBlocking(n_blocks=3), RankBlocking(block_cols=20)):
            strips = rb.strips(70)
            assert strips[0][0] == 0
            assert strips[-1][1] == 70
            for (a, b), (c, d) in zip(strips, strips[1:]):
                assert b == c

    def test_block_cols_larger_than_rank(self):
        rb = RankBlocking(block_cols=256)
        assert rb.strips(64) == [(0, 64)]

    def test_non_divisible_rank(self):
        rb = RankBlocking(n_blocks=3)
        strips = rb.strips(100)
        assert sum(hi - lo for lo, hi in strips) == 100

    def test_n_strips(self):
        assert RankBlocking(block_cols=16).n_strips(512) == 32


class TestValidation:
    def test_mutually_exclusive(self):
        with pytest.raises(ConfigError):
            RankBlocking(n_blocks=2, block_cols=16)

    def test_positive(self):
        with pytest.raises(ConfigError):
            RankBlocking(n_blocks=0)
        with pytest.raises(ConfigError):
            RankBlocking(block_cols=0)
        with pytest.raises(ConfigError):
            RankBlocking(register_block=0)

    def test_too_many_blocks(self):
        with pytest.raises(ConfigError):
            RankBlocking(n_blocks=100).strips(64)


class TestRegisterBlocking:
    def test_paper_default_is_one_cache_line(self):
        assert REGISTER_BLOCK_COLS == 16  # 16 doubles = 128 bytes

    def test_register_blocks_per_strip(self):
        rb = RankBlocking(block_cols=64)
        assert rb.register_blocks(64) == 4
        assert rb.register_blocks(17) == 2
        assert rb.register_blocks(1) == 1

    def test_describe(self):
        text = RankBlocking(n_blocks=4).describe(64)
        assert "4 strip" in text
