"""Tests for COO-to-blocks reorganization."""

import numpy as np
import pytest

from repro.blocking import BlockGrid, partition_coo
from repro.tensor import uniform_random_tensor
from repro.util import ShapeError


@pytest.fixture
def tensor():
    return uniform_random_tensor((40, 60, 50), 3000, seed=61)


class TestPartition:
    def test_nnz_conserved(self, tensor):
        grid = BlockGrid(tensor.shape, (2, 3, 4))
        blocked = partition_coo(tensor, grid, 0)
        assert blocked.nnz == tensor.nnz

    def test_values_conserved(self, tensor):
        grid = BlockGrid(tensor.shape, (4, 4, 4))
        blocked = partition_coo(tensor, grid, 0)
        total = sum(b.splatt.vals.sum() for b in blocked.blocks)
        assert total == pytest.approx(tensor.values.sum())

    def test_local_indices_within_block_shape(self, tensor):
        grid = BlockGrid(tensor.shape, (2, 5, 3))
        blocked = partition_coo(tensor, grid, 0)
        for block in blocked.blocks:
            local = block.splatt.to_coo()
            for m, (lo, hi) in enumerate(block.bounds):
                assert local.shape[m] == hi - lo
                if local.nnz:
                    assert local.indices[:, m].max() < hi - lo

    def test_reassembled_tensor_matches(self, tensor):
        """Shifting every block's local coords by its bounds recovers the
        original tensor exactly — blocks cover and do not overlap."""
        from repro.tensor import COOTensor

        grid = BlockGrid(tensor.shape, (3, 3, 3))
        blocked = partition_coo(tensor, grid, 0)
        parts_idx, parts_val = [], []
        for block in blocked.blocks:
            local = block.splatt.to_coo()
            offs = np.array([lo for lo, _ in block.bounds])
            parts_idx.append(local.indices + offs)
            parts_val.append(local.values)
        rebuilt = COOTensor(
            tensor.shape, np.concatenate(parts_idx), np.concatenate(parts_val)
        )
        assert rebuilt.equal(tensor)

    def test_inner_blocking_splits_fibers(self, tensor):
        """Blocking along the inner mode cannot reduce the fiber count."""
        from repro.tensor import SplattTensor

        base = SplattTensor.from_coo(tensor, 0).n_fibers
        grid = BlockGrid(tensor.shape, (1, 6, 1))
        blocked = partition_coo(tensor, grid, 0)
        assert blocked.n_fibers >= base

    def test_fiber_mode_blocking_preserves_fiber_count(self, tensor):
        """Blocking along the fiber-label mode only regroups fibers."""
        from repro.tensor import SplattTensor

        base = SplattTensor.from_coo(tensor, 0).n_fibers
        grid = BlockGrid(tensor.shape, (1, 1, 5))
        blocked = partition_coo(tensor, grid, 0)
        assert blocked.n_fibers == base

    def test_loop_order_output_outermost(self, tensor):
        grid = BlockGrid(tensor.shape, (3, 2, 2))
        blocked = partition_coo(tensor, grid, 0)
        out_coords = [b.coords[0] for b in blocked.blocks]
        assert out_coords == sorted(out_coords)

    def test_trivial_grid_single_block(self, tensor):
        grid = BlockGrid(tensor.shape, (1, 1, 1))
        blocked = partition_coo(tensor, grid, 0)
        assert len(blocked) == 1
        assert blocked.blocks[0].splatt.nnz == tensor.nnz

    def test_shape_mismatch_rejected(self, tensor):
        grid = BlockGrid((10, 10, 10), (2, 2, 2))
        with pytest.raises(ShapeError):
            partition_coo(tensor, grid, 0)

    def test_orientation_respected(self, tensor):
        grid = BlockGrid(tensor.shape, (2, 2, 2))
        blocked = partition_coo(tensor, grid, output_mode=1, inner_mode=2)
        assert blocked.output_mode == 1
        assert blocked.inner_mode == 2
        assert blocked.fiber_mode == 0
        for block in blocked.blocks:
            assert block.splatt.output_mode == 1
