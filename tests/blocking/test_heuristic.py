"""Tests for the Section V-C block-size selection heuristic."""

import pytest

from repro.blocking import RankBlocking, select_blocking
from repro.tensor import uniform_random_tensor
from repro.util.errors import ReproError


@pytest.fixture
def tensor():
    # Mode 1 is longest: the search must sweep it first.
    return uniform_random_tensor((30, 120, 60), 2500, seed=71)


def planted_evaluator(best_counts, best_cols):
    """Synthetic cost surface with a unique optimum, unimodal along each
    search direction (what the greedy sweep assumes)."""

    def evaluate(counts, rb):
        cost = 100.0
        if counts is not None:
            for c, target in zip(counts, best_counts):
                cost += abs(c - target) / target * 10.0 - 10.0
        if rb is not None:
            cols = rb.block_cols or 0
            cost += abs(cols - best_cols) / best_cols * 5.0 - 5.0
        return cost

    return evaluate


class TestSearch:
    def test_finds_planted_mb_optimum(self, tensor):
        choice = select_blocking(
            tensor, 0, 128, planted_evaluator((1, 8, 4), 32), use_rankb=False
        )
        assert choice.block_counts == (1, 8, 4)
        assert choice.rank_blocking is None

    def test_finds_planted_rank_optimum(self, tensor):
        choice = select_blocking(
            tensor, 0, 128, planted_evaluator((1, 1, 1), 32), use_mb=False
        )
        assert choice.block_counts is None
        assert choice.rank_blocking.block_cols == 32

    def test_combined_search(self, tensor):
        choice = select_blocking(tensor, 0, 128, planted_evaluator((1, 4, 2), 48))
        assert choice.block_counts == (1, 4, 2)
        assert choice.rank_blocking.block_cols == 48

    def test_no_blocking_when_baseline_wins(self, tensor):
        def baseline_best(counts, rb):
            return 1.0 if counts is None and rb is None else 2.0

        choice = select_blocking(tensor, 0, 128, baseline_best)
        assert choice.block_counts is None
        assert choice.rank_blocking is None
        assert choice.cost == 1.0

    def test_trace_records_every_probe(self, tensor):
        choice = select_blocking(tensor, 0, 128, planted_evaluator((1, 2, 1), 16))
        assert choice.n_evaluations == len(choice.trace)
        assert choice.trace[0] == (None, None, choice.trace[0][2])

    def test_longest_mode_swept_first(self, tensor):
        """The first MB probe must double the longest mode (mode 1)."""
        probes = []

        def spy(counts, rb):
            probes.append(counts)
            return 1.0  # never improves: one probe per mode then stop

        select_blocking(tensor, 0, 128, spy, use_rankb=False)
        assert probes[1] == (1, 2, 1)

    def test_rank_too_small_skips_rankb(self, tensor):
        choice = select_blocking(
            tensor, 0, 16, planted_evaluator((1, 1, 1), 16), use_mb=False
        )
        assert choice.rank_blocking is None

    def test_requires_some_technique(self, tensor):
        with pytest.raises(ReproError):
            select_blocking(
                tensor, 0, 64, lambda c, r: 1.0, use_mb=False, use_rankb=False
            )

    def test_block_cap_respected(self, tensor):
        def always_improves(counts, rb):
            if counts is None:
                return 1.0
            return 1.0 / (counts[0] * counts[1] * counts[2] + 1)

        choice = select_blocking(
            tensor, 0, 64, always_improves, use_rankb=False, max_blocks_per_mode=8
        )
        assert all(c <= 8 for c in choice.block_counts)
