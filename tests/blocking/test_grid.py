"""Tests for BlockGrid."""

import numpy as np
import pytest

from repro.blocking import BlockGrid
from repro.util import ConfigError, ShapeError


class TestUniformGrid:
    def test_counts_and_total(self):
        g = BlockGrid((10, 20, 30), (2, 4, 5))
        assert g.block_counts == (2, 4, 5)
        assert g.n_blocks == 40

    def test_boundaries_cover_exactly(self):
        g = BlockGrid((10, 21, 33), (3, 4, 5))
        for extent, bounds in zip(g.shape, g.boundaries):
            assert bounds[0] == 0
            assert bounds[-1] == extent
            assert np.all(np.diff(bounds) >= 1)

    def test_near_equal_widths(self):
        g = BlockGrid((100,), (7,))
        widths = np.diff(g.boundaries[0])
        assert widths.max() - widths.min() <= 1

    def test_too_many_blocks_rejected(self):
        with pytest.raises(ConfigError):
            BlockGrid((3, 3, 3), (4, 1, 1))

    def test_zero_blocks_rejected(self):
        with pytest.raises(ConfigError):
            BlockGrid((3, 3, 3), (0, 1, 1))

    def test_count_arity_checked(self):
        with pytest.raises(ShapeError):
            BlockGrid((3, 3, 3), (1, 1))


class TestBlockMapping:
    def test_block_of_and_coords_roundtrip(self):
        g = BlockGrid((10, 12, 14), (2, 3, 7))
        rng = np.random.default_rng(1)
        idx = np.stack(
            [rng.integers(0, e, 200) for e in g.shape], axis=1
        )
        flat = g.block_of(idx)
        assert flat.min() >= 0 and flat.max() < g.n_blocks
        for t in range(0, 200, 17):
            coords = g.block_coords(int(flat[t]))
            bounds = g.block_bounds(coords)
            for m, (lo, hi) in enumerate(bounds):
                assert lo <= idx[t, m] < hi

    def test_every_index_in_exactly_one_block(self):
        g = BlockGrid((9,), (4,))
        all_idx = np.arange(9).reshape(-1, 1)
        flat = g.block_of(all_idx)
        counts = np.bincount(flat, minlength=4)
        assert counts.sum() == 9
        # Contiguity: blocks are intervals.
        assert np.all(np.diff(flat) >= 0)

    def test_block_shape(self):
        g = BlockGrid((10, 10), (2, 5))
        assert g.block_shape((0, 0)) == (5, 2)

    def test_bad_coords_rejected(self):
        g = BlockGrid((10, 10), (2, 5))
        with pytest.raises(ConfigError):
            g.block_bounds((2, 0))

    def test_indices_shape_checked(self):
        g = BlockGrid((10, 10), (2, 2))
        with pytest.raises(ShapeError):
            g.block_of(np.zeros((5, 3), dtype=np.int64))


class TestExplicitBoundaries:
    def test_non_uniform(self):
        g = BlockGrid.from_boundaries((10,), [[0, 7, 10]])
        assert g.block_counts == (2,)
        assert g.block_bounds((0,)) == ((0, 7),)
        assert g.block_bounds((1,)) == ((7, 10),)

    def test_must_span(self):
        with pytest.raises(ConfigError):
            BlockGrid.from_boundaries((10,), [[0, 5, 9]])
        with pytest.raises(ConfigError):
            BlockGrid.from_boundaries((10,), [[1, 10]])

    def test_must_increase(self):
        with pytest.raises(ConfigError):
            BlockGrid.from_boundaries((10,), [[0, 5, 5, 10]])

    def test_matches_uniform_semantics(self):
        uni = BlockGrid((20, 20), (4, 2))
        exp = BlockGrid.from_boundaries(
            (20, 20), [uni.boundaries[0], uni.boundaries[1]]
        )
        idx = np.stack(np.meshgrid(np.arange(20), np.arange(20)), -1).reshape(-1, 2)
        np.testing.assert_array_equal(uni.block_of(idx), exp.block_of(idx))


class TestBlockOfBounds:
    """block_of must reject out-of-range coordinates, not clamp them."""

    def test_negative_coordinate_rejected(self):
        g = BlockGrid((10, 10), (2, 2))
        idx = np.array([[0, 0], [-1, 3]], dtype=np.int64)
        with pytest.raises(ShapeError, match="mode-0"):
            g.block_of(idx)

    def test_coordinate_at_extent_rejected(self):
        g = BlockGrid((10, 12), (2, 3))
        idx = np.array([[3, 12]], dtype=np.int64)
        with pytest.raises(ShapeError, match="mode-1"):
            g.block_of(idx)

    def test_in_range_still_mapped(self):
        g = BlockGrid((10,), (2,))
        idx = np.array([[0], [4], [5], [9]], dtype=np.int64)
        flat = g.block_of(idx)
        np.testing.assert_array_equal(flat, [0, 0, 1, 1])
