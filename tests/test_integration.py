"""End-to-end integration tests tying the subsystems together.

Each test exercises a full user workflow at reduced scale: dataset →
analysis → tuning → blocked decomposition → distributed consistency.
"""

import numpy as np
import pytest

from repro.cpd import cp_als, cp_als_dimtree, init_factors
from repro.dist import ProcessGrid, distributed_cp_als
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.perf import performance_report, predict_time
from repro.tensor import analyze, load_dataset
from repro.tensor.datasets import DATASETS
from repro.tune import Tuner, TuningCache


@pytest.fixture(scope="module")
def workload():
    tensor = load_dataset("poisson2", nnz=40_000)
    machine = power8_socket().scaled(DATASETS["poisson2"].machine_scale)
    return tensor, machine


class TestTuneThenDecompose:
    def test_full_pipeline(self, workload):
        """analyze -> tune -> run the tuned kernel inside CP-ALS ->
        verify the trajectory matches the baseline kernel's."""
        tensor, machine = workload

        stats = analyze(tensor)
        assert stats.nnz == tensor.nnz

        tuner = Tuner(tensor, 0, machine, cache=TuningCache())
        cfg = tuner.get_or_tune(64)
        assert cfg.speedup >= 1.0

        kernel_params = {}
        if cfg.block_counts is not None:
            kernel_name = "mb+rankb" if cfg.rank_blocking else "mb"
            kernel_params["block_counts"] = cfg.block_counts
        else:
            kernel_name = "rankb" if cfg.rank_blocking else "splatt"
        if cfg.rank_blocking is not None:
            kernel_params["rank_blocking"] = cfg.rank_blocking

        init = init_factors(tensor, 5, seed=9)
        tuned_run = cp_als(
            tensor,
            5,
            n_iters=3,
            tol=0.0,
            kernel=kernel_name,
            kernel_params=kernel_params,
            init=[f.copy() for f in init],
        )
        baseline_run = cp_als(
            tensor, 5, n_iters=3, tol=0.0, init=[f.copy() for f in init]
        )
        np.testing.assert_allclose(tuned_run.fits, baseline_run.fits, rtol=1e-8)

    def test_report_reflects_tuning(self, workload):
        """The tuned plan's predicted time must beat the baseline's, and
        the report must agree with predict_time."""
        tensor, machine = workload
        tuner = Tuner(tensor, 0, machine)
        cfg = tuner.get_or_tune(256)
        base_plan = get_kernel("splatt").prepare(tensor, 0)
        tuned_plan = tuner.planner.plan_for(cfg.block_counts, cfg.rank_blocking)
        t_base = predict_time(base_plan, 256, machine).total
        report = performance_report(tuned_plan, 256, machine)
        assert report.breakdown.total <= t_base
        assert report.breakdown.total == pytest.approx(cfg.cost, rel=1e-9)


class TestSharedVsDistributedVsMemoized:
    def test_three_drivers_agree(self, workload):
        """Shared-memory, distributed, and dimension-tree ALS walk the
        same trajectory from the same start."""
        tensor, machine = workload
        init = init_factors(tensor, 4, seed=11)
        shared = cp_als(
            tensor, 4, n_iters=3, tol=0.0, init=[f.copy() for f in init]
        )
        memo = cp_als_dimtree(
            tensor, 4, n_iters=3, tol=0.0, init=[f.copy() for f in init]
        )
        dist = distributed_cp_als(
            tensor,
            4,
            ProcessGrid((2, 2, 1)),
            machine,
            n_iters=3,
            tol=0.0,
            init=[f.copy() for f in init],
        )
        np.testing.assert_allclose(memo.fits, shared.fits, rtol=1e-8)
        np.testing.assert_allclose(dist.fits, shared.fits, rtol=1e-8)


class TestDeterminism:
    def test_experiments_reproducible(self):
        """Identical seeds give identical datasets, tunings, and models —
        the property every benchmark table relies on."""
        a = load_dataset("nell2", nnz=5000)
        b = load_dataset("nell2", nnz=5000)
        assert a.equal(b)
        machine = power8_socket().scaled(DATASETS["nell2"].machine_scale)
        cfg_a = Tuner(a, 0, machine).tune(64)
        cfg_b = Tuner(b, 0, machine).tune(64)
        assert cfg_a.block_counts == cfg_b.block_counts
        assert cfg_a.cost == pytest.approx(cfg_b.cost)
