"""Robustness / failure-injection tests: degenerate inputs must either
work or fail loudly with the library's own exception types."""

import numpy as np
import pytest

from repro.blocking import BlockGrid, RankBlocking, select_blocking
from repro.cpd import cp_als, cp_apr
from repro.dist import ProcessGrid, SimCluster, distributed_mttkrp, medium_grain_decompose
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.perf import ConfigPlanner, predict_time
from repro.tensor import COOTensor
from repro.tune import Tuner
from repro.util.errors import ReproError


def empty_tensor(shape=(6, 7, 8)) -> COOTensor:
    return COOTensor(shape, np.empty((0, 3)), np.empty(0))


def singleton_tensor(shape=(6, 7, 8)) -> COOTensor:
    return COOTensor(shape, np.array([[1, 2, 3]]), np.array([2.0]))


MACHINE = power8_socket().scaled(1.0 / 64.0)


class TestEmptyTensor:
    def test_models_handle_empty(self):
        plan = get_kernel("splatt").prepare(empty_tensor(), 0)
        tb = predict_time(plan, 16, MACHINE)
        assert tb.total == 0.0

    def test_blocked_plans_handle_empty(self):
        plan = get_kernel("mb").prepare(empty_tensor(), 0, block_counts=(2, 2, 2))
        assert plan.block_stats() == []
        assert predict_time(plan, 16, MACHINE).total == 0.0

    def test_heuristic_survives_empty(self):
        t = empty_tensor()
        planner = ConfigPlanner(t, 0)
        choice = select_blocking(t, 0, 64, planner.evaluator(64, MACHINE))
        assert choice.cost == 0.0

    def test_cpd_on_empty(self):
        res = cp_als(empty_tensor(), 2, n_iters=2)
        assert np.isfinite(res.final_fit)

    def test_distributed_on_empty(self):
        t = empty_tensor()
        rng = np.random.default_rng(0)
        factors = [rng.random((n, 4)) for n in t.shape]
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=0)
        res = distributed_mttkrp(dec, factors, 0, MACHINE)
        assert np.all(res.output == 0.0)


class TestSingletonTensor:
    def test_tuner(self):
        cfg = Tuner(singleton_tensor(), 0, MACHINE).tune(32)
        assert cfg.cost > 0

    def test_apr(self):
        res = cp_apr(singleton_tensor(), 1, n_iters=3)
        assert np.isfinite(res.final_log_likelihood)

    def test_all_kernels(self):
        t = singleton_tensor()
        rng = np.random.default_rng(1)
        factors = [rng.random((n, 3)) for n in t.shape]
        outs = [
            get_kernel("splatt").mttkrp(t, factors, 0),
            get_kernel("mb").mttkrp(t, factors, 0, block_counts=(2, 2, 2)),
            get_kernel("rankb").mttkrp(t, factors, 0, n_rank_blocks=1),
        ]
        for o in outs[1:]:
            np.testing.assert_allclose(o, outs[0])


class TestDegenerateShapes:
    def test_extent_one_modes(self):
        t = COOTensor((1, 9, 1), np.array([[0, 3, 0], [0, 7, 0]]), np.array([1.0, 2.0]))
        rng = np.random.default_rng(2)
        factors = [rng.random((n, 4)) for n in t.shape]
        out = get_kernel("splatt").mttkrp(t, factors, 0)
        assert out.shape == (1, 4)

    def test_grid_cannot_exceed_extent(self):
        with pytest.raises(ReproError):
            BlockGrid((1, 9, 1), (2, 2, 2))

    def test_rank_one_strips(self):
        rb = RankBlocking(block_cols=16)
        assert rb.strips(1) == [(0, 1)]


class TestClusterMisuse:
    def test_overlapping_group_rejected(self):
        cluster = SimCluster(4)
        with pytest.raises(ReproError):
            cluster.allgather([1, 1], [np.zeros(1), np.zeros(1)])

    def test_grid_larger_than_cluster_rejected(self):
        t = singleton_tensor()
        rng = np.random.default_rng(3)
        factors = [rng.random((n, 2)) for n in t.shape]
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 2)), seed=0)
        small = SimCluster(4)
        with pytest.raises(ReproError):
            distributed_mttkrp(dec, factors, 0, MACHINE, small)


class TestNumericalEdges:
    def test_huge_values_no_overflow_to_nan(self):
        t = COOTensor(
            (4, 4, 4), np.array([[0, 0, 0], [1, 1, 1]]), np.array([1e150, 1e150])
        )
        rng = np.random.default_rng(4)
        factors = [rng.random((4, 2)) for _ in range(3)]
        out = get_kernel("splatt").mttkrp(t, factors, 0)
        assert np.all(np.isfinite(out))

    def test_zero_values_allowed(self):
        t = COOTensor((3, 3, 3), np.array([[0, 0, 0]]), np.array([0.0]))
        rng = np.random.default_rng(5)
        factors = [rng.random((3, 2)) for _ in range(3)]
        out = get_kernel("splatt").mttkrp(t, factors, 0)
        np.testing.assert_allclose(out, 0.0)
