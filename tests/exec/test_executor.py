"""The shared-memory parallel executor: serial equivalence for every
registered kernel, schedule vetting, determinism across thread counts,
and the process backend.

The ``parallel_exec`` marker tags every test that may spawn worker
threads or processes; constrained CI legs deselect them and re-run with
``REPRO_EXEC_THREADS=1`` (which drops the executor to its inline path).
"""

import os

import numpy as np
import pytest

from repro.exec import (
    BACKENDS,
    ExecutionReport,
    ParallelExecutor,
    ParallelPlan,
    parallel_mttkrp,
)
from repro.kernels import get_kernel, reference_mttkrp
from repro.tensor import poisson_tensor
from repro.util.errors import ConfigError, ScheduleError

#: CI knob: the 3.10 leg re-runs these tests with this set to 1, which
#: keeps every schedule on the executor's inline (no worker) path.
MAX_THREADS = max(1, int(os.environ.get("REPRO_EXEC_THREADS", "4")))

KERNEL_PARAMS = {
    "coo": {},
    "splatt": {},
    "csf": {},
    "csf-any": {},
    "csf-blocked": {"block_counts": (3, 2, 2)},
    "mb": {"block_counts": (2, 3, 2)},
    "rankb": {"n_rank_blocks": 3},
    "mb+rankb": {"block_counts": (2, 2, 3), "n_rank_blocks": 2},
}


def _threads(n: int) -> int:
    return min(n, MAX_THREADS)


@pytest.fixture(scope="module")
def problem():
    t = poisson_tensor((24, 30, 27), 2500, seed=91)
    rng = np.random.default_rng(92)
    factors = [rng.standard_normal((n, 12)) for n in t.shape]
    return t, factors


pytestmark = pytest.mark.parallel_exec


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
@pytest.mark.parametrize("mode", [0, 1, 2])
def test_bitwise_equal_to_serial(problem, kernel_name, mode):
    """Float64 parallel results are *bitwise* identical to the serial
    kernel: each worker's reduction order is a subsequence of serial."""
    t, factors = problem
    serial = get_kernel(kernel_name).mttkrp(
        t, factors, mode, **KERNEL_PARAMS[kernel_name]
    )
    ex = ParallelExecutor(n_threads=_threads(3))
    pplan = ex.prepare(t, mode, kernel_name, **KERNEL_PARAMS[kernel_name])
    got = ex.execute(pplan, factors)
    assert got.dtype == serial.dtype
    np.testing.assert_array_equal(got, serial)


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
def test_float32_matches_reference(problem, kernel_name):
    t, factors = problem
    f32 = [f.astype(np.float32) for f in factors]
    ref = reference_mttkrp(t, factors, 0)
    got = parallel_mttkrp(
        t, f32, 0, kernel_name, n_threads=_threads(2),
        **KERNEL_PARAMS[kernel_name],
    )
    assert got.dtype == np.float32
    np.testing.assert_allclose(got, ref, rtol=2e-4, atol=2e-4)


@pytest.mark.parametrize("n_threads", [1, 2, 3, 5])
def test_deterministic_across_thread_counts(problem, n_threads):
    """Any thread count produces the same bits as one thread."""
    t, factors = problem
    one = parallel_mttkrp(t, factors, 0, "splatt", n_threads=1)
    many = parallel_mttkrp(
        t, factors, 0, "splatt", n_threads=_threads(n_threads)
    )
    np.testing.assert_array_equal(one, many)


def test_overlapping_ranges_rejected(problem):
    t, _ = problem
    ex = ParallelExecutor(n_threads=2)
    with pytest.raises(ScheduleError):
        ex.prepare(t, 0, "splatt", thread_ranges=[(0, 14), (10, 24)])


def test_gapped_ranges_rejected(problem):
    t, _ = problem
    ex = ParallelExecutor(n_threads=2)
    with pytest.raises(ScheduleError):
        ex.prepare(t, 0, "splatt", thread_ranges=[(0, 10), (14, 24)])


def test_explicit_ranges_accepted(problem):
    t, factors = problem
    ex = ParallelExecutor(n_threads=_threads(2))
    pplan = ex.prepare(t, 0, "splatt", thread_ranges=[(0, 7), (7, 24)])
    got = ex.execute(pplan, factors)
    np.testing.assert_array_equal(
        got, get_kernel("splatt").mttkrp(t, factors, 0)
    )


def test_process_backend_matches_serial(problem):
    t, factors = problem
    serial = get_kernel("splatt").mttkrp(t, factors, 0)
    got = parallel_mttkrp(
        t, factors, 0, "splatt", n_threads=_threads(2), backend="process"
    )
    np.testing.assert_array_equal(got, serial)


def test_serial_backend_and_report(problem):
    t, factors = problem
    ex = ParallelExecutor(n_threads=3, backend="serial")
    pplan = ex.prepare(t, 0, "splatt")
    assert isinstance(pplan, ParallelPlan)
    assert pplan.n_threads == 3
    assert pplan.nnz == t.nnz
    ex.execute(pplan, factors)
    report = ex.last_report
    assert isinstance(report, ExecutionReport)
    assert report.backend == "serial"
    assert len(report.thread_times_s) == 3
    assert report.makespan_s >= 0.0
    assert report.imbalance >= 1.0
    assert sum(report.thread_nnz) == t.nnz


def test_kernel_execute_parallel_entry_point(problem):
    t, factors = problem
    kern = get_kernel("csf")
    got = kern.execute_parallel(t, factors, 1, n_threads=_threads(2))
    np.testing.assert_array_equal(got, kern.mttkrp(t, factors, 1))


def test_out_buffer_reused(problem):
    t, factors = problem
    ex = ParallelExecutor(n_threads=_threads(2))
    pplan = ex.prepare(t, 0, "coo")
    out = np.full((t.shape[0], 12), 7.0)
    got = ex.execute(pplan, factors, out=out)
    assert got is out
    np.testing.assert_array_equal(out, get_kernel("coo").mttkrp(t, factors, 0))


def test_more_threads_than_rows():
    t = poisson_tensor((3, 10, 8), 60, seed=5)
    rng = np.random.default_rng(6)
    factors = [rng.standard_normal((n, 4)) for n in t.shape]
    got = parallel_mttkrp(t, factors, 0, "splatt", n_threads=_threads(8))
    np.testing.assert_array_equal(
        got, get_kernel("splatt").mttkrp(t, factors, 0)
    )


def test_bad_config_rejected():
    with pytest.raises(ConfigError):
        ParallelExecutor(n_threads=0)
    with pytest.raises(ConfigError):
        ParallelExecutor(backend="gpu")
    assert BACKENDS == ("thread", "process", "serial")


def test_tune_threads_feeds_executor(problem):
    from repro.machine import power8
    from repro.tune import Tuner

    t, factors = problem
    tuner = Tuner(t, 0, power8(1).scaled(1.0 / 16.0))
    tuned = tuner.tune_threads(12, thread_counts=(1, 2, 4))
    assert tuned.n_threads in (1, 2, 4)
    assert set(tuned.makespans) == {1, 2, 4}
    assert tuned.serial_time == tuned.makespans[1]
    assert tuned.speedup >= 1.0
    got = parallel_mttkrp(
        t, factors, 0, "splatt", n_threads=_threads(tuned.n_threads)
    )
    np.testing.assert_array_equal(
        got, get_kernel("splatt").mttkrp(t, factors, 0)
    )
