"""Executor lifecycle: owned worker pools must be reused across execute
calls and torn down by ``close()`` — repeated parallel CP-ALS runs must
not accumulate live threads (the leak cp_als shipped with before it
closed its executor)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cpd import cp_als
from repro.exec import ParallelExecutor
from repro.tensor import poisson_tensor

pytestmark = pytest.mark.parallel_exec


def _live_threads() -> set[int]:
    return {t.ident for t in threading.enumerate() if t.ident is not None}


@pytest.fixture(scope="module")
def problem():
    t = poisson_tensor((20, 24, 18), 1500, seed=4)
    rng = np.random.default_rng(5)
    factors = [rng.standard_normal((n, 8)) for n in t.shape]
    return t, factors


class TestExecutorLifecycle:
    def test_close_joins_owned_pool(self, problem):
        t, factors = problem
        before = _live_threads()
        executor = ParallelExecutor(n_threads=2)
        plan = executor.prepare(t, 0, "splatt")
        executor.execute(plan, factors)
        assert len(_live_threads()) > len(before)  # workers live
        executor.close()
        assert _live_threads() <= before

    def test_close_is_idempotent(self, problem):
        t, factors = problem
        executor = ParallelExecutor(n_threads=2)
        plan = executor.prepare(t, 0, "splatt")
        executor.execute(plan, factors)
        executor.close()
        executor.close()

    def test_pool_reused_across_executes(self, problem):
        """One owned pool serves every execute call — the worker set is
        bounded by n_threads no matter how many launches run (the
        ThreadPoolExecutor inside spawns lazily, so growth up to the cap
        is fine; growth past it would mean a fresh pool per call)."""
        t, factors = problem
        before = _live_threads()
        with ParallelExecutor(n_threads=2) as executor:
            plan = executor.prepare(t, 0, "splatt")
            for _ in range(5):
                executor.execute(plan, factors)
                assert len(_live_threads() - before) <= 2
        assert _live_threads() <= before

    def test_context_manager_closes(self, problem):
        t, factors = problem
        before = _live_threads()
        with ParallelExecutor(n_threads=2) as executor:
            plan = executor.prepare(t, 0, "splatt")
            ref = executor.execute(plan, factors)
        assert _live_threads() <= before
        assert ref.shape == (t.shape[0], 8)

    def test_injected_pool_not_closed(self, problem):
        from repro.exec.pool import WorkerPool

        t, factors = problem
        pool = WorkerPool(n_threads=2, name="test-injected")
        try:
            with ParallelExecutor(n_threads=2, pool=pool) as executor:
                plan = executor.prepare(t, 0, "splatt")
                executor.execute(plan, factors)
            # close() must leave the caller's pool alive.
            assert not pool.closed
        finally:
            pool.shutdown(wait=True)


class TestCpAlsNoLeak:
    def test_repeated_parallel_cp_als_leaks_no_threads(self):
        tensor = poisson_tensor((14, 16, 12), 800, seed=9)
        cp_als(tensor, 4, n_iters=2, seed=0, n_threads=2)  # warm imports
        before = _live_threads()
        for _ in range(5):
            cp_als(tensor, 4, n_iters=2, seed=0, n_threads=2)
        leaked = _live_threads() - before
        assert leaked == set(), f"leaked worker threads: {leaked}"

    def test_cp_als_closes_executor_on_error(self):
        """The finally-path: a mid-run failure must still tear down the
        owned pool."""
        tensor = poisson_tensor((14, 16, 12), 800, seed=9)
        before = _live_threads()
        with pytest.raises(ValueError):
            cp_als(
                tensor, 4, n_iters=2, seed=0, n_threads=2,
                init=[np.ones((2, 2))] * 3,  # wrong shapes -> ConfigError
            )
        assert _live_threads() <= before
