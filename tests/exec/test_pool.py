"""The shared worker pool and cooperative cancellation primitives."""

import threading

import numpy as np
import pytest

from repro.exec import (
    CancellationToken,
    ParallelExecutor,
    WorkerPool,
    parallel_mttkrp,
)
from repro.tensor import poisson_tensor
from repro.util.errors import CancelledError, ConfigError

pytestmark = pytest.mark.parallel_exec


class TestCancellationToken:
    def test_initially_clear(self):
        token = CancellationToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op

    def test_cancel_is_idempotent_and_first_call_wins(self):
        token = CancellationToken()
        assert token.cancel() is True
        assert token.cancel() is False
        assert token.cancelled

    def test_raise_if_cancelled(self):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(CancelledError, match="my work"):
            token.raise_if_cancelled("my work")

    def test_first_call_race_single_winner(self):
        # Many threads cancel at once; exactly one sees True.
        token = CancellationToken()
        wins = []
        barrier = threading.Barrier(8)

        def contender():
            barrier.wait()
            if token.cancel():
                wins.append(1)

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestWorkerPool:
    def test_submit_and_result(self):
        with WorkerPool(n_threads=2) as pool:
            futures = [pool.submit(pow, 2, i) for i in range(5)]
            assert [f.result() for f in futures] == [1, 2, 4, 8, 16]
            assert pool.n_submitted == 5

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            WorkerPool(n_threads=0)

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(n_threads=1)
        pool.shutdown()
        assert pool.closed
        with pytest.raises(ConfigError):
            pool.submit(pow, 2, 2)
        pool.shutdown()  # idempotent

    def test_shared_pool_execution_matches_private(self):
        t = poisson_tensor((20, 24, 18), 1500, seed=7)
        rng = np.random.default_rng(8)
        factors = [rng.standard_normal((n, 6)) for n in t.shape]
        private = parallel_mttkrp(t, factors, 0, "splatt", n_threads=2)
        with WorkerPool(n_threads=2) as pool:
            ex = ParallelExecutor(n_threads=2, pool=pool)
            pplan = ex.prepare(t, 0, "splatt")
            shared = ex.execute(pplan, factors)
            # Many executions multiplex onto the one pool.
            again = ex.execute(pplan, factors)
            assert pool.n_submitted >= 2
        np.testing.assert_array_equal(shared, private)
        np.testing.assert_array_equal(again, private)

    def test_pool_requires_thread_backend(self):
        with WorkerPool(n_threads=1) as pool:
            with pytest.raises(ConfigError):
                ParallelExecutor(n_threads=1, backend="process", pool=pool)

    def test_pool_survives_executor(self):
        # The executor never shuts the shared pool down.
        pool = WorkerPool(n_threads=2)
        t = poisson_tensor((16, 14, 12), 600, seed=3)
        rng = np.random.default_rng(4)
        factors = [rng.standard_normal((n, 4)) for n in t.shape]
        ex = ParallelExecutor(n_threads=2, pool=pool)
        ex.execute(ex.prepare(t, 0, "splatt"), factors)
        del ex
        assert not pool.closed
        assert pool.submit(pow, 3, 2).result() == 9
        pool.shutdown()


class TestExecutorCancellation:
    def test_pre_cancelled_token_aborts_before_work(self):
        t = poisson_tensor((16, 14, 12), 600, seed=3)
        rng = np.random.default_rng(4)
        factors = [rng.standard_normal((n, 4)) for n in t.shape]
        ex = ParallelExecutor(n_threads=2)
        pplan = ex.prepare(t, 0, "splatt")
        token = CancellationToken()
        token.cancel()
        with pytest.raises(CancelledError):
            ex.execute(pplan, factors, cancel_token=token)

    def test_uncancelled_token_is_harmless(self):
        t = poisson_tensor((16, 14, 12), 600, seed=3)
        rng = np.random.default_rng(4)
        factors = [rng.standard_normal((n, 4)) for n in t.shape]
        ex = ParallelExecutor(n_threads=2)
        pplan = ex.prepare(t, 0, "splatt")
        token = CancellationToken()
        got = ex.execute(pplan, factors, cancel_token=token)
        want = parallel_mttkrp(t, factors, 0, "splatt", n_threads=1)
        np.testing.assert_array_equal(got, want)

    def test_serial_path_honors_token(self):
        t = poisson_tensor((16, 14, 12), 600, seed=3)
        rng = np.random.default_rng(4)
        factors = [rng.standard_normal((n, 4)) for n in t.shape]
        ex = ParallelExecutor(n_threads=1)
        pplan = ex.prepare(t, 0, "splatt")
        token = CancellationToken()
        token.cancel()
        with pytest.raises(CancelledError):
            ex.execute(pplan, factors, cancel_token=token)
