"""Tracer core: span nesting, thread attribution, counters, the disabled
no-op contract, and the active-tracer plumbing."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)


def make_clock(step_ns: int = 1000):
    """Deterministic injectable clock: advances ``step_ns`` per call."""
    state = {"now": 0}

    def clock() -> int:
        state["now"] += step_ns
        return state["now"]

    return clock


class TestSpans:
    def test_span_records_name_duration_and_meta(self):
        tracer = Tracer(clock_ns=make_clock())
        with tracer.span("work", mode=2) as sp:
            sp.meta["extra"] = 7
        (rec,) = tracer.spans
        assert rec.name == "work"
        assert rec.dur_ns > 0
        assert rec.meta == {"mode": 2, "extra": 7}

    def test_nesting_depth(self):
        tracer = Tracer(clock_ns=make_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2
        # Spans close innermost-first.
        assert [s.name for s in tracer.spans] == ["innermost", "inner", "outer"]

    def test_depth_resets_between_siblings(self):
        tracer = Tracer(clock_ns=make_clock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert all(s.depth == 0 for s in tracer.spans)

    def test_thread_attribution(self):
        tracer = Tracer()
        # All workers alive at once, or the OS may reuse thread idents.
        barrier = threading.Barrier(3)

        def worker():
            with tracer.span("threaded"):
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with tracer.span("main"):
            pass
        recs = tracer.spans_named("threaded")
        assert len(recs) == 3
        assert len({r.thread_id for r in recs}) == 3
        (main_rec,) = tracer.spans_named("main")
        assert main_rec.thread_id == threading.get_ident()
        # Per-thread depth stacks: concurrent siblings never inherit
        # another thread's nesting level.
        assert all(r.depth == 0 for r in recs)

    def test_add_span_synthesized(self):
        tracer = Tracer(clock_ns=make_clock())
        tracer.add_span(
            "exec.worker",
            100,
            50,
            thread_id=1_000_042,
            thread_name="process-worker-42",
            synthesized=True,
        )
        (rec,) = tracer.spans
        assert rec.thread_id == 1_000_042
        assert rec.thread_name == "process-worker-42"
        assert rec.meta["synthesized"] is True

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.add_span("weird", 100, -5)
        assert tracer.spans[0].dur_ns == 0


class TestCountersAndMetrics:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("kernel.nonzeros", 100)
        tracer.count("kernel.nonzeros", 50)
        tracer.count("kernel.calls")
        assert tracer.counters == {"kernel.nonzeros": 150, "kernel.calls": 1}

    def test_metrics_carry_step(self):
        tracer = Tracer(clock_ns=make_clock())
        tracer.metric("als.fit", 0.5, step=1)
        tracer.metric("als.fit", 0.7, step=2)
        assert [p.value for p in tracer.metrics] == [0.5, 0.7]
        assert [p.step for p in tracer.metrics] == [1, 2]

    def test_summary_digest(self):
        tracer = Tracer(clock_ns=make_clock())
        for _ in range(3):
            with tracer.span("mttkrp"):
                pass
        tracer.count("kernel.calls", 3)
        tracer.metric("als.fit", 0.9, step=1)
        s = tracer.summary()
        assert s["spans"]["mttkrp"]["count"] == 3
        assert s["spans"]["mttkrp"]["total_s"] > 0
        assert s["counters"] == {"kernel.calls": 3}
        assert s["n_metric_points"] == 1
        assert s["n_threads"] == 1


class TestDisabled:
    def test_null_tracer_is_disabled_and_inert(self):
        null = NullTracer()
        assert not null.enabled
        with null.span("anything", mode=0) as sp:
            sp.meta["cost"] = 1.0  # must not raise
        null.count("kernel.calls", 5)
        null.metric("fit", 0.5)
        null.add_span("x", 0, 1)
        assert null.summary() == {
            "spans": {},
            "counters": {},
            "n_metric_points": 0,
            "n_threads": 0,
        }

    def test_null_tracer_has_no_state(self):
        # __slots__ = (): the disabled singleton cannot accumulate
        # anything, which is what makes it safe as a process-wide default.
        with pytest.raises(AttributeError):
            NULL_TRACER.spans = []  # type: ignore[attr-defined]


class TestActiveTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_use_tracer_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            assert current_tracer().enabled
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(None)
        assert current_tracer() is NULL_TRACER

    def test_worker_threads_see_active_tracer(self):
        # Deliberately process-global: repro.exec worker threads must
        # observe the tracer installed by the main thread.
        tracer = Tracer()
        seen = []

        def worker():
            seen.append(current_tracer())

        with use_tracer(tracer):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == [tracer]
