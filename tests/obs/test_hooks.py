"""The instrumentation hooks: kernels, the parallel executor, the tuner,
and the CPD drivers, each recording through one activated tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import get_kernel
from repro.obs import Tracer, use_tracer
from repro.tensor import poisson_tensor

RANK = 8


@pytest.fixture
def tensor():
    return poisson_tensor((15, 20, 18), 900, seed=3)


@pytest.fixture
def factors(tensor):
    rng = np.random.default_rng(11)
    return [rng.standard_normal((n, RANK)) for n in tensor.shape]


class TestKernelHook:
    def test_execute_records_span_and_counters(self, tensor, factors):
        kern = get_kernel("splatt")
        plan = kern.prepare(tensor, 0)
        tracer = Tracer()
        with use_tracer(tracer):
            kern.execute(plan, factors)
        (span,) = tracer.spans_named("mttkrp")
        assert span.meta["kernel"] == "splatt"
        assert span.meta["mode"] == 0
        assert span.meta["nnz"] == tensor.nnz
        assert tracer.counters["kernel.calls"] == 1
        assert tracer.counters["kernel.nonzeros"] == tensor.nnz
        assert tracer.counters["kernel.factor_bytes"] > 0

    def test_every_registered_kernel_is_instrumented(self):
        from repro.kernels.base import KERNELS

        for name in KERNELS:
            execute = type(get_kernel(name)).execute
            assert getattr(execute, "_obs_instrumented", False), name
            assert hasattr(execute, "__wrapped__"), name

    def test_disabled_records_nothing_and_result_identical(self, tensor, factors):
        kern = get_kernel("splatt")
        plan = kern.prepare(tensor, 0)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = kern.execute(plan, factors)
        untraced = kern.execute(plan, factors)
        np.testing.assert_array_equal(traced, untraced)
        # Nothing recorded outside the use_tracer block.
        assert len(tracer.spans_named("mttkrp")) == 1


@pytest.mark.parallel_exec
class TestExecutorHook:
    def test_worker_spans_nest_under_parallel(self, tensor, factors):
        from repro.exec import ParallelExecutor

        executor = ParallelExecutor(n_threads=2, backend="thread")
        pplan = executor.prepare(tensor, 0, "splatt")
        tracer = Tracer()
        with use_tracer(tracer):
            result = executor.execute(pplan, factors)
        (parallel,) = tracer.spans_named("exec.parallel")
        assert parallel.meta["n_workers"] == len(pplan.tasks)
        workers = tracer.spans_named("exec.worker")
        assert len(workers) == len(pplan.tasks)
        assert {w.meta["worker"] for w in workers} == set(
            range(len(pplan.tasks))
        )
        # Worker wall-clock on the trace matches the ExecutionReport.
        report = executor.last_report
        by_worker = {w.meta["worker"]: w.meta["wall_s"] for w in workers}
        for idx, t in enumerate(report.thread_times_s):
            assert by_worker[idx] == pytest.approx(t, rel=0.5, abs=0.05)
        assert tracer.counters["exec.workers"] == len(pplan.tasks)
        assert np.isfinite(result).all()

    def test_process_backend_synthesizes_worker_spans(self, tensor, factors):
        from repro.exec import ParallelExecutor

        executor = ParallelExecutor(n_threads=2, backend="process")
        pplan = executor.prepare(tensor, 0, "splatt")
        tracer = Tracer()
        with use_tracer(tracer):
            executor.execute(pplan, factors)
        workers = tracer.spans_named("exec.worker")
        assert len(workers) == len(pplan.tasks)
        assert all(w.meta.get("synthesized") for w in workers)
        assert len({w.thread_id for w in workers}) == len(workers)


class TestTunerHook:
    def test_cache_hit_miss_counters(self, tensor):
        from repro.machine import power8_socket
        from repro.tune import Tuner, TuningCache

        cache = TuningCache()
        tracer = Tracer()
        with use_tracer(tracer):
            tuner = Tuner(tensor, 0, power8_socket(), cache=cache)
            tuner.get_or_tune(RANK)
            tuner.get_or_tune(RANK)
        assert tracer.counters["tune.cache_misses"] == 1
        assert tracer.counters["tune.cache_hits"] == 1
        assert tracer.counters["tune.evaluations"] >= 1
        outcomes = [
            s.meta.get("cache") for s in tracer.spans_named("tune.get_or_tune")
        ]
        assert outcomes == ["miss", "hit"]
        assert len(tracer.spans_named("tune.evaluate")) >= 1


class TestCPDHooks:
    def test_cp_als_iteration_spans_and_fit_metrics(self, tensor):
        from repro.cpd import cp_als

        tracer = Tracer()
        with use_tracer(tracer):
            res = cp_als(tensor, RANK, n_iters=3, seed=0)
        iters = tracer.spans_named("als.iteration")
        assert len(iters) == res.n_iters
        # One mttkrp span per mode per iteration (serial path).
        assert len(tracer.spans_named("mttkrp")) == 3 * res.n_iters
        fits = [p for p in tracer.metrics if p.name == "als.fit"]
        assert [p.step for p in fits] == list(range(1, res.n_iters + 1))
        assert fits[-1].value == pytest.approx(res.final_fit)

    def test_cp_apr_spans(self, tensor):
        from repro.cpd import cp_apr

        tracer = Tracer()
        with use_tracer(tracer):
            res = cp_apr(tensor, RANK, n_iters=2, seed=0)
        assert len(tracer.spans_named("apr.iteration")) == res.n_iters
        assert any(p.name == "apr.log_likelihood" for p in tracer.metrics)

    def test_cp_als_dimtree_spans(self, tensor):
        from repro.cpd import cp_als_dimtree

        tracer = Tracer()
        with use_tracer(tracer):
            res = cp_als_dimtree(tensor, RANK, n_iters=2, seed=0)
        assert len(tracer.spans_named("als.iteration")) == res.n_iters
        assert len(tracer.spans_named("mttkrp")) == 3 * res.n_iters

    @pytest.mark.parallel_exec
    def test_cp_als_threaded_trace_has_worker_spans(self, tensor):
        from repro.cpd import cp_als

        tracer = Tracer()
        with use_tracer(tracer):
            res = cp_als(tensor, RANK, n_iters=2, seed=0, n_threads=2)
        assert len(tracer.spans_named("als.iteration")) == res.n_iters
        # One exec.parallel (mode-level) span per mode per iteration...
        assert len(tracer.spans_named("exec.parallel")) == 3 * res.n_iters
        # ...with per-worker spans underneath.
        assert len(tracer.spans_named("exec.worker")) >= 3 * res.n_iters
