"""Exporters: chrome-trace structure, the metrics document, text summary."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    METRICS_SCHEMA_KIND,
    METRICS_SCHEMA_VERSION,
    Tracer,
    summarize_text,
    to_chrome_trace,
    to_metrics_doc,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_doc,
)

from .test_tracer import make_clock


@pytest.fixture
def recorded() -> Tracer:
    tracer = Tracer(clock_ns=make_clock())
    with tracer.span("als.iteration", iteration=1):
        with tracer.span("mttkrp", mode=0, nnz=np.int64(100)):
            pass
    tracer.count("kernel.nonzeros", 100)
    tracer.metric("als.fit", 0.25, step=1)
    return tracer


class TestChromeTrace:
    def test_schema(self, recorded):
        doc = to_chrome_trace(recorded)
        validate_chrome_trace(doc)  # must not raise
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "M", "C"}

    def test_complete_events_relative_to_origin(self, recorded):
        doc = to_chrome_trace(recorded)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"als.iteration", "mttkrp"}
        for e in xs:
            assert e["ts"] >= 0  # relative to tracer.origin_ns
            assert e["dur"] >= 0
            assert e["pid"] == 1
        # Numpy metadata must have been coerced to plain JSON types.
        (mttkrp,) = [e for e in xs if e["name"] == "mttkrp"]
        assert mttkrp["args"]["nnz"] == 100
        assert type(mttkrp["args"]["nnz"]) is int

    def test_thread_metadata_and_counters(self, recorded):
        doc = to_chrome_trace(recorded)
        ms = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert ms and all(e["name"] == "thread_name" for e in ms)
        cs = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert cs == {"als.fit", "kernel.nonzeros"}

    def test_validate_rejects_broken_docs(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"no": "traceEvents"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "X", "pid": 1, "ts": 0, "dur": -1, "tid": 1}
                    ]
                }
            )

    def test_write_roundtrip(self, recorded, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(recorded, str(path))
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        assert len(doc["traceEvents"]) >= 4


class TestMetricsDoc:
    def test_versioned_schema(self, recorded):
        doc = to_metrics_doc(recorded, meta={"command": "test"})
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["kind"] == METRICS_SCHEMA_KIND
        assert doc["meta"] == {"command": "test"}
        (counter,) = doc["counters"]
        assert counter == {"name": "kernel.nonzeros", "value": 100, "unit": "nnz"}
        (point,) = doc["metrics"]
        assert point["name"] == "als.fit" and point["step"] == 1
        assert doc["spans"]["mttkrp"]["count"] == 1
        json.dumps(doc)  # fully serializable

    def test_write_roundtrip(self, recorded, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_doc(recorded, str(path))
        doc = json.loads(path.read_text())
        assert doc["kind"] == METRICS_SCHEMA_KIND


class TestSummary:
    def test_text_mentions_everything(self, recorded):
        text = summarize_text(recorded)
        assert "mttkrp" in text
        assert "kernel.nonzeros" in text
        assert "als.fit" in text
        assert "threads observed: 1" in text

    def test_empty_tracer(self):
        text = summarize_text(Tracer())
        assert "(no spans recorded)" in text
