"""The log-bucketed latency histogram behind serve SLO metrics."""

import pytest

from repro.obs import LatencyHistogram
from repro.util import ConfigError


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(min_value=0)
        with pytest.raises(ConfigError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(n_buckets=1)

    def test_percentile_range(self):
        h = LatencyHistogram()
        with pytest.raises(ConfigError):
            h.percentile(-1)
        with pytest.raises(ConfigError):
            h.percentile(101)


class TestRecording:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_single_value(self):
        h = LatencyHistogram()
        h.record(0.25)
        assert h.count == 1
        assert h.mean == 0.25
        # Every quantile of a single observation IS that observation
        # (the bucket edge is clamped to the exact max).
        for q in (0, 50, 95, 99, 100):
            assert h.percentile(q) == 0.25

    def test_percentiles_bounded_by_relative_error(self):
        h = LatencyHistogram(growth=1.3)
        values = [0.001 * (1 + i) for i in range(1000)]  # 1ms .. 1s
        for v in values:
            h.record(v)
        values.sort()
        for q in (50, 90, 95, 99):
            exact = values[int(len(values) * q / 100) - 1]
            got = h.percentile(q)
            # Conservative estimate: never below the exact quantile by
            # more than a bucket, never above by more than the growth.
            assert exact / 1.3 <= got <= exact * 1.3

    def test_percentiles_never_exceed_max(self):
        h = LatencyHistogram()
        for v in (0.011, 0.012, 0.013):
            h.record(v)
        assert h.percentile(100) == 0.013
        assert h.percentile(99) <= 0.013
        assert h.min == 0.011 and h.max == 0.013

    def test_tiny_and_huge_values_clamp_to_end_buckets(self):
        h = LatencyHistogram(min_value=1e-5, n_buckets=8)
        h.record(1e-12)  # below min_value: bucket 0
        h.record(1e12)   # beyond the last edge: overflow bucket
        h.record(-1.0)   # clock went backwards: clamped, not fatal
        assert h.count == 3
        # Exact extremes are tracked outside the buckets; the overflow
        # bucket itself reports its (finite) edge, never more than max.
        assert h.max == 1e12 and h.min == -1.0
        assert 0 < h.percentile(100) <= h.max

    def test_mean_is_exact_not_quantized(self):
        h = LatencyHistogram()
        for v in (0.1, 0.2, 0.3):
            h.record(v)
        assert h.mean == pytest.approx(0.2)
        assert h.sum == pytest.approx(0.6)


class TestMerge:
    def test_merge_combines_populations(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for v in (0.01, 0.02):
            a.record(v)
        for v in (0.04, 0.08):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.min == 0.01 and a.max == 0.08
        assert a.percentile(100) == 0.08
        assert a.mean == pytest.approx(0.0375)

    def test_merge_rejects_mismatched_buckets(self):
        a = LatencyHistogram(growth=1.3)
        b = LatencyHistogram(growth=1.5)
        with pytest.raises(ConfigError):
            a.merge(b)
        with pytest.raises(ConfigError):
            a.merge(LatencyHistogram(n_buckets=32))

    def test_merge_empty_is_noop(self):
        a = LatencyHistogram()
        a.record(0.5)
        a.merge(LatencyHistogram())
        assert a.count == 1 and a.max == 0.5


class TestThreaded:
    def test_concurrent_records(self):
        import threading

        h = LatencyHistogram()

        def pound():
            for _ in range(500):
                h.record(0.01)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 2000
        assert h.snapshot()["count"] == 2000
