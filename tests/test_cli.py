"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.tensor import save_tns, uniform_random_tensor


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("poisson1", "netflix", "amazon"):
            assert name in out


class TestAnalyze:
    def test_dataset(self, capsys):
        assert main(["analyze", "--dataset", "poisson2", "--nnz", "5000"]) == 0
        out = capsys.readouterr().out
        assert "reuse" in out

    def test_tns_file(self, tmp_path, capsys):
        t = uniform_random_tensor((9, 8, 7), 60, seed=1)
        path = tmp_path / "t.tns"
        save_tns(t, path)
        assert main(["analyze", "--tns", str(path)]) == 0
        assert "9x8x7" in capsys.readouterr().out


class TestDiagnose:
    def test_baseline(self, capsys):
        assert (
            main(
                [
                    "diagnose",
                    "--dataset",
                    "poisson2",
                    "--nnz",
                    "10000",
                    "--rank",
                    "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "predicted time" in out

    def test_blocked_config(self, capsys):
        assert (
            main(
                [
                    "diagnose",
                    "--dataset",
                    "poisson2",
                    "--nnz",
                    "10000",
                    "--rank",
                    "64",
                    "--blocks",
                    "1",
                    "4",
                    "1",
                    "--strip-cols",
                    "16",
                ]
            )
            == 0
        )
        assert "mb+rankb" in capsys.readouterr().out


class TestTune:
    def test_tune_with_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        argv = [
            "tune",
            "--dataset",
            "poisson2",
            "--nnz",
            "20000",
            "--rank",
            "128",
            "--cache",
            str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "heuristic" in first
        assert cache.exists()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache" in second


class TestPPA:
    def test_runs(self, capsys):
        assert (
            main(["ppa", "--dataset", "poisson3", "--nnz", "50000", "--rank", "64"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Access to B removed" in out


class TestCPD:
    @pytest.mark.parametrize("method", ["als", "dimtree", "apr"])
    def test_methods(self, method, capsys):
        assert (
            main(
                [
                    "cpd",
                    "--dataset",
                    "poisson1",
                    "--nnz",
                    "3000",
                    "--rank",
                    "3",
                    "--iters",
                    "3",
                    "--method",
                    method,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "iterations" in out


class TestScaling:
    def test_small_sweep(self, capsys):
        assert (
            main(
                [
                    "scaling",
                    "--dataset",
                    "poisson2",
                    "--nnz",
                    "20000",
                    "--rank",
                    "32",
                    "--nodes",
                    "1",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "SPLATT" in out and "speedup" in out


@pytest.mark.parallel_exec
class TestDist:
    def test_parity_report(self, tmp_path, capsys):
        report_path = tmp_path / "dist.json"
        assert (
            main(
                [
                    "dist",
                    "--dataset",
                    "poisson2",
                    "--nnz",
                    "8000",
                    "--rank",
                    "4",
                    "--ranks",
                    "2",
                    "--json",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bitwise parity: OK" in out
        assert "byte accounting: OK" in out
        import json

        report = json.loads(report_path.read_text())
        assert report["bitwise_equal"] is True
        assert (
            report["sim_comm_bytes"]
            == report["ledger_comm_bytes"]
            == report["measured_comm_bytes"]
        )

    def test_indivisible_rank_groups_rejected(self, capsys):
        assert (
            main(
                [
                    "dist",
                    "--dataset",
                    "poisson1",
                    "--nnz",
                    "2000",
                    "--ranks",
                    "3",
                    "--rank-groups",
                    "2",
                ]
            )
            == 2
        )
        assert "divisible" in capsys.readouterr().err


class TestReproduce:
    def test_writes_report(self, tmp_path, capsys, monkeypatch):
        """The fast subset of the consolidated report (fig2 + tables I/II
        + fig4/5; the big sweeps are exercised by benchmarks/)."""
        import repro.bench as bench

        # Stub the slow experiments; the real ones run under benchmarks/.
        rows = [{"type": i, "x": 0} for i in range(1, 7)]
        monkeypatch.setattr(bench, "experiment_table1", lambda *a, **k: rows)
        monkeypatch.setattr(bench, "experiment_table2", lambda *a, **k: rows)
        monkeypatch.setattr(
            bench,
            "experiment_fig4",
            lambda *a, **k: {"x_label": "x", "x_values": [1], "series": {"s": [1.0]}},
        )
        monkeypatch.setattr(bench, "experiment_fig5", lambda *a, **k: rows)
        out = tmp_path / "REPORT.md"
        assert (
            main(
                [
                    "reproduce",
                    "--out",
                    str(out),
                    "--skip-fig6",
                    "--skip-table3",
                ]
            )
            == 0
        )
        text = out.read_text()
        assert "# Reproduced artifacts" in text
        assert "Figure 2" in text
        assert "Figure 5b" in text


class TestErrors:
    def test_requires_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSanitize:
    def test_clean_splatt_run_exits_zero(self, capsys):
        assert (
            main(
                [
                    "sanitize",
                    "--dataset",
                    "poisson2",
                    "--nnz",
                    "5000",
                    "--kernel",
                    "splatt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_clean_blocked_run_exits_zero(self, capsys):
        assert (
            main(
                [
                    "sanitize",
                    "--dataset",
                    "poisson2",
                    "--nnz",
                    "5000",
                    "--kernel",
                    "mb",
                    "--blocks",
                    "2",
                    "2",
                    "2",
                    "--rank",
                    "16",
                ]
            )
            == 0
        )

    def test_json_format(self, capsys):
        import json

        assert (
            main(
                [
                    "sanitize",
                    "--dataset",
                    "poisson2",
                    "--nnz",
                    "2000",
                    "--kernel",
                    "csf",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["sanitize"]["written_rows"] > 0

    def test_tns_file_input(self, tmp_path, capsys):
        t = uniform_random_tensor((9, 8, 7), 60, seed=1)
        path = tmp_path / "t.tns"
        save_tns(t, path)
        assert main(["sanitize", "--tns", str(path), "--rank", "8"]) == 0
