"""Blocked-schedule race detector (RS2xx) and its runtime wiring."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.races import (
    TaskWriteSet,
    check_schedule,
    verify_fold_covers_conflicts,
    verify_safe,
    write_sets_for_boundaries,
    write_sets_for_coo_chunks,
    write_sets_for_grid,
    write_sets_for_ranges,
)
from repro.blocking.grid import BlockGrid
from repro.dist.grid import ProcessGrid
from repro.dist.mediumgrain import medium_grain_decompose
from repro.machine import power8
from repro.perf.parallel import parallel_predict_time, partition_rows
from repro.tensor.coo import COOTensor
from repro.util.errors import ScheduleError

CORE = power8(1).scaled(1.0 / 64.0)


class TestWriteSetOverlap:
    def test_disjoint_intervals(self):
        a = TaskWriteSet("a", 0, 10)
        b = TaskWriteSet("b", 10, 20)
        assert a.overlap(b) is None

    def test_overlapping_intervals(self):
        a = TaskWriteSet("a", 0, 15)
        b = TaskWriteSet("b", 10, 20)
        assert a.overlap(b) == (10, 15, 5)

    def test_interleaved_exact_rows_are_disjoint(self):
        # Interval bounds overlap, but the exact row sets do not: the
        # exact path must not report a false race.
        a = TaskWriteSet("a", 0, 5, rows=np.array([0, 2, 4]))
        b = TaskWriteSet("b", 1, 6, rows=np.array([1, 3, 5]))
        assert a.overlap(b) is None

    def test_exact_rows_shared(self):
        a = TaskWriteSet("a", 0, 5, rows=np.array([0, 2, 4]))
        b = TaskWriteSet("b", 2, 7, rows=np.array([2, 4, 6]))
        lo, hi, n = a.overlap(b)
        assert (lo, hi, n) == (2, 5, 2)


class TestGridSchedules:
    SHAPE = (30, 20, 10)

    def test_output_blocked_grid_is_safe(self):
        grid = BlockGrid(self.SHAPE, (4, 1, 1))
        report = check_schedule(write_sets_for_grid(grid, mode=0), mode=0)
        assert report.safe
        assert not report.needs_privatization
        assert report.diagnostics() == []
        assert "safe" in report.describe()

    def test_non_output_blocking_conflicts(self):
        # Blocks differing only in modes 1/2 share the whole mode-0 range.
        grid = BlockGrid(self.SHAPE, (1, 2, 2))
        report = check_schedule(write_sets_for_grid(grid, mode=0), mode=0)
        assert not report.safe
        assert report.needs_privatization
        assert report.n_conflict_pairs == 6  # C(4, 2) blocks, all colliding
        rules = [d.rule for d in report.diagnostics()]
        assert rules.count("RS202") == 1  # degenerate: one output-mode block
        assert rules.count("RS201") == 6
        assert all(d.hint for d in report.diagnostics())

    def test_mixed_grid_conflicts_without_degeneracy(self):
        grid = BlockGrid(self.SHAPE, (2, 2, 1))
        report = check_schedule(write_sets_for_grid(grid, mode=0), mode=0)
        assert not report.safe
        rules = [d.rule for d in report.diagnostics()]
        assert "RS202" not in rules  # two output blocks, not degenerate
        assert rules.count("RS201") == report.n_conflict_pairs == 2

    def test_parallel_output_axis_always_safe(self):
        grid = BlockGrid(self.SHAPE, (3, 2, 2))
        for mode in range(3):
            tasks = write_sets_for_grid(grid, mode, parallel="output")
            assert check_schedule(tasks, mode).safe

    def test_bad_parallel_kind_rejected(self):
        grid = BlockGrid(self.SHAPE, (2, 1, 1))
        with pytest.raises(ValueError, match="parallel"):
            write_sets_for_grid(grid, 0, parallel="rows")


class TestCOOChunks:
    def test_unsorted_stream_races(self):
        # Rows interleave across storage-order chunks: the canonical race
        # of the naive non-blocked COO parallelization.
        indices = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], dtype=np.int64
        )
        t = COOTensor((2, 2, 1), indices, np.ones(4))
        tasks = write_sets_for_coo_chunks(t, mode=0, n_tasks=2)
        report = check_schedule(tasks, mode=0)
        assert not report.safe
        assert report.n_conflict_pairs == 1

    def test_sorted_stream_verifies_clean(self):
        indices = np.array(
            [[0, 0, 0], [0, 1, 0], [1, 0, 0], [1, 1, 0], [2, 0, 0], [2, 1, 0]],
            dtype=np.int64,
        )
        t = COOTensor((3, 2, 1), indices, np.ones(6))
        tasks = write_sets_for_coo_chunks(t, mode=0, n_tasks=3)
        assert check_schedule(tasks, mode=0).safe

    def test_partition_rows_boundaries_safe(self, small_tensor):
        boundaries = partition_rows(small_tensor, 0, 4)
        report = verify_safe(
            write_sets_for_boundaries(boundaries), 0, "slice partition"
        )
        assert report.safe
        assert len(report.tasks) == 4


class TestRuntimeWiring:
    def test_thread_ranges_overlap_rejected(self, small_tensor):
        with pytest.raises(ScheduleError, match="do not tile the output rows"):
            parallel_predict_time(
                small_tensor,
                0,
                8,
                CORE,
                2,
                thread_ranges=[(0, 10), (5, 15)],
            )

    def test_explicit_disjoint_ranges_accepted(self, small_tensor):
        half = small_tensor.shape[0] // 2
        est = parallel_predict_time(
            small_tensor,
            0,
            8,
            CORE,
            2,
            thread_ranges=[(0, half), (half, small_tensor.shape[0])],
        )
        assert len(est.thread_times) == 2
        assert sum(est.thread_nnz) == small_tensor.nnz

    def test_default_partition_still_works(self, small_tensor):
        est = parallel_predict_time(small_tensor, 0, 8, CORE, 4)
        assert est.makespan > 0

    def test_verify_safe_raises_with_context(self):
        tasks = write_sets_for_ranges([(0, 10), (5, 15)], label="worker")
        with pytest.raises(ScheduleError, match="my schedule"):
            verify_safe(tasks, 1, "my schedule")


class TestDistributedFold:
    def test_fold_covers_medium_grain_conflicts(self, small_tensor):
        decomp = medium_grain_decompose(
            small_tensor, ProcessGrid((2, 2, 1)), mode_perm=(0, 1, 2)
        )
        report = verify_fold_covers_conflicts(decomp, mode=0)
        # Processes sharing an output chunk conflict by design; the fold
        # reduce-scatters them, so verification passes.
        assert report.needs_privatization

    def test_cross_slab_conflict_rejected(self):
        # A corrupted decomposition: two processes in *different* output
        # slabs write overlapping rows — the fold never reduces them.
        block = lambda bounds: SimpleNamespace(bounds=bounds)
        decomp = SimpleNamespace(
            blocks={
                (0, 0, 0): block(((0, 10), (0, 5), (0, 5))),
                (1, 0, 0): block(((5, 20), (0, 5), (0, 5))),
            },
            axis_of_mode=lambda mode: 0,
        )
        with pytest.raises(ScheduleError, match="different output slabs"):
            verify_fold_covers_conflicts(decomp, mode=0)

    def test_distributed_mttkrp_runs_its_check(self, small_tensor, factors_for):
        # End-to-end: the driver invokes the verifier and still matches
        # the shared-memory kernel bit-for-bit.
        from repro.dist.mttkrp import distributed_mttkrp
        from repro.kernels.base import get_kernel
        from repro.machine import power8 as p8

        factors = factors_for(small_tensor, 4)
        decomp = medium_grain_decompose(small_tensor, ProcessGrid((2, 1, 1)))
        result = distributed_mttkrp(decomp, factors, 0, p8(1))
        kernel = get_kernel("splatt")
        plan = kernel.prepare(small_tensor, 0)
        np.testing.assert_allclose(
            result.output, kernel.execute(plan, factors), rtol=1e-12
        )
