"""The ``repro check`` CLI surface: exit codes, JSON output, race flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

CLEAN = "import numpy as np\nA = np.zeros((3, 4), dtype=np.float64)\n"
HAZARD = "import numpy as np\nA = np.zeros((3, 4))\n"


@pytest.fixture
def seeded_kernels(tmp_path):
    kdir = tmp_path / "kernels"
    kdir.mkdir()
    (kdir / "k.py").write_text(HAZARD)
    return tmp_path


class TestExitCodes:
    def test_self_check_is_clean(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_clean_path_exits_zero(self, tmp_path, capsys):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(CLEAN)
        assert main(["check", str(tmp_path)]) == 0

    def test_seeded_violation_exits_one(self, seeded_kernels, capsys):
        assert main(["check", str(seeded_kernels)]) == 1
        out = capsys.readouterr().out
        assert "HP303" in out
        assert ":2:" in out  # line number of the allocation
        assert "hint:" in out

    def test_ignore_filters_to_clean(self, seeded_kernels, capsys):
        assert main(["check", str(seeded_kernels), "--ignore", "HP303"]) == 0

    def test_select_other_family_is_clean(self, seeded_kernels, capsys):
        assert main(["check", str(seeded_kernels), "--select", "KC"]) == 0

    def test_missing_path_exits_two(self, tmp_path, capsys):
        # A typo'd path must not read as "checked clean" in CI.
        assert main(["check", str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err


class TestJSONFormat:
    def test_json_payload(self, seeded_kernels, capsys):
        assert main(["check", str(seeded_kernels), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["warnings"] == 1
        assert payload["summary"]["errors"] == 0
        (diag,) = payload["diagnostics"]
        assert diag["rule"] == "HP303"
        assert diag["severity"] == "warning"
        assert diag["file"].endswith("k.py")
        assert diag["hint"]

    def test_json_race_diags_included(self, tmp_path, capsys):
        (tmp_path / "empty.py").write_text("x = 1\n")
        code = main(
            [
                "check",
                str(tmp_path),
                "--format",
                "json",
                "--race-grid",
                "1",
                "2",
                "2",
                "--race-shape",
                "30",
                "20",
                "10",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        rules = [d["rule"] for d in payload["diagnostics"]]
        assert "RS202" in rules and "RS201" in rules


class TestRaceFlags:
    def test_unsafe_grid_reported(self, tmp_path, capsys):
        (tmp_path / "empty.py").write_text("x = 1\n")
        code = main(
            [
                "check",
                str(tmp_path),
                "--race-grid",
                "1",
                "2",
                "2",
                "--race-shape",
                "30",
                "20",
                "10",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "UNSAFE" in out
        assert "RS201" in out and "RS202" in out

    def test_safe_grid_exits_zero(self, tmp_path, capsys):
        (tmp_path / "empty.py").write_text("x = 1\n")
        code = main(
            [
                "check",
                str(tmp_path),
                "--race-grid",
                "4",
                "1",
                "1",
                "--race-shape",
                "30",
                "20",
                "10",
            ]
        )
        assert code == 0
        assert "schedule safe" in capsys.readouterr().out

    def test_output_parallel_axis_safe(self, tmp_path, capsys):
        (tmp_path / "empty.py").write_text("x = 1\n")
        code = main(
            [
                "check",
                str(tmp_path),
                "--race-grid",
                "2",
                "3",
                "2",
                "--race-parallel",
                "output",
            ]
        )
        assert code == 0


BAD_PLAN = "g = BlockGrid.from_boundaries((10,), [[0, 5, 9]])\n"


class TestPlansFlag:
    def test_bad_literal_plan_exits_one(self, tmp_path, capsys):
        (tmp_path / "bench.py").write_text(BAD_PLAN)
        assert main(["check", str(tmp_path), "--plans"]) == 1
        out = capsys.readouterr().out
        assert "PL401" in out

    def test_without_flag_plan_pass_is_off(self, tmp_path, capsys):
        (tmp_path / "bench.py").write_text(BAD_PLAN)
        assert main(["check", str(tmp_path)]) == 0

    def test_repo_benchmarks_and_examples_prove_clean(self, capsys):
        assert (
            main(["check", "--plans", "--select", "PL", "benchmarks", "examples"])
            == 0
        )

    def test_select_plan_family(self, tmp_path, capsys):
        (tmp_path / "bench.py").write_text(BAD_PLAN)
        assert main(["check", str(tmp_path), "--plans", "--select", "PL"]) == 1
        assert main(["check", str(tmp_path), "--plans", "--ignore", "PL"]) == 0


DF_HAZARD = (
    "import numpy as np\n"
    "def f(factors):\n"
    "    return np.zeros((3, 4), dtype=np.float64)\n"
)


class TestDataflowFlag:
    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(DF_HAZARD)
        assert main(["check", str(tmp_path), "--dataflow"]) == 1
        out = capsys.readouterr().out
        assert "DF601" in out
        assert ":3:" in out  # line of the allocation

    def test_without_flag_dataflow_pass_is_off(self, tmp_path, capsys):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(DF_HAZARD)
        assert main(["check", str(tmp_path)]) == 0

    def test_repo_self_hosted_dataflow_is_clean(self, capsys):
        # The acceptance gate: the pass proves the repo's own kernel,
        # CPD, executor, and tuner paths honour the precision contract.
        assert main(["check", "--dataflow"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_statistics_lists_df_family(self, tmp_path, capsys):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(DF_HAZARD)
        assert main(["check", str(tmp_path), "--dataflow", "--statistics"]) == 1
        assert "DF: 1  (dtype & effect dataflow)" in capsys.readouterr().out

    def test_select_df_family(self, tmp_path, capsys):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(DF_HAZARD)
        assert main(["check", str(tmp_path), "--dataflow", "--select", "DF"]) == 1
        assert main(["check", str(tmp_path), "--dataflow", "--ignore", "DF"]) == 0


class TestStatisticsFlag:
    def test_text_statistics_lists_families(self, seeded_kernels, capsys):
        assert main(["check", str(seeded_kernels), "--statistics"]) == 1
        out = capsys.readouterr().out
        assert "HP: 1  (hot-path lint)" in out

    def test_text_statistics_clean(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        assert main(["check", str(tmp_path), "--statistics"]) == 0
        assert "(no diagnostics in any rule family)" in capsys.readouterr().out

    def test_json_statistics_key(self, seeded_kernels, capsys):
        assert (
            main(
                [
                    "check",
                    str(seeded_kernels),
                    "--statistics",
                    "--format",
                    "json",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["statistics"] == {"HP": 1}

    def test_json_without_flag_has_no_key(self, seeded_kernels, capsys):
        main(["check", str(seeded_kernels), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert "statistics" not in payload

    def test_plans_statistics_combined(self, tmp_path, capsys):
        (tmp_path / "bench.py").write_text(BAD_PLAN)
        assert main(["check", str(tmp_path), "--plans", "--statistics"]) == 1
        assert "PL: 1  (plan verifier)" in capsys.readouterr().out
