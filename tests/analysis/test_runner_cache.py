"""The runner's shared parse cache: every enabled pass reuses one AST
per file, so enabling more passes must not add parses."""

import ast
import time

from repro.analysis.runner import ParseCache, run_check


class TestParseCache:
    def test_parses_once_per_file(self):
        cache = ParseCache()
        t1 = cache.tree("a.py", "x = 1\n")
        t2 = cache.tree("a.py", "x = 1\n")
        assert t1 is t2
        assert isinstance(t1, ast.Module)
        assert cache.parse_count == 1

    def test_syntax_error_cached_as_none(self):
        cache = ParseCache()
        assert cache.tree("bad.py", "def broken(:\n") is None
        assert cache.tree("bad.py", "def broken(:\n") is None
        assert cache.parse_count == 1

    def test_mapping_snapshot(self):
        cache = ParseCache()
        cache.tree("a.py", "x = 1\n")
        assert set(cache.mapping()) == {"a.py"}


class TestRunnerSharing:
    def test_parse_count_equals_files_checked(self, tmp_path):
        for i in range(3):
            (tmp_path / f"m{i}.py").write_text(f"x{i} = {i}\n")
        result = run_check(paths=[tmp_path], plans=True, dataflow=True)
        assert result.files_checked == 3
        assert result.parse_count == 3

    def test_enabling_passes_adds_no_parses(self, tmp_path):
        (tmp_path / "m.py").write_text("import numpy as np\nx = np.zeros(3)\n")
        base = run_check(paths=[tmp_path])
        full = run_check(paths=[tmp_path], plans=True, dataflow=True)
        assert base.parse_count == full.parse_count == 1

    def test_self_hosted_run_parses_each_file_once(self):
        # the CI gate configuration: every pass on the whole package
        result = run_check(plans=True, dataflow=True)
        assert result.parse_count == result.files_checked

    def test_shared_cache_faster_than_reparsing(self, tmp_path):
        """Crude timing sanity: N cache hits must beat N fresh parses of
        a non-trivial module (generous 2x margin; the real win is
        cross-pass, asserted structurally above)."""
        source = "\n".join(
            f"def f{i}(x):\n    return x + {i}" for i in range(200)
        )
        cache = ParseCache()
        cache.tree("big.py", source)
        n = 20
        start = time.perf_counter()
        for _ in range(n):
            cache.tree("big.py", source)
        cached = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(n):
            ast.parse(source)
        fresh = time.perf_counter() - start
        assert cached < fresh * 2
        assert cache.parse_count == 1
