"""Kernel-contract checker (KC1xx) and the runtime registration contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_check
from repro.analysis.contract import duplicate_name_diagnostics, scan_source
from repro.kernels.base import KERNELS, Kernel, check_factors, register_kernel
from repro.util.errors import RegistrationError, ShapeError
from repro.util.validation import VALUE_DTYPE

#: A kernel module violating most of the contract at once; the test pins
#: exactly which rules fire (and that the conformant repo stays clean).
BAD_KERNEL_SOURCE = '''\
import numpy as np

from repro.kernels.base import Kernel, Plan, register_kernel


class BadPlan(Plan):
    def nnz(self):
        return 0


class BadKernel(Kernel):
    name = "badk"

    def prepare(self, coo, m):
        return BadPlan()

    def execute(self, plan, factors):
        out = np.zeros((3, 4))
        for i in range(len(factors)):
            out[0] += factors[i][0]
        return out


class DupKernel(Kernel):
    name = "badk"

    def prepare(self, tensor, mode, **params):
        return BadPlan()

    def execute(self, plan, factors, out=None):
        return None


register_kernel(BadKernel())
register_kernel(DupKernel)
'''


def _rules(diags):
    return sorted(d.rule for d in diags)


class TestSelfCheck:
    def test_repo_is_clean(self):
        """The self-hosted run CI gates on: zero findings over src/repro."""
        result = run_check()
        assert result.files_checked > 50
        assert _rules(result.diagnostics) == []
        assert result.exit_code == 0


class TestSeededViolations:
    @pytest.fixture(scope="class")
    def seeded(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("seed")
        (root / "kernels").mkdir()
        (root / "kernels" / "bad.py").write_text(BAD_KERNEL_SOURCE)
        return root, run_check([root])

    def test_nonzero_exit(self, seeded):
        _, result = seeded
        assert result.exit_code == 1
        assert result.errors > 0

    def test_expected_rules_fire(self, seeded):
        _, result = seeded
        fired = set(_rules(result.diagnostics))
        # BadPlan: no block_stats, no kernel_name, nnz as a plain method.
        # BadKernel: bad prepare/execute signatures, no alloc_output /
        # check_factors.  DupKernel: duplicate name, class-not-instance
        # registration (plus its own missing alloc/check calls).
        assert {
            "KC101",
            "KC103",
            "KC104",
            "KC105",
            "KC106",
            "KC107",
            "KC108",
            "KC109",
            "KC110",
        } <= fired

    def test_locations_point_into_the_seed(self, seeded):
        root, result = seeded
        for d in result.diagnostics:
            assert d.file.endswith("bad.py")
            assert d.line >= 1
            assert d.message
        # KC110 anchors on the offending method, not the class.
        (kc110,) = [d for d in result.diagnostics if d.rule == "KC110"]
        assert "nnz" in kc110.message

    def test_select_and_ignore(self, seeded):
        root, _ = seeded
        only_kc = run_check([root], select={"KC103", "KC104"})
        assert set(_rules(only_kc.diagnostics)) == {"KC103", "KC104"}
        no_kc = run_check(
            [root], ignore={f"KC{n}" for n in range(101, 112)}
        )
        assert not any(r.startswith("KC") for r in _rules(no_kc.diagnostics))


class TestScanSource:
    def test_conformant_kernel_is_clean(self):
        src = '''
from repro.kernels.base import Kernel, Plan, register_kernel, alloc_output, check_factors

class GoodPlan(Plan):
    kernel_name = "good"
    def block_stats(self):
        return []

class GoodKernel(Kernel):
    name = "good"
    def prepare(self, tensor, mode, **params):
        return GoodPlan()
    def execute(self, plan, factors, out=None):
        factors, rank = check_factors(factors, plan.shape, plan.mode)
        return alloc_output(out, 1, rank)

register_kernel(GoodKernel())
'''
        scan = scan_source(src, "good.py")
        assert scan.diagnostics == []
        assert [r.registry_name for r in scan.registrations] == ["good"]

    def test_instance_level_kernel_name_accepted(self):
        src = '''
from repro.kernels.base import Plan

class P(Plan):
    def __init__(self):
        self.kernel_name = "dynamic"
    def block_stats(self):
        return []
'''
        assert scan_source(src, "p.py").diagnostics == []

    def test_keyword_only_out_accepted(self):
        src = '''
from repro.kernels.base import Kernel

class K(Kernel):
    name = "k"
    def prepare(self, tensor, mode, **params):
        return None
    def execute(self, plan, factors, *, out=None):
        return alloc_output(out, 1, 1) or check_factors(factors, (1,), 0)
'''
        assert scan_source(src, "k.py").diagnostics == []

    def test_duplicate_names_cross_file(self):
        a = scan_source(
            'class A(Kernel):\n name = "x"\n'
            ' def prepare(self, tensor, mode, **p): return alloc_output\n'
            ' def execute(self, plan, factors, out=None):'
            ' return alloc_output(check_factors())\nregister_kernel(A())\n',
            "a.py",
        )
        b = scan_source(
            'class B(Kernel):\n name = "x"\n'
            ' def prepare(self, tensor, mode, **p): return alloc_output\n'
            ' def execute(self, plan, factors, out=None):'
            ' return alloc_output(check_factors())\nregister_kernel(B())\n',
            "b.py",
        )
        dups = duplicate_name_diagnostics(a.registrations + b.registrations)
        assert _rules(dups) == ["KC101"]
        assert "'x'" in dups[0].message


class _ToyKernel(Kernel):
    name = "toy-registry-test"

    def prepare(self, tensor, mode, **params):  # pragma: no cover - unused
        raise NotImplementedError

    def execute(self, plan, factors, out=None):  # pragma: no cover - unused
        raise NotImplementedError


class TestRegistryRuntime:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        yield
        KERNELS.pop("toy-registry-test", None)

    def test_duplicate_name_raises(self):
        register_kernel(_ToyKernel())
        with pytest.raises(RegistrationError, match="already registered"):
            register_kernel(_ToyKernel())

    def test_same_instance_is_idempotent(self):
        k = _ToyKernel()
        assert register_kernel(k) is k
        assert register_kernel(k) is k

    def test_replace_overrides(self):
        register_kernel(_ToyKernel())
        k2 = _ToyKernel()
        register_kernel(k2, replace=True)
        assert KERNELS["toy-registry-test"] is k2

    @pytest.mark.parametrize("bad_name", ["", "abstract", None])
    def test_invalid_names_rejected(self, bad_name):
        class BadName(_ToyKernel):
            name = bad_name

        with pytest.raises(RegistrationError, match="non-empty"):
            register_kernel(BadName())


class TestCheckFactorsTightening:
    SHAPE = (4, 5, 6)

    def _factors(self, rank=3, dtype=np.float64):
        return [np.ones((n, rank), dtype=dtype) for n in self.SHAPE]

    def test_object_dtype_rejected(self):
        factors = self._factors()
        factors[1] = np.array([["a"] * 3] * 5, dtype=object)
        with pytest.raises(ShapeError, match="numeric"):
            check_factors(factors, self.SHAPE, 0)

    def test_complex_rejected(self):
        factors = self._factors()
        factors[2] = factors[2].astype(np.complex128)
        with pytest.raises(ShapeError, match="complex"):
            check_factors(factors, self.SHAPE, 0)

    def test_float32_preserved_and_noncontiguous_coerced(self):
        # float32 is a supported working precision: it must survive
        # check_factors untouched (no silent float64 upcast).
        factors = self._factors(dtype=np.float32)
        factors[1] = np.asfortranarray(factors[1])
        out, rank = check_factors(factors, self.SHAPE, 0)
        assert rank == 3
        for f in out[1:]:
            assert f.dtype == np.float32
            assert f.flags["C_CONTIGUOUS"]

    def test_integer_factors_coerced_to_value_dtype(self):
        factors = self._factors()
        factors[1] = factors[1].astype(np.int32)
        out, _ = check_factors(factors, self.SHAPE, 0)
        for f in out[1:]:
            assert f.dtype == VALUE_DTYPE

    def test_mixed_precision_rejected(self):
        from repro.util.errors import ConfigError

        factors = self._factors(dtype=np.float32)
        factors[2] = factors[2].astype(np.float64)
        with pytest.raises(ConfigError, match="mixed-precision"):
            check_factors(factors, self.SHAPE, 0)
