"""Property tests for the interval algebra behind the plan verifier."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.plans import (
    boundaries_to_intervals,
    tiling_report,
    verify_rank_blocking,
    verify_thread_ranges,
)
from repro.blocking.rank import RankBlocking
from repro.kernels.base import intervals_from_rows, merge_intervals


@st.composite
def boundary_vectors(draw):
    """A strictly increasing boundary vector 0 = b0 < ... < bk = extent."""
    extent = draw(st.integers(min_value=1, max_value=200))
    k = draw(st.integers(min_value=1, max_value=min(8, extent)))
    interior = draw(
        st.lists(
            st.integers(min_value=1, max_value=extent - 1),
            max_size=k,
            unique=True,
        )
        if extent > 1
        else st.just([])
    )
    return [0] + sorted(interior) + [extent], extent


class TestTilingProperties:
    @given(boundary_vectors())
    @settings(max_examples=60, deadline=None)
    def test_valid_boundaries_always_tile(self, bv):
        boundaries, extent = bv
        assert tiling_report(boundaries_to_intervals(boundaries), extent) == (
            [],
            [],
            [],
        )

    @given(boundary_vectors(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_dropping_an_interval_leaves_a_gap(self, bv, data):
        boundaries, extent = bv
        intervals = boundaries_to_intervals(boundaries)
        victim = data.draw(st.integers(0, len(intervals) - 1))
        kept = intervals[:victim] + intervals[victim + 1 :]
        gaps, overlaps, malformed = tiling_report(kept, extent)
        assert gaps == [intervals[victim]]
        assert not overlaps and not malformed

    @given(boundary_vectors(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_duplicating_an_interval_overlaps(self, bv, data):
        boundaries, extent = bv
        intervals = boundaries_to_intervals(boundaries)
        victim = data.draw(st.integers(0, len(intervals) - 1))
        gaps, overlaps, malformed = tiling_report(
            intervals + [intervals[victim]], extent
        )
        assert overlaps == [intervals[victim]]
        assert not gaps and not malformed

    @given(boundary_vectors())
    @settings(max_examples=60, deadline=None)
    def test_shuffled_order_is_irrelevant(self, bv):
        boundaries, extent = bv
        intervals = boundaries_to_intervals(boundaries)
        assert tiling_report(reversed(intervals), extent) == ([], [], [])

    @given(boundary_vectors())
    @settings(max_examples=60, deadline=None)
    def test_report_matches_exhaustive_count(self, bv):
        """Cross-check the sweep against a brute-force cover count."""
        boundaries, extent = bv
        intervals = boundaries_to_intervals(boundaries)
        # Corrupt deterministically: drop the first interval.
        kept = intervals[1:]
        cover = np.zeros(extent, dtype=int)
        for lo, hi in kept:
            cover[lo:hi] += 1
        gaps, overlaps, _ = tiling_report(kept, extent)
        gap_points = {i for lo, hi in gaps for i in range(lo, hi)}
        over_points = {i for lo, hi in overlaps for i in range(lo, hi)}
        assert gap_points == set(np.flatnonzero(cover == 0))
        assert over_points == set(np.flatnonzero(cover > 1))


class TestRankBlockingProperties:
    @given(
        rank=st.integers(min_value=1, max_value=512),
        block_cols=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_block_cols_configs_always_tile(self, rank, block_cols):
        assert verify_rank_blocking(RankBlocking(block_cols=block_cols), rank) == []

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_n_blocks_configs_always_tile(self, data):
        rank = data.draw(st.integers(min_value=1, max_value=512))
        n_blocks = data.draw(st.integers(min_value=1, max_value=rank))
        assert verify_rank_blocking(RankBlocking(n_blocks=n_blocks), rank) == []

    @given(
        extent=st.integers(min_value=2, max_value=100),
        n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_thread_ranges_from_even_split(self, extent, n):
        n = min(n, extent)
        bounds = [extent * i // n for i in range(n + 1)]
        assert verify_thread_ranges(boundaries_to_intervals(bounds), extent) == []


class TestWriteSetHelpers:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=100), min_size=0, max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_intervals_from_rows_roundtrip(self, rows):
        unique = np.unique(np.asarray(rows, dtype=np.int64))
        intervals = intervals_from_rows(unique)
        covered = sorted(i for lo, hi in intervals for i in range(lo, hi))
        assert covered == unique.tolist()
        # Intervals are disjoint, sorted, and maximal (non-adjacent).
        for (a_lo, a_hi), (b_lo, b_hi) in zip(intervals, intervals[1:]):
            assert a_hi < b_lo

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
            ).map(lambda p: (min(p), max(p))),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_intervals_preserves_coverage(self, intervals):
        merged = merge_intervals(intervals)
        want = {i for lo, hi in intervals for i in range(lo, hi)}
        got = {i for lo, hi in merged for i in range(lo, hi)}
        assert got == want
        for (a_lo, a_hi), (b_lo, b_hi) in zip(merged, merged[1:]):
            assert a_hi < b_lo
