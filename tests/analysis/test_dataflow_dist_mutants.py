"""Seeded-mutant detection for the ``repro.dist`` float64-upcast class.

The dist upcast bug survived every check run for two stacked reasons:
``repro/dist`` was accidentally excluded from scanning (the packaging
``dist/`` skip matched the package directory), and ``VALUE_DTYPE``
allocations were treated as sanctioned even with factor-derived values
flowing in.  These mutants reintroduce the original bug shapes into the
*real* fixed sources and assert ``repro check --dataflow`` would now
catch each one; the scan-scope test pins the runner fix.
"""

from __future__ import annotations

from pathlib import Path

import repro.dist.als as als_mod
import repro.dist.mttkrp as mttkrp_mod
from repro.analysis.dataflow import scan_source as _scan_raw
from repro.analysis.diagnostics import apply_suppressions, suppressions_for_source
from repro.analysis.runner import default_paths, iter_python_files

MTTKRP_FILE = Path(mttkrp_mod.__file__)
ALS_FILE = Path(als_mod.__file__)
MTTKRP_PRISTINE = MTTKRP_FILE.read_text(encoding="utf-8")
ALS_PRISTINE = ALS_FILE.read_text(encoding="utf-8")

#: The fixed allocation/derivation lines each mutant below reverts.
MTTKRP_ALLOC_ANCHOR = (
    "    out = np.zeros((shape[mode], rank), dtype=factor_dtype(list(factors)))\n"
)
ALS_DTYPE_ANCHOR = "    dtype = value_dtype_of(tensor.values)\n"


def scan_source(source: str, file: str):
    # ``dataflow.scan_source`` reports pre-suppression diagnostics; apply
    # the inline ``# repro: noqa[...]`` comments the way the runner does
    # so the pristine sources judge exactly as ``repro check`` would.
    return apply_suppressions(
        _scan_raw(source, file), suppressions_for_source(source)
    )


def _rules(diags):
    return sorted({d.rule for d in diags})


def _mutate(pristine: str, anchor: str, replacement: str) -> str:
    assert anchor in pristine, "mutation anchor vanished from the dist source"
    return pristine.replace(anchor, replacement)


def test_dist_package_is_scanned():
    # Regression: the packaging-output skip must not swallow repro/dist.
    files = iter_python_files(default_paths())
    assert any(f.name == "mttkrp.py" and "dist" in f.parts for f in files)


def test_pristine_dist_sources_are_clean():
    assert scan_source(MTTKRP_PRISTINE, str(MTTKRP_FILE)) == []
    assert scan_source(ALS_PRISTINE, str(ALS_FILE)) == []


class TestSeededDistMutants:
    def test_mttkrp_value_dtype_output_detected(self):
        # The original dist/mttkrp.py:141 bug: output pinned to float64.
        mutant = _mutate(
            MTTKRP_PRISTINE,
            MTTKRP_ALLOC_ANCHOR,
            "    from repro.util.validation import VALUE_DTYPE\n"
            "    out = np.zeros((shape[mode], rank), dtype=VALUE_DTYPE)\n",
        )
        assert "DF612" in _rules(scan_source(mutant, str(MTTKRP_FILE)))

    def test_mttkrp_literal_float64_output_detected(self):
        mutant = _mutate(
            MTTKRP_PRISTINE,
            MTTKRP_ALLOC_ANCHOR,
            "    out = np.zeros((shape[mode], rank), dtype=np.float64)\n",
        )
        assert "DF601" in _rules(scan_source(mutant, str(MTTKRP_FILE)))

    def test_mttkrp_dtypeless_output_detected(self):
        mutant = _mutate(
            MTTKRP_PRISTINE,
            MTTKRP_ALLOC_ANCHOR,
            "    out = np.zeros((shape[mode], rank))\n",
        )
        assert "DF602" in _rules(scan_source(mutant, str(MTTKRP_FILE)))

    def test_als_pinned_working_dtype_detected(self):
        # The original dist/als.py bug: factor init / weights / Gram all
        # allocated from a VALUE_DTYPE-pinned working dtype.
        mutant = _mutate(
            ALS_PRISTINE,
            ALS_DTYPE_ANCHOR,
            "    from repro.util.validation import VALUE_DTYPE\n"
            "    dtype = VALUE_DTYPE\n",
        )
        assert "DF612" in _rules(scan_source(mutant, str(ALS_FILE)))
