"""Hypothesis property tests for the certificate polynomial algebra.

The certifier's CT701-CT707 comparisons are structural equalities over
normalized polynomials, so ring laws and substitution/evaluation
agreement are load-bearing, not decorative.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.symbolic import Poly, ZERO

SYMBOLS = ["nnz", "n_fibers", "distinct_out", "R", "n_strips", "itemsize"]

coefficients = st.integers(min_value=-8, max_value=8).map(Fraction)
exponents = st.integers(min_value=-2, max_value=3).filter(lambda e: e != 0)

monomials = st.dictionaries(
    st.sampled_from(SYMBOLS), exponents, max_size=3
).map(lambda d: tuple(sorted(d.items())))

polys = st.dictionaries(monomials, coefficients, max_size=4).map(Poly)

#: Strictly positive bindings, so negative exponents never divide by 0.
envs = st.fixed_dictionaries(
    {s: st.integers(min_value=1, max_value=13) for s in SYMBOLS}
)


@given(polys, polys)
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(polys, polys)
def test_multiplication_commutes(a, b):
    assert a * b == b * a


@given(polys, polys, polys)
@settings(max_examples=60)
def test_associativity_and_distributivity(a, b, c):
    assert (a + b) + c == a + (b + c)
    assert (a * b) * c == a * (b * c)
    assert a * (b + c) == a * b + a * c


@given(polys)
def test_additive_inverse_normalizes_to_zero(a):
    assert a - a == ZERO
    assert a + (-a) == ZERO


@given(polys)
def test_identities(a):
    assert a + 0 == a
    assert a * 1 == a
    assert a * 0 == ZERO


@given(polys, envs)
def test_evaluation_is_a_ring_homomorphism(a, env):
    # evaluating a+a and 2*a must agree; likewise a*a and a**2
    assert (a + a).evaluate(env) == 2 * a.evaluate(env)
    assert (a * a).evaluate(env) == a.evaluate(env) ** 2


@given(polys, polys, envs)
@settings(max_examples=60)
def test_evaluation_respects_operations(a, b, env):
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)
    assert (a * b).evaluate(env) == a.evaluate(env) * b.evaluate(env)


@given(polys, st.sampled_from(SYMBOLS), st.integers(1, 9), envs)
@settings(max_examples=60)
def test_substitution_evaluation_agreement(a, sym, value, env):
    """substitute-then-evaluate == evaluate with the binding inlined."""
    substituted = a.substitute({sym: value})
    direct_env = dict(env)
    direct_env[sym] = value
    assert substituted.evaluate(env | {sym: value}) == a.evaluate(direct_env)


@given(polys)
def test_normal_form_roundtrip(a):
    """Rebuilding from the term dict reproduces the same polynomial."""
    assert Poly(a.terms) == a
    assert hash(Poly(a.terms)) == hash(a)
