"""SARIF 2.1.0 rendering (``repro check --format sarif``)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.diagnostics import RULES, Diagnostic, Severity
from repro.analysis.sarif import SARIF_VERSION, render_sarif, to_sarif
from repro.cli import main


@pytest.fixture
def diags():
    return [
        Diagnostic("DF601", "src/repro/kernels/k.py", 12, 4, "pinned", hint="derive"),
        Diagnostic("HP303", "src/repro/kernels/k.py", 2, 0, "no dtype"),
    ]


class TestLogShape:
    def test_version_and_schema(self, diags):
        log = to_sarif(diags, files_checked=2)
        assert log["version"] == SARIF_VERSION
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1

    def test_one_descriptor_per_catalog_rule(self, diags):
        rules = to_sarif(diags)["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} == set(RULES)
        by_id = {r["id"]: r for r in rules}
        assert by_id["DF601"]["defaultConfiguration"]["level"] == "error"
        assert by_id["HP303"]["defaultConfiguration"]["level"] == "warning"
        assert by_id["DF601"]["shortDescription"]["text"] == RULES["DF601"].summary

    def test_rule_index_points_into_descriptors(self, diags):
        run = to_sarif(diags)["runs"][0]
        for res in run["results"]:
            descriptor = run["tool"]["driver"]["rules"][res["ruleIndex"]]
            assert descriptor["id"] == res["ruleId"]


class TestResults:
    def test_levels_follow_severity(self, diags):
        results = to_sarif(diags)["runs"][0]["results"]
        levels = {r["ruleId"]: r["level"] for r in results}
        assert levels == {"DF601": "error", "HP303": "warning"}

    def test_location_is_one_based(self, diags):
        (res, _) = to_sarif(diags)["runs"][0]["results"]
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 12
        # Diagnostic cols are 0-based AST offsets; SARIF is 1-based.
        assert region["startColumn"] == 5

    def test_hint_folded_into_message(self, diags):
        (res, _) = to_sarif(diags)["runs"][0]["results"]
        assert "hint: derive" in res["message"]["text"]

    def test_uri_is_posix_relative(self, diags):
        (res, _) = to_sarif(diags)["runs"][0]["results"]
        uri = res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri == "src/repro/kernels/k.py"
        assert "\\" not in uri

    def test_clean_run_has_empty_results(self):
        log = to_sarif([], files_checked=5)
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["properties"]["filesChecked"] == 5


class TestCLI:
    def test_check_format_sarif_round_trips(self, tmp_path, capsys):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(
            "import numpy as np\nA = np.zeros((3, 4))\n"
        )
        assert main(["check", str(tmp_path), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == SARIF_VERSION
        (res,) = log["runs"][0]["results"]
        assert res["ruleId"] == "HP303"
        assert res["level"] == "warning"

    def test_clean_tree_sarif_exit_zero(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        assert main(["check", str(tmp_path), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []

    def test_render_sarif_is_valid_json(self, diags):
        parsed = json.loads(render_sarif(diags, 3))
        assert parsed["runs"][0]["properties"]["filesChecked"] == 3


def test_every_severity_is_mappable():
    # A new Severity member must be added to the SARIF level map too.
    from repro.analysis.sarif import _LEVELS

    assert set(_LEVELS) == set(Severity)
