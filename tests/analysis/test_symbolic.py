"""Unit tests for the exact Laurent-polynomial algebra."""

from fractions import Fraction

import pytest

from repro.analysis.symbolic import (
    DISTINCT_OUT,
    ITEMSIZE,
    N_FIBERS,
    N_STRIPS,
    NNZ,
    ONE,
    RANK,
    ZERO,
    Poly,
    poly_sum,
)


class TestConstruction:
    def test_const_and_var(self):
        assert Poly.const(3) == 3
        assert Poly.var("x") + Poly.var("x") == 2 * Poly.var("x")

    def test_zero_coefficients_dropped(self):
        p = Poly.var("x") - Poly.var("x")
        assert p == ZERO
        assert not p.terms
        assert not p

    def test_coerce(self):
        assert Poly.coerce(5) == Poly.const(5)
        p = Poly.var("x")
        assert Poly.coerce(p) is p

    def test_fraction_coefficients(self):
        p = Poly.const(Fraction(1, 3)) * 3
        assert p == ONE

    def test_empty_symbol_rejected(self):
        with pytest.raises(ValueError):
            Poly.var("")

    def test_immutable(self):
        p = Poly.var("x")
        with pytest.raises(AttributeError):
            p.terms = {}


class TestAlgebra:
    def test_distribution(self):
        x, y, z = Poly.var("x"), Poly.var("y"), Poly.var("z")
        assert x * (y + z) == x * y + x * z

    def test_scalar_mixing(self):
        x = Poly.var("x")
        assert 2 + x - 2 == x
        assert (3 * x) / 3 == x

    def test_negative_powers(self):
        r, s = Poly.var("R"), Poly.var("S")
        strip = r / s
        assert strip * s == r
        assert s * (r * s**-1) == r

    def test_strip_width_cancellation(self):
        # the certifier's central identity: S strips of nnz rows, each
        # R/S wide, gather exactly nnz*R elements
        total = N_STRIPS * NNZ * (RANK / N_STRIPS)
        assert total == NNZ * RANK

    def test_pow(self):
        x = Poly.var("x")
        assert x**3 == x * x * x
        assert x**0 == ONE
        assert (x**2) * (x**-2) == ONE

    def test_inverse_requires_monomial(self):
        with pytest.raises(ValueError):
            (Poly.var("x") + 1).inverse()

    def test_truediv_by_polynomial_monomial_only(self):
        x = Poly.var("x")
        with pytest.raises(ValueError):
            x / (x + 1)

    def test_hash_consistency(self):
        a = Poly.var("x") * 2 + 1
        b = 1 + Poly.var("x") + Poly.var("x")
        assert a == b
        assert hash(a) == hash(b)

    def test_poly_sum(self):
        xs = [Poly.var("x"), Poly.var("y"), 1 * Poly.var("x")]
        assert poly_sum(xs) == 2 * Poly.var("x") + Poly.var("y")
        assert poly_sum([]) == ZERO


class TestSubstitution:
    def test_simple(self):
        p = NNZ * RANK + N_FIBERS
        assert p.substitute({"n_fibers": NNZ}) == NNZ * RANK + NNZ

    def test_collapse_strips(self):
        p = 8 * N_STRIPS * NNZ
        assert p.substitute({"n_strips": 1}) == 8 * NNZ

    def test_negative_power_substitution(self):
        width = RANK / N_STRIPS
        assert width.substitute({"n_strips": 2}) == RANK * Fraction(1, 2)

    def test_substitute_by_poly(self):
        p = Poly.var("x") ** 2
        assert p.substitute({"x": Poly.var("y") + 1}) == (
            Poly.var("y") ** 2 + 2 * Poly.var("y") + 1
        )

    def test_unbound_symbols_survive(self):
        p = NNZ + RANK
        assert p.substitute({"nnz": 5}) == 5 + RANK


class TestEvaluation:
    def test_exact(self):
        p = NNZ * RANK * ITEMSIZE + 16 * N_FIBERS
        env = {"nnz": 100, "R": 8, "itemsize": 8, "n_fibers": 30}
        assert p.evaluate(env) == 100 * 8 * 8 + 16 * 30

    def test_negative_power_evaluation(self):
        p = RANK / N_STRIPS
        assert p.evaluate({"R": 8, "n_strips": 2}) == 4

    def test_unbound_raises(self):
        with pytest.raises(KeyError):
            (NNZ + DISTINCT_OUT).evaluate({"nnz": 1})

    def test_fraction_result(self):
        p = RANK / N_STRIPS
        assert p.evaluate({"R": 7, "n_strips": 2}) == Fraction(7, 2)


class TestRendering:
    def test_deterministic_str(self):
        a = NNZ * RANK + 8 * N_FIBERS
        b = 8 * N_FIBERS + RANK * NNZ
        assert str(a) == str(b)

    def test_zero(self):
        assert str(ZERO) == "0"

    def test_negative_exponent_rendered(self):
        assert "n_strips**-1" in str(RANK / N_STRIPS)
