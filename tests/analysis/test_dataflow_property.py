"""Hypothesis properties of the dtype lattice: ``join`` must be a real
semilattice operation, or the whole-function fixpoint is order-dependent
and the analyzer's verdicts change with statement ordering."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.dataflow import (
    BOTTOM,
    UNKNOWN,
    DType,
    Value,
    join,
    join_all,
    join_values,
)

points = st.sampled_from(list(DType))
values = st.builds(Value, dtype=points, via_call=st.booleans())


@given(points, points)
def test_join_commutative(a, b):
    assert join(a, b) is join(b, a)


@given(points, points, points)
def test_join_associative(a, b, c):
    assert join(join(a, b), c) is join(a, join(b, c))


@given(points)
def test_join_idempotent(a):
    assert join(a, a) is a


@given(points)
def test_bottom_is_identity(a):
    assert join(DType.BOTTOM, a) is a
    assert join(a, DType.BOTTOM) is a


@given(points)
def test_unknown_is_absorbing(a):
    assert join(DType.UNKNOWN, a) is DType.UNKNOWN
    assert join(a, DType.UNKNOWN) is DType.UNKNOWN


@given(st.lists(points))
def test_join_all_is_an_upper_bound(xs):
    result = join_all(xs)
    for x in xs:
        # lub property: joining any input back in changes nothing.
        assert join(result, x) is result


@given(st.lists(points, min_size=1))
def test_join_all_order_independent(xs):
    assert join_all(xs) is join_all(list(reversed(xs)))


@given(values, values)
def test_value_join_tracks_provenance(a, b):
    j = join_values(a, b)
    assert j.dtype is join(a.dtype, b.dtype)
    assert j.via_call == (a.via_call or b.via_call)


@given(values)
def test_value_join_units(v):
    assert join_values(BOTTOM, v).dtype is v.dtype
    assert join_values(UNKNOWN, v).dtype is DType.UNKNOWN
