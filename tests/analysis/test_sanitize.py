"""Execution sanitizer (SZ5xx): clean runs stay silent, mutants get caught."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitize import SanitizeReport, sanitized_execute
from repro.kernels import get_kernel, reference_mttkrp
from repro.kernels.splatt_mttkrp import SplattKernel
from repro.tensor.coo import COOTensor

RANK = 16


def make_problem(seed=0, shape=(24, 18, 12), nnz=250, empty_row0=False):
    rng = np.random.default_rng(seed)
    lo0 = 1 if empty_row0 else 0
    idx = np.stack(
        [rng.integers(lo0 if m == 0 else 0, s, nnz) for m, s in enumerate(shape)],
        axis=1,
    )
    idx = np.unique(idx, axis=0)
    tensor = COOTensor(shape, idx, rng.standard_normal(idx.shape[0]))
    factors = [rng.standard_normal((s, RANK)) for s in shape]
    return tensor, factors


def run(kernel_name, mode=0, seed=0, **params):
    tensor, factors = make_problem(seed)
    kernel = get_kernel(kernel_name)
    plan = kernel.prepare(tensor, mode, **params)
    report = sanitized_execute(kernel, plan, factors)
    expected = reference_mttkrp(tensor, factors, mode)
    return report, expected


class TestCleanRuns:
    @pytest.mark.parametrize(
        "kernel_name,params",
        [
            ("splatt", {}),
            ("coo", {}),
            ("csf", {}),
            ("mb", {"block_counts": (2, 2, 2)}),
            ("rankb", {"n_rank_blocks": 2}),
            ("mb+rankb", {"block_counts": (2, 2, 1), "n_rank_blocks": 2}),
        ],
    )
    def test_zero_diagnostics_and_exact_result(self, kernel_name, params):
        report, expected = run(kernel_name, **params)
        assert report.diagnostics == []
        assert report.ok
        np.testing.assert_allclose(report.output, expected, rtol=1e-12)

    def test_footprint_matches_traffic_model(self):
        tensor, factors = make_problem(1)
        kernel = get_kernel("splatt")
        plan = kernel.prepare(tensor, 0)
        report = sanitized_execute(kernel, plan, factors)
        stats = plan.block_stats()
        nnz = sum(s.nnz for s in stats)
        n_fibers = sum(s.n_fibers for s in stats)
        assert report.gathers["factor[1]"] == (nnz, report.gathers["factor[1]"][1])
        assert report.gathers["factor[2]"][0] == n_fibers

    def test_describe_mentions_counts(self):
        report, _ = run("splatt", seed=2)
        text = report.describe()
        assert "0 error(s)" in text and "gather(s)" in text

    def test_restacked_kernels_skip_traffic_check(self):
        # RankB gathers from private restacked copies: no observed
        # gathers, and crucially no spurious SZ506.
        report, _ = run("rankb", seed=3, n_rank_blocks=4)
        assert report.gathers["factor[1]"] == (0, 0)
        assert not [d for d in report.diagnostics if d.rule == "SZ506"]


class LeakyKernel(SplattKernel):
    """Mutant: writes an output row outside its declared write-set."""

    name = "leaky"

    def execute(self, plan, factors, out=None):
        A = super().execute(plan, factors, out=out)
        A[0] += 1.0  # row 0 is empty in the fixture -> not in write_set()
        return A


class WrapKernel(SplattKernel):
    """Mutant: gathers with a negative (silently wrapping) index."""

    name = "wrap"

    def execute(self, plan, factors, out=None):
        B = factors[plan.inner_mode]
        _ = B[np.array([-1, 2])]
        return super().execute(plan, factors, out=out)


class NanKernel(SplattKernel):
    """Mutant: lets a NaN emerge from finite inputs."""

    name = "nan"

    def execute(self, plan, factors, out=None):
        A = super().execute(plan, factors, out=out)
        A[np.asarray(plan.fiber_rows)[0]] = np.nan
        return A


class TestSeededMutants:
    def test_out_of_write_set_store_is_sz501(self):
        tensor, factors = make_problem(4, empty_row0=True)
        kernel = LeakyKernel()
        plan = kernel.prepare(tensor, 0)
        assert not any(lo <= 0 < hi for lo, hi in plan.write_set())
        report = sanitized_execute(kernel, plan, factors)
        assert "SZ501" in {d.rule for d in report.diagnostics}
        assert not report.ok

    def test_wrapping_gather_is_sz502(self):
        tensor, factors = make_problem(5)
        kernel = WrapKernel()
        plan = kernel.prepare(tensor, 0)
        report = sanitized_execute(kernel, plan, factors)
        sz502 = [d for d in report.diagnostics if d.rule == "SZ502"]
        assert sz502
        assert "wrap silently" in sz502[0].message

    def test_nan_emergence_is_sz503(self):
        tensor, factors = make_problem(6)
        kernel = NanKernel()
        plan = kernel.prepare(tensor, 0)
        report = sanitized_execute(kernel, plan, factors)
        assert "SZ503" in {d.rule for d in report.diagnostics}

    def test_nan_inputs_do_not_false_positive(self):
        # A NaN already present in the inputs is numerics, not a kernel
        # bug: SZ503's finite-inputs precondition must hold it back.
        tensor, factors = make_problem(7)
        factors[1][0, 0] = np.nan
        kernel = get_kernel("splatt")
        plan = kernel.prepare(tensor, 0)
        report = sanitized_execute(kernel, plan, factors)
        assert "SZ503" not in {d.rule for d in report.diagnostics}


class TestReportShape:
    def test_report_is_dataclass_with_write_set(self):
        report, _ = run("splatt", seed=8)
        assert isinstance(report, SanitizeReport)
        assert report.declared_write_set
        assert report.written_rows > 0
        lo, hi = report.declared_write_set[0]
        assert 0 <= lo < hi
