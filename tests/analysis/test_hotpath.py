"""Hot-path lint (HP3xx), suppression machinery, and the diagnostic model."""

from __future__ import annotations

import json

import pytest

from repro.analysis import run_check
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    render_json,
    render_text,
    resolve_rules,
    suppressions_for_source,
)
from repro.analysis.hotpath import scan_source
from repro.util.errors import ConfigError


def _rules(diags):
    return sorted(d.rule for d in diags)


class TestHP301PerElementLoop:
    @pytest.mark.parametrize(
        "iterable", ["range(len(vals))", "range(vals.shape[0])", "range(vals.size)"]
    )
    def test_per_element_patterns_flagged(self, iterable):
        src = f"def f(vals, out):\n    for i in {iterable}:\n        out[i] = vals[i]\n"
        assert _rules(scan_source(src, "k.py")) == ["HP301"]

    def test_stepped_chunk_loop_exempt(self):
        src = (
            "def f(vals, out):\n"
            "    for lo in range(0, len(vals), 4096):\n"
            "        out[lo : lo + 4096] = vals[lo : lo + 4096]\n"
        )
        assert scan_source(src, "k.py") == []

    def test_loop_without_subscript_exempt(self):
        src = "def f(blocks):\n    for i in range(len(blocks)):\n        pass\n"
        assert scan_source(src, "k.py") == []

    def test_fixed_trip_mode_loop_exempt(self):
        src = "def f(shape, out):\n    for m in range(3):\n        out[m] = shape[m]\n"
        assert scan_source(src, "k.py") == []


class TestHP302InvariantChains:
    def test_repeated_invariant_chain_flagged(self):
        src = (
            "def f(self, n):\n"
            "    while n:\n"
            "        a = self.csf.vals + 1\n"
            "        b = self.csf.vals + 2\n"
            "        c = self.csf.vals + 3\n"
            "        n -= 1\n"
        )
        diags = scan_source(src, "k.py")
        assert _rules(diags) == ["HP302"]
        assert "self.csf.vals" in diags[0].message
        assert "hoist" in diags[0].hint

    def test_rebound_root_exempt(self):
        # The chain root is assigned inside the loop, so it is not
        # invariant and hoisting would change semantics.
        src = (
            "def f(items, n):\n"
            "    for node in items:\n"
            "        a = node.child.vals\n"
            "        b = node.child.vals\n"
            "        c = node.child.vals\n"
        )
        assert scan_source(src, "k.py") == []

    def test_below_threshold_exempt(self):
        src = (
            "def f(self, n):\n"
            "    while n:\n"
            "        a = self.csf.vals\n"
            "        b = self.csf.vals\n"
            "        n -= 1\n"
        )
        assert scan_source(src, "k.py") == []


class TestHP303Allocations:
    def test_missing_dtype_flagged(self):
        assert _rules(scan_source("import numpy as np\nA = np.zeros((3, 4))\n", "k.py")) == [
            "HP303"
        ]

    def test_keyword_dtype_clean(self):
        src = "import numpy as np\nA = np.zeros((3, 4), dtype=np.float64)\n"
        assert scan_source(src, "k.py") == []

    def test_positional_dtype_clean(self):
        src = "import numpy as np\nA = np.full((3, 4), 1.0, np.float64)\n"
        assert scan_source(src, "k.py") == []

    def test_non_numpy_zeros_ignored(self):
        assert scan_source("A = mylib.zeros((3, 4))\n", "k.py") == []


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self):
        src = "import numpy as np\nA = np.zeros((3, 4))  # repro: noqa\n"
        diags = scan_source(src, "k.py")
        assert apply_suppressions(diags, suppressions_for_source(src)) == []

    def test_scoped_noqa_suppresses_listed_rule_only(self):
        src = "import numpy as np\nA = np.zeros((3, 4))  # repro: noqa[HP303]\n"
        diags = scan_source(src, "k.py")
        assert apply_suppressions(diags, suppressions_for_source(src)) == []

    def test_scoped_noqa_keeps_other_rules(self):
        src = "import numpy as np\nA = np.zeros((3, 4))  # repro: noqa[HP301]\n"
        diags = scan_source(src, "k.py")
        kept = apply_suppressions(diags, suppressions_for_source(src))
        assert _rules(kept) == ["HP303"]

    def test_runner_honours_noqa(self, tmp_path):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(
            "import numpy as np\nA = np.zeros((3, 4))  # repro: noqa[HP303]\n"
        )
        result = run_check([tmp_path])
        assert result.exit_code == 0


class TestHotPathScoping:
    def test_only_kernels_dirs_are_linted(self, tmp_path):
        # The same hazard outside kernels/ is orchestration code: not
        # linted.  Inside kernels/, it is.
        hazard = "import numpy as np\nA = np.zeros((3, 4))\n"
        (tmp_path / "driver.py").write_text(hazard)
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(hazard)
        result = run_check([tmp_path])
        assert _rules(result.diagnostics) == ["HP303"]
        assert result.diagnostics[0].file.endswith("k.py")
        assert result.warnings == 1 and result.errors == 0
        assert result.exit_code == 1  # warnings still gate CI


class TestDiagnosticModel:
    def test_severity_autofilled_from_catalog(self):
        d = Diagnostic("HP301", "f.py", 3, 0, "msg")
        assert d.severity is Severity.WARNING
        assert Diagnostic("KC105", "f.py", 1, 0, "msg").severity is Severity.ERROR

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError, match="unknown diagnostic rule"):
            Diagnostic("ZZ999", "f.py", 1, 0, "msg")

    def test_format_shape(self):
        d = Diagnostic("HP303", "f.py", 7, 4, "no dtype", hint="pass dtype=")
        assert d.format() == "f.py:7:4: HP303 [warning] no dtype (hint: pass dtype=)"

    def test_resolve_rules_ids_and_prefixes(self):
        assert resolve_rules("HP301,KC105") == {"HP301", "KC105"}
        assert resolve_rules("hp") == {"HP301", "HP302", "HP303"}
        assert resolve_rules(None) is None
        with pytest.raises(ConfigError, match="unknown rule"):
            resolve_rules("XY")

    def test_render_text_and_json_agree(self):
        diags = [Diagnostic("HP303", "f.py", 1, 0, "m", hint="h")]
        text = render_text(diags, files_checked=3)
        assert "3 file(s), 0 error(s), 1 warning(s)" in text
        payload = json.loads(render_json(diags, files_checked=3))
        assert payload["summary"] == {
            "files_checked": 3,
            "errors": 0,
            "warnings": 1,
        }
        assert payload["diagnostics"][0]["rule"] == "HP303"
        assert payload["diagnostics"][0]["line"] == 1
