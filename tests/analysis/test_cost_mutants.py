"""Seeded-mutant suite: perturb a pristine kernel's loop nest and assert
the matching CT rule fires.

Each mutant edits the real module source (never the file on disk) and
recertifies through :func:`certify_kernel_source` /
:class:`ModuleRegistry` source overrides — the same path ``repro check
--cost`` exercises, so a rule that fires here fires in CI.
"""

import pytest

from repro.analysis.cost import (
    KERNEL_COST_SPECS,
    ModuleRegistry,
    certify_kernel,
    certify_kernel_source,
)


def pristine_source(name: str) -> str:
    return ModuleRegistry().source_of(KERNEL_COST_SPECS[name].module)


def mutate(name: str, old: str, new: str) -> str:
    source = pristine_source(name)
    assert old in source, f"mutation anchor not found: {old!r}"
    return source.replace(old, new)


def rules_fired(name: str, source: str) -> set[str]:
    _, diags = certify_kernel_source(name, source)
    return {d.rule for d in diags}


class TestSeededMutants:
    def test_pristine_baseline_is_clean(self):
        for name in ("splatt", "csf"):
            _, diags = certify_kernel(name)
            assert diags == []

    def test_extra_factor_read_trips_ct701(self):
        # gather B twice per chunk: derived B rows become 2*nnz
        source = mutate(
            "splatt",
            "prod = vals[:, None] * B[splatt.jidx[lo:hi]]",
            "prod = vals[:, None] * B[splatt.jidx[lo:hi]]\n"
            "        prod = prod * B[splatt.jidx[lo:hi]]",
        )
        assert "CT701" in rules_fired("splatt", source)

    def test_widened_gather_trips_ct703(self):
        # drop the chunk slice: the full index stream is re-gathered
        # once per chunk — statically unbounded
        source = mutate(
            "splatt",
            "prod = vals[:, None] * B[splatt.jidx[lo:hi]]",
            "prod = vals[:, None] * B[splatt.jidx]",
        )
        assert "CT703" in rules_fired("splatt", source)

    def test_per_nonzero_level_gather_trips_ct703(self):
        # csf's level walk gathers the fiber factor per *fiber*; using
        # the per-nonzero leaf ids widens it to nnz rows in the wrong
        # index space
        source = mutate(
            "csf",
            "acc = acc * factors[csf.mode_order[lvl_idx]][lvl.fids]",
            "acc = acc * factors[csf.mode_order[lvl_idx]][csf.leaf_fids]",
        )
        fired = rules_fired("csf", source)
        assert "CT703" in fired or "CT701" in fired

    def test_dropped_accumulator_store_trips_ct702(self):
        source = mutate(
            "splatt",
            "A[rows[starts]] += np.add.reduceat(fiber_acc, starts, axis=0)",
            "_ = np.add.reduceat(fiber_acc, starts, axis=0)",
        )
        assert "CT702" in rules_fired("splatt", source)

    def test_wrong_space_gather_trips_ct703(self):
        # C gathered through the per-nonzero inner index stream
        source = mutate(
            "splatt",
            "fiber_acc *= C[splatt.fiber_kidx[f0:f1]]",
            "fiber_acc *= C[splatt.jidx[lo:hi]]",
        )
        assert "CT703" in rules_fired("splatt", source)

    def test_slab_store_on_sparse_plan_trips_ct704(self):
        # a full-range slab store contradicts SplattPlan's sparse
        # intervals_from_rows write_set declaration
        source = mutate(
            "splatt",
            "A[rows[starts]] += np.add.reduceat(fiber_acc, starts, axis=0)",
            "A[rows[starts]] += np.add.reduceat(fiber_acc, starts, axis=0)\n"
            "        A[:, :] = A[:, :]",
        )
        assert "CT704" in rules_fired("splatt", source)

    def test_opaque_write_set_trips_ct705(self):
        source = mutate(
            "splatt",
            "return intervals_from_rows(np.unique(self.fiber_rows))",
            "return self._opaque_write_set()",
        )
        assert "CT705" in rules_fired("splatt", source)

    def test_unrecognized_loop_trips_ct709(self):
        source = mutate(
            "splatt",
            "while f0 < n_fibers:",
            "while True:",
        )
        assert rules_fired("splatt", source) == {"CT709"}


class TestCounterEmissionMutants:
    """CT706/CT707: perturb _traced_execute's counter formulas."""

    BASE = "repro.kernels.base"

    def _base_source(self) -> str:
        return ModuleRegistry().source_of(self.BASE)

    def test_perturbed_gathers_emission_trips_ct706(self):
        old = 'tracer.count("kernel.gathers", nnz + n_fibers)'
        source = self._base_source()
        assert old in source
        registry = ModuleRegistry(
            source_overrides={
                self.BASE: source.replace(
                    old, 'tracer.count("kernel.gathers", nnz + 2 * n_fibers)'
                )
            }
        )
        _, diags = certify_kernel("splatt", registry)
        assert "CT706" in {d.rule for d in diags}

    def test_perturbed_factor_bytes_emission_trips_ct707(self):
        old = "(nnz + n_fibers + distinct_out) * rank * itemsize"
        source = self._base_source()
        assert old in source
        registry = ModuleRegistry(
            source_overrides={
                self.BASE: source.replace(
                    old, "(nnz + n_fibers) * rank * itemsize"
                )
            }
        )
        _, diags = certify_kernel("splatt", registry)
        assert "CT707" in {d.rule for d in diags}


class TestCalibrationMutants:
    """CT708: a tampered certificate disagrees with measured counters."""

    def test_tampered_certificate_trips_ct708(self):
        from repro.analysis.calibrate import calibrate_kernel

        cert, diags = certify_kernel("splatt")
        assert diags == []
        cert.gather_elements["B"] = cert.gather_elements["B"] * 2
        fired = {d.rule for d in calibrate_kernel("splatt", cert)}
        assert "CT708" in fired

    def test_pristine_calibration_is_exact(self):
        from repro.analysis.calibrate import calibrate_all

        by_file = calibrate_all()
        assert all(not v for v in by_file.values()), by_file

    @pytest.mark.parametrize("name", sorted(KERNEL_COST_SPECS))
    def test_every_kernel_calibrates_exactly(self, name):
        from repro.analysis.calibrate import calibrate_kernel

        assert calibrate_kernel(name) == []
