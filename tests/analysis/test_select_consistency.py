"""`--select` / `--ignore` must act identically across text, JSON, and
SARIF output, and `--statistics` must count only selected families."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

#: One file, findings in two families when --dataflow runs: HP303
#: (dtype-less allocation on the hot path) and DF601 (float64 literal).
MULTI_FAMILY = (
    "import numpy as np\n"
    "def f(factors):\n"
    "    scratch = np.zeros((3, 4))\n"
    "    return np.zeros((3, 4), dtype=np.float64)\n"
)


@pytest.fixture
def seeded(tmp_path):
    kdir = tmp_path / "kernels"
    kdir.mkdir()
    (kdir / "k.py").write_text(MULTI_FAMILY)
    return tmp_path


def _run(args, capsys):
    code = main(args)
    return code, capsys.readouterr().out


def _rules_text(out: str) -> set[str]:
    return {
        tok
        for tok in out.replace(":", " ").split()
        if len(tok) == 5 and tok[:2].isalpha() and tok[2:].isdigit()
    }


def _rules_json(out: str) -> set[str]:
    return {d["rule"] for d in json.loads(out)["diagnostics"]}


def _rules_sarif(out: str) -> set[str]:
    doc = json.loads(out)
    return {r["ruleId"] for r in doc["runs"][0]["results"]}


class TestCrossFormatConsistency:
    def test_unfiltered_shows_both_families_everywhere(self, seeded, capsys):
        path = str(seeded)
        _, text = _run(["check", path, "--dataflow"], capsys)
        _, js = _run(["check", path, "--dataflow", "--format", "json"], capsys)
        _, sarif = _run(
            ["check", path, "--dataflow", "--format", "sarif"], capsys
        )
        expected = {"HP303", "DF601"}
        assert expected <= _rules_text(text)
        assert _rules_json(js) == _rules_sarif(sarif)
        assert expected <= _rules_json(js)

    @pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
    def test_select_mixed_rule_list(self, seeded, capsys, fmt):
        """--select CT701,DF601: only the named rules survive, in every
        format (CT contributes none here — the shipped kernels are
        clean)."""
        code, out = _run(
            [
                "check",
                str(seeded),
                "--dataflow",
                "--cost",
                "--select",
                "CT701,DF601",
                "--format",
                fmt,
            ],
            capsys,
        )
        assert code == 1
        rules = {
            "text": _rules_text,
            "json": _rules_json,
            "sarif": _rules_sarif,
        }[fmt](out)
        assert "DF601" in rules
        assert "HP303" not in rules

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_ignore_matches_select_complement(self, seeded, capsys, fmt):
        path = str(seeded)
        _, ignored = _run(
            ["check", path, "--dataflow", "--ignore", "HP", "--format", fmt],
            capsys,
        )
        _, selected = _run(
            ["check", path, "--dataflow", "--select", "DF", "--format", fmt],
            capsys,
        )
        extract = {"json": _rules_json, "sarif": _rules_sarif}[fmt]
        rules = extract(ignored)
        assert rules == extract(selected)
        assert "DF601" in rules
        assert not {r for r in rules if r.startswith("HP")}

    def test_select_everything_ignored_is_clean(self, seeded, capsys):
        for fmt in ("text", "json", "sarif"):
            code, _ = _run(
                [
                    "check",
                    str(seeded),
                    "--dataflow",
                    "--ignore",
                    "HP,DF",
                    "--format",
                    fmt,
                ],
                capsys,
            )
            assert code == 0


class TestStatisticsRespectSelection:
    def test_text_statistics_only_selected_family(self, seeded, capsys):
        code, out = _run(
            [
                "check",
                str(seeded),
                "--dataflow",
                "--select",
                "DF601",
                "--statistics",
            ],
            capsys,
        )
        assert code == 1
        assert "DF: 1" in out
        assert "HP:" not in out

    def test_json_statistics_only_selected_family(self, seeded, capsys):
        _, out = _run(
            [
                "check",
                str(seeded),
                "--dataflow",
                "--select",
                "HP",
                "--statistics",
                "--format",
                "json",
            ],
            capsys,
        )
        assert json.loads(out)["statistics"] == {"HP": 1}

    def test_statistics_after_ignore(self, seeded, capsys):
        _, out = _run(
            [
                "check",
                str(seeded),
                "--dataflow",
                "--ignore",
                "DF",
                "--statistics",
                "--format",
                "json",
            ],
            capsys,
        )
        assert json.loads(out)["statistics"] == {"HP": 1}
