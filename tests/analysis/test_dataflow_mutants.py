"""Seeded-mutant detection: each planted contract violation in a *real*
kernel source must be caught by the dataflow pass.

The mutants are built from the pristine ``splatt_mttkrp.py`` on disk, so
they track the actual kernel idiom rather than a synthetic fixture — if
the kernel is refactored such that an anchor disappears, the test fails
loudly instead of silently checking nothing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.kernels.splatt_mttkrp as splatt_mod
from repro.analysis.dataflow import scan_source

SPLATT_FILE = Path(splatt_mod.__file__)
PRISTINE = SPLATT_FILE.read_text(encoding="utf-8")

#: The allocation line every mutant below rewrites or extends.
ALLOC_ANCHOR = (
    "        A = alloc_output(out, plan.shape[plan.mode], rank, "
    "factor_dtype(factors))\n"
)
CHECK_ANCHOR = (
    "        factors, rank = check_factors(factors, plan.shape, plan.mode)\n"
)


def _rules(diags):
    return sorted({d.rule for d in diags})


def _mutate(anchor: str, replacement: str) -> str:
    assert anchor in PRISTINE, "mutation anchor vanished from splatt_mttkrp.py"
    return PRISTINE.replace(anchor, replacement)


def test_pristine_kernel_is_clean():
    assert scan_source(PRISTINE, str(SPLATT_FILE)) == []


class TestSeededMutants:
    def test_float64_literal_allocation_detected(self):
        mutant = _mutate(
            ALLOC_ANCHOR,
            "        A = np.zeros((plan.shape[plan.mode], rank), "
            "dtype=np.float64)\n",
        )
        assert "DF601" in _rules(scan_source(mutant, str(SPLATT_FILE)))

    def test_float64_literal_via_alloc_output_detected(self):
        mutant = _mutate(
            ALLOC_ANCHOR,
            "        A = alloc_output(out, plan.shape[plan.mode], rank, "
            "np.float64)\n",
        )
        assert "DF601" in _rules(scan_source(mutant, str(SPLATT_FILE)))

    def test_dtypeless_allocation_detected(self):
        mutant = _mutate(
            ALLOC_ANCHOR,
            "        A = np.zeros((plan.shape[plan.mode], rank))\n",
        )
        assert "DF602" in _rules(scan_source(mutant, str(SPLATT_FILE)))

    def test_widening_cast_detected(self):
        mutant = _mutate(
            ALLOC_ANCHOR,
            ALLOC_ANCHOR + "        B = B.astype(np.float64)\n",
        )
        assert "DF603" in _rules(scan_source(mutant, str(SPLATT_FILE)))

    def test_captured_global_worker_write_detected(self):
        mutant = _mutate(
            CHECK_ANCHOR,
            CHECK_ANCHOR + "        _LAST_PLAN['plan'] = plan\n",
        )
        assert "DF606" in _rules(scan_source(mutant, str(SPLATT_FILE)))

    def test_in_loop_counter_call_detected(self):
        mutant = _mutate(
            ALLOC_ANCHOR,
            ALLOC_ANCHOR
            + "        for _i in range(len(A)):\n"
            + "            current_tracer().count('mutant.rows', 1)\n",
        )
        assert "DF609" in _rules(scan_source(mutant, str(SPLATT_FILE)))

    def test_chunk_loop_span_warns_in_kernel_scope(self):
        mutant = _mutate(
            ALLOC_ANCHOR,
            ALLOC_ANCHOR
            + "        for _b in plan.block_stats():\n"
            + "            current_tracer().count('mutant.blocks', 1)\n",
        )
        assert "DF610" in _rules(scan_source(mutant, str(SPLATT_FILE)))


class TestMutantsThroughRunner:
    """The same mutants must surface through ``repro check --dataflow``
    on a file tree (suppressions, scope gating, and summaries intact)."""

    @pytest.mark.parametrize(
        "replacement, rule",
        [
            (
                "        A = np.zeros((plan.shape[plan.mode], rank), "
                "dtype=np.float64)\n",
                "DF601",
            ),
            ("        A = np.zeros((plan.shape[plan.mode], rank))\n", "DF602"),
        ],
    )
    def test_runner_reports_mutant(self, tmp_path, replacement, rule):
        from repro.analysis import run_check

        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "splatt_mutant.py").write_text(
            _mutate(ALLOC_ANCHOR, replacement), encoding="utf-8"
        )
        result = run_check(paths=[tmp_path], dataflow=True, ignore={"KC101"})
        assert rule in _rules(result.diagnostics)

    def test_runner_without_dataflow_misses_df_rules(self, tmp_path):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "splatt_mutant.py").write_text(
            _mutate(
                ALLOC_ANCHOR,
                "        A = np.zeros((plan.shape[plan.mode], rank), "
                "dtype=np.float64)\n",
            ),
            encoding="utf-8",
        )
        from repro.analysis import run_check

        result = run_check(paths=[tmp_path], dataflow=False, ignore={"KC101"})
        assert not any(d.rule.startswith("DF") for d in result.diagnostics)
