"""The interprocedural dtype & effect dataflow pass (DF601-DF610)."""

from __future__ import annotations

import pytest

from repro.analysis.dataflow import (
    DType,
    build_summaries,
    is_dtype_scope,
    join,
    join_all,
    module_info,
    scan_files,
    scan_source,
)

KERNEL_FILE = "src/repro/kernels/k.py"
CPD_FILE = "src/repro/cpd/helpers.py"
EXEC_FILE = "src/repro/exec/worker.py"
OUTSIDE = "src/repro/tensor/io.py"


def _rules(diags):
    return sorted(d.rule for d in diags)


class TestScope:
    def test_contract_dirs_in_scope(self):
        for f in (KERNEL_FILE, CPD_FILE, EXEC_FILE, "src/repro/tune/t.py"):
            assert is_dtype_scope(f), f

    def test_other_dirs_out_of_scope(self):
        assert not is_dtype_scope(OUTSIDE)

    def test_dtype_rules_silent_outside_scope(self):
        src = (
            "import numpy as np\n"
            "def f(factors):\n"
            "    return np.zeros((3, 4), dtype=np.float64)\n"
        )
        assert scan_source(src, OUTSIDE) == []
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF601"]


class TestDF601LiteralFloat64:
    @pytest.mark.parametrize(
        "alloc",
        [
            "np.zeros((3, 4), dtype=np.float64)",
            "np.empty((3, 4), dtype=np.float64)",
            "np.full((3, 4), 0.0, dtype=np.float64)",
            "np.asarray(x, dtype=np.float64)",
            "np.zeros((3, 4), dtype='float64')",
            "np.zeros((3, 4), dtype=float)",
        ],
    )
    def test_literal_float64_flagged(self, alloc):
        src = f"import numpy as np\ndef f(x, factors):\n    return {alloc}\n"
        assert "DF601" in _rules(scan_source(src, KERNEL_FILE))

    def test_float32_literal_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(factors):\n"
            "    return np.zeros((3, 4), dtype=np.float32)\n"
        )
        assert scan_source(src, KERNEL_FILE) == []

    def test_derived_dtype_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(factors):\n"
            "    return np.zeros((3, 4), dtype=factor_dtype(factors))\n"
        )
        assert scan_source(src, KERNEL_FILE) == []

    def test_alloc_output_literal_dtype_flagged(self):
        src = "def f(out, factors):\n    return alloc_output(out, 3, 4, np.float64)\n"
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF601"]

    def test_int_dtype_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(factors):\n"
            "    return np.zeros((3, 4), dtype=np.int64)\n"
        )
        assert scan_source(src, KERNEL_FILE) == []


class TestDF602DtypelessAllocation:
    def test_dtypeless_zeros_flagged(self):
        src = "import numpy as np\ndef f(factors):\n    return np.zeros((3, 4))\n"
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF602"]

    def test_zeros_like_inherits_silently(self):
        # *_like allocators inherit their prototype's dtype: no hazard.
        src = "import numpy as np\ndef f(factors):\n    return np.zeros_like(factors[0])\n"
        assert scan_source(src, KERNEL_FILE) == []


class TestDF603WideningCast:
    def test_factor_astype_float64_flagged(self):
        src = "def f(factors):\n    a = factors[0]\n    return a.astype(np.float64)\n"
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF603"]

    def test_np_float64_of_factor_flagged(self):
        src = "import numpy as np\ndef f(factors):\n    return np.float64(factors[0])\n"
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF603"]

    def test_astype_own_dtype_not_flagged(self):
        src = "def f(factors, x):\n    return x.astype(factors[0].dtype)\n"
        assert scan_source(src, KERNEL_FILE) == []

    def test_astype_on_unknown_not_flagged(self):
        src = "import numpy as np\ndef f(x):\n    return x.astype(np.float64)\n"
        assert scan_source(src, KERNEL_FILE) == []


class TestDF604MixedBinop:
    def test_pinned_alloc_meets_factors(self):
        src = (
            "import numpy as np\n"
            "def f(factors):\n"
            "    x = np.zeros(4, dtype=np.float32)\n"
            "    return factors[0] + x\n"
        )
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF604"]

    def test_alloc_output_default_is_float64(self):
        # alloc_output without the dtype argument defaults to VALUE_DTYPE.
        src = (
            "def f(out, factors):\n"
            "    A = alloc_output(out, 10, 4)\n"
            "    A += factors[0]\n"
            "    return A\n"
        )
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF604"]

    def test_factor_with_factor_clean(self):
        src = "def f(factors):\n    return factors[0] * factors[1]\n"
        assert scan_source(src, KERNEL_FILE) == []

    def test_scalar_literals_are_neutral(self):
        # `x * 1e-12` must not read as mixing float64 into the pipeline.
        src = "def f(factors):\n    return factors[0] * 1e-12\n"
        assert scan_source(src, KERNEL_FILE) == []

    def test_branch_join_propagates(self):
        src = (
            "import numpy as np\n"
            "def f(factors, flag):\n"
            "    if flag:\n"
            "        x = np.zeros(4, dtype=np.float32)\n"
            "    else:\n"
            "        x = factors[0]\n"
            "    return x + factors[1]\n"
        )
        # x is MIXED after the join; MIXED is already the error state and
        # is not re-reported at every later use.
        assert scan_source(src, KERNEL_FILE) == []


class TestDF605InterproceduralMix:
    SRC = (
        "import numpy as np\n"
        "def widen():\n"
        "    return np.zeros(4, dtype=np.float32)\n"
        "def f(factors):\n"
        "    return widen() + factors[0]\n"
    )

    def test_same_file_summary(self):
        assert _rules(scan_source(self.SRC, KERNEL_FILE)) == ["DF605"]

    def test_cross_file_summary(self):
        helper = "import numpy as np\ndef widen():\n    return np.zeros(4, dtype=np.float32)\n"
        user = "def f(factors):\n    return widen() + factors[0]\n"
        per_file = scan_files({CPD_FILE: helper, KERNEL_FILE: user})
        assert _rules(per_file[KERNEL_FILE]) == ["DF605"]
        assert per_file[CPD_FILE] == []

    def test_transitive_returns_two_rounds(self):
        src = (
            "import numpy as np\n"
            "def inner():\n"
            "    return np.zeros(4, dtype=np.float32)\n"
            "def outer():\n"
            "    return inner()\n"
            "def f(factors):\n"
            "    return outer() + factors[0]\n"
        )
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF605"]


WORKER_PREFIX = (
    "import numpy as np\n"
    "SCRATCH = {}\n"
    "def run(tasks):\n"
    "    with ThreadPoolExecutor(2) as pool:\n"
    "        for t in tasks:\n"
    "            pool.submit(worker, t, None)\n"
)


class TestDF606ForeignWrites:
    def test_worker_writing_global_flagged(self):
        src = WORKER_PREFIX + (
            "def worker(t, out):\n"
            "    SCRATCH[t] = 1\n"
        )
        assert "DF606" in _rules(scan_source(src, EXEC_FILE))

    def test_worker_writing_through_args_clean(self):
        src = WORKER_PREFIX + (
            "def worker(t, out):\n"
            "    out[t.lo : t.hi] = 0.0\n"
        )
        assert scan_source(src, EXEC_FILE) == []

    def test_global_statement_flagged(self):
        src = WORKER_PREFIX + (
            "def worker(t, out):\n"
            "    global SCRATCH\n"
            "    SCRATCH = {}\n"
        )
        assert "DF606" in _rules(scan_source(src, EXEC_FILE))

    def test_transitive_helper_write_flagged(self):
        src = WORKER_PREFIX + (
            "def poke(key):\n"
            "    SCRATCH[key] = 1\n"
            "def worker(t, out):\n"
            "    poke(t)\n"
        )
        assert "DF606" in _rules(scan_source(src, EXEC_FILE))

    def test_kernel_execute_writing_global_flagged(self):
        src = (
            "STATE = {}\n"
            "class K(Kernel):\n"
            "    def execute(self, plan, factors, out=None):\n"
            "        STATE['last'] = plan\n"
            "        return out\n"
        )
        assert "DF606" in _rules(scan_source(src, KERNEL_FILE))

    def test_non_worker_function_exempt(self):
        # Orchestration code may maintain module caches; only worker
        # tasks and kernel bodies carry the isolation obligation.
        src = "CACHE = {}\ndef remember(k, v):\n    CACHE[k] = v\n"
        assert scan_source(src, EXEC_FILE) == []


class TestDF607ProcessCapture:
    PREFIX = (
        "CACHE = {}\n"
        "def run(tasks):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        for t in tasks:\n"
        "            pool.submit(worker, t)\n"
    )

    def test_mutable_global_read_flagged(self):
        src = self.PREFIX + "def worker(t):\n    return CACHE.get(t)\n"
        assert "DF607" in _rules(scan_source(src, EXEC_FILE))

    def test_thread_backend_exempt(self):
        src = self.PREFIX.replace("ProcessPoolExecutor", "ThreadPoolExecutor")
        src += "def worker(t):\n    return CACHE.get(t)\n"
        assert scan_source(src, EXEC_FILE) == []

    def test_immutable_global_exempt(self):
        src = (
            "LIMIT = 128\n"
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        for t in tasks:\n"
            "            pool.submit(worker, t)\n"
            "def worker(t):\n"
            "    return min(t, LIMIT)\n"
        )
        assert scan_source(src, EXEC_FILE) == []


class TestDF608Unpicklable:
    def test_lambda_task_flagged(self):
        src = (
            "def run(data):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(lambda x: x, data)\n"
        )
        assert _rules(scan_source(src, EXEC_FILE)) == ["DF608"]

    def test_nested_function_task_flagged(self):
        src = (
            "def run(data):\n"
            "    def task(x):\n"
            "        return x\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(task, data)\n"
        )
        assert _rules(scan_source(src, EXEC_FILE)) == ["DF608"]

    def test_lock_argument_flagged(self):
        src = (
            "def run(worker, data):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(worker, data, Lock())\n"
        )
        assert _rules(scan_source(src, EXEC_FILE)) == ["DF608"]

    def test_thread_pool_exempt(self):
        src = (
            "def run(data):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        pool.submit(lambda x: x, data)\n"
        )
        assert scan_source(src, EXEC_FILE) == []


class TestDF609DF610TracerPlacement:
    def test_counter_in_per_element_loop_flagged_anywhere(self):
        src = (
            "def f(vals, out, tracer):\n"
            "    for i in range(len(vals)):\n"
            "        tracer.count('x', 1)\n"
            "        out[i] = vals[i]\n"
        )
        assert "DF609" in _rules(scan_source(src, OUTSIDE))

    def test_current_tracer_call_recognized(self):
        src = (
            "def f(vals, out):\n"
            "    for i in range(vals.shape[0]):\n"
            "        current_tracer().metric('x', vals[i])\n"
        )
        assert "DF609" in _rules(scan_source(src, OUTSIDE))

    def test_any_kernel_loop_emission_warns(self):
        src = (
            "def f(plan, tracer):\n"
            "    for block in plan.blocks:\n"
            "        tracer.count('block', 1)\n"
        )
        assert _rules(scan_source(src, KERNEL_FILE)) == ["DF610"]
        # The same chunk-loop emission outside kernel scope is allowed.
        assert scan_source(src, OUTSIDE) == []

    def test_emission_outside_loops_clean(self):
        src = (
            "def f(plan, tracer):\n"
            "    with tracer.span('mttkrp'):\n"
            "        pass\n"
            "    tracer.count('calls', 1)\n"
        )
        assert scan_source(src, KERNEL_FILE) == []

    def test_non_tracer_count_method_exempt(self):
        src = (
            "def f(items):\n"
            "    for i in range(len(items)):\n"
            "        items.count(i)\n"
        )
        assert scan_source(src, KERNEL_FILE) == []


class TestLatticeHelpers:
    def test_join_all_empty_is_bottom(self):
        assert join_all([]) is DType.BOTTOM

    def test_distinct_concrete_points_mix(self):
        assert join(DType.F32, DType.F64) is DType.MIXED
        assert join(DType.F32, DType.FACTOR) is DType.MIXED

    def test_unknown_absorbs(self):
        assert join(DType.UNKNOWN, DType.F32) is DType.UNKNOWN


class TestSummaries:
    def test_returns_and_global_writes(self):
        import ast

        src = (
            "import numpy as np\n"
            "STATE = {}\n"
            "def widen():\n"
            "    return np.zeros(4, dtype=np.float32)\n"
            "def poke(k):\n"
            "    STATE[k] = 1\n"
            "def both(k):\n"
            "    poke(k)\n"
            "    return widen()\n"
        )
        info = module_info(ast.parse(src), CPD_FILE)
        table = build_summaries([info])
        assert table["widen"].returns is DType.F32
        assert table["poke"].global_writes == ("STATE",)
        # Round two propagates poke's effect into its caller.
        assert table["both"].global_writes == ("STATE",)
        assert table["both"].returns is DType.F32

    def test_syntax_error_file_skipped(self):
        assert scan_source("def broken(:\n", KERNEL_FILE) == []
        assert scan_files({KERNEL_FILE: "def broken(:\n"}) == {}


class TestSuppression:
    def test_noqa_respected_through_runner(self, tmp_path):
        from repro.analysis import run_check

        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(
            "import numpy as np\n"
            "def f(factors):\n"
            "    return np.zeros((3, 4), dtype=np.float64)  # repro: noqa[DF601]\n"
        )
        result = run_check(paths=[tmp_path], dataflow=True)
        assert _rules(result.diagnostics) == []


DIST_FILE = "src/repro/dist/mttkrp.py"


class TestDF612ValueDtypeAlias:
    """VALUE_DTYPE is the sanctioned default *except* where
    factor-derived values flow in — there it is a float64 sink."""

    def test_dist_dir_in_scope(self):
        assert is_dtype_scope(DIST_FILE)

    def test_pinned_allocation_with_factors_live_flagged(self):
        src = (
            "import numpy as np\n"
            "from repro.util.validation import VALUE_DTYPE\n"
            "def distributed_mttkrp(decomp, factors, mode, rank=8):\n"
            "    out = np.zeros((decomp.shape[mode], rank), dtype=VALUE_DTYPE)\n"
            "    return out\n"
        )
        assert _rules(scan_source(src, DIST_FILE)) == ["DF612"]

    def test_factor_binding_through_comprehension_flagged(self):
        src = (
            "import numpy as np\n"
            "from repro.util.validation import VALUE_DTYPE\n"
            "def distributed_cp_als(tensor, init):\n"
            "    factors = [np.ascontiguousarray(f, dtype=VALUE_DTYPE)"
            " for f in init]\n"
            "    return factors\n"
        )
        assert _rules(scan_source(src, DIST_FILE)) == ["DF612"]

    def test_astype_alias_widening_flagged(self):
        src = (
            "from repro.util.validation import VALUE_DTYPE\n"
            "def fold(factors):\n"
            "    return factors[0].astype(VALUE_DTYPE)\n"
        )
        assert _rules(scan_source(src, DIST_FILE)) == ["DF612"]

    def test_sanctioned_use_without_factors_clean(self):
        src = (
            "import numpy as np\n"
            "from repro.util.validation import VALUE_DTYPE\n"
            "def empty_ledger(n):\n"
            "    return np.zeros((n, 1), dtype=VALUE_DTYPE)\n"
        )
        assert scan_source(src, DIST_FILE) == []

    def test_derived_dtype_clean(self):
        src = (
            "import numpy as np\n"
            "from repro.util.validation import value_dtype_of\n"
            "def distributed_mttkrp(decomp, factors, mode, rank=8):\n"
            "    out = np.zeros((4, rank), dtype=factors[0].dtype)\n"
            "    return out\n"
        )
        assert scan_source(src, DIST_FILE) == []

    def test_silent_outside_scope(self):
        src = (
            "import numpy as np\n"
            "from repro.util.validation import VALUE_DTYPE\n"
            "def f(factors):\n"
            "    return np.zeros((3, 4), dtype=VALUE_DTYPE)\n"
        )
        assert scan_source(src, OUTSIDE) == []
