"""Plan verifier (PL4xx): interval algebra, structure verifiers, AST pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.plans import (
    boundaries_to_intervals,
    scan_source,
    tiling_report,
    verify_boundaries,
    verify_capacity,
    verify_decomposition,
    verify_grid,
    verify_plan,
    verify_process_grid,
    verify_rank_blocking,
    verify_rank_extension,
    verify_thread_ranges,
)
from repro.blocking.grid import BlockGrid
from repro.blocking.rank import RankBlocking
from repro.dist.grid import ProcessGrid
from repro.dist.mediumgrain import medium_grain_decompose
from repro.kernels import get_kernel
from repro.machine import power8
from repro.tensor.coo import COOTensor
from repro.util.errors import ConfigError


def rules(diags):
    return sorted({d.rule for d in diags})


def small_tensor(seed=0, shape=(30, 20, 10), nnz=200):
    rng = np.random.default_rng(seed)
    idx = np.stack([rng.integers(0, s, nnz) for s in shape], axis=1)
    idx = np.unique(idx, axis=0)
    return COOTensor(shape, idx, rng.standard_normal(idx.shape[0]))


class TestTilingReport:
    def test_exact_tiling(self):
        assert tiling_report([(0, 5), (5, 10)], 10) == ([], [], [])

    def test_gap(self):
        gaps, overlaps, malformed = tiling_report([(0, 4), (6, 10)], 10)
        assert gaps == [(4, 6)] and not overlaps and not malformed

    def test_overlap(self):
        gaps, overlaps, malformed = tiling_report([(0, 6), (4, 10)], 10)
        assert overlaps == [(4, 6)] and not gaps and not malformed

    def test_trailing_gap(self):
        gaps, _, _ = tiling_report([(0, 7)], 10)
        assert gaps == [(7, 10)]

    def test_leading_gap(self):
        gaps, _, _ = tiling_report([(3, 10)], 10)
        assert gaps == [(0, 3)]

    def test_empty_intervals_ignored(self):
        assert tiling_report([(0, 5), (5, 5), (5, 10)], 10) == ([], [], [])

    def test_reversed_interval_malformed(self):
        _, _, malformed = tiling_report([(0, 10), (8, 3)], 10)
        assert malformed == [(8, 3)]

    def test_out_of_range_malformed(self):
        _, _, malformed = tiling_report([(0, 12)], 10)
        assert malformed == [(0, 12)]

    def test_no_intervals_is_one_gap(self):
        gaps, _, _ = tiling_report([], 10)
        assert gaps == [(0, 10)]

    def test_boundaries_to_intervals(self):
        assert boundaries_to_intervals([0, 3, 7, 10]) == [(0, 3), (3, 7), (7, 10)]


class TestVerifyGrid:
    def test_uniform_grid_clean(self):
        assert verify_grid(BlockGrid((30, 20, 10), (3, 2, 1))) == []

    def test_explicit_boundaries_clean(self):
        g = BlockGrid.from_boundaries((10, 6), [[0, 4, 10], [0, 6]])
        assert verify_grid(g) == []

    def test_boundary_gap_is_pl401(self):
        diags = verify_boundaries([0, 4, 9], 10, "mode 0")
        assert rules(diags) == ["PL401"]

    def test_boundary_overlap_is_pl402(self):
        # Construct raw overlapping intervals through verify_boundaries'
        # internal path: non-monotonic boundaries produce malformed/overlap.
        diags = verify_boundaries([0, 6, 4, 10], 10, "mode 0")
        assert "PL402" in rules(diags)

    def test_dispatch(self):
        assert verify_plan(BlockGrid((30, 20, 10), (3, 2, 1))) == []


class TestVerifyRankBlocking:
    def test_even_strips_clean(self):
        assert verify_rank_blocking(RankBlocking(n_blocks=4), 64) == []

    def test_remainder_strips_clean(self):
        # 100 columns in strips of 16: the last strip is the remainder.
        assert verify_rank_blocking(RankBlocking(block_cols=16), 100) == []

    def test_probe_dispatch_without_rank(self):
        assert verify_plan(RankBlocking(block_cols=16)) == []

    def test_impossible_strip_count_is_pl403(self):
        diags = verify_rank_blocking(RankBlocking(n_blocks=100), 64)
        assert rules(diags) == ["PL403"]

    def test_register_cover_failure_is_pl404(self):
        class BrokenRegisterBlocking(RankBlocking):
            def register_blocks(self, strip_cols: int) -> int:
                return strip_cols // self.register_block  # drops the remainder

        diags = verify_rank_blocking(
            BrokenRegisterBlocking(block_cols=24, register_block=16), 24
        )
        assert "PL404" in rules(diags)

    def test_strips_tiling_failure_is_pl403(self):
        class GappyBlocking(RankBlocking):
            def strips(self, rank: int):
                return [(0, rank // 2)]  # loses the upper half of the rank

        diags = verify_rank_blocking(GappyBlocking(n_blocks=1), 32)
        assert "PL403" in rules(diags)


class TestVerifyThreadRanges:
    def test_exact_tiling_clean(self):
        assert verify_thread_ranges([(0, 50), (50, 100)], 100) == []

    def test_overlap_flagged(self):
        diags = verify_thread_ranges([(0, 60), (50, 100)], 100)
        assert rules(diags) == ["PL407"]

    def test_gap_flagged(self):
        diags = verify_thread_ranges([(0, 40), (60, 100)], 100)
        assert rules(diags) == ["PL407"]

    def test_out_of_bounds_flagged(self):
        diags = verify_thread_ranges([(0, 120)], 100)
        assert rules(diags) == ["PL407"]

    def test_dispatch_with_extent(self):
        assert verify_plan([(0, 10), (10, 20)], extent=20) == []
        assert rules(verify_plan([(0, 15), (10, 20)], extent=20)) == ["PL407"]


class TestVerifyProcessGrid:
    def test_3d_grid_clean(self):
        assert verify_process_grid(ProcessGrid((2, 3, 2))) == []

    def test_4d_grid_clean_with_rank(self):
        assert verify_process_grid(ProcessGrid((2, 2, 2), rank_groups=4), 64) == []

    def test_rank_extension_too_many_groups(self):
        diags = verify_rank_extension(10, 4)
        assert rules(diags) == ["PL408"]

    def test_dispatch(self):
        assert verify_plan(ProcessGrid((2, 2, 2), rank_groups=2), rank=32) == []


class TestVerifyDecomposition:
    def test_real_decomposition_clean(self):
        t = small_tensor()
        decomp = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=0)
        assert verify_decomposition(decomp) == []

    def test_dispatch(self):
        t = small_tensor(1)
        decomp = medium_grain_decompose(t, ProcessGrid((2, 1, 2)), seed=1)
        assert verify_plan(decomp, rank=16) == []

    def test_missing_block_is_pl405(self):
        t = small_tensor(2)
        decomp = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=2)
        del decomp.blocks[(0, 0, 0)]
        assert "PL405" in rules(verify_decomposition(decomp))

    def test_misplaced_nonzero_is_pl406(self):
        t = small_tensor(3)
        decomp = medium_grain_decompose(t, ProcessGrid((2, 1, 1)), seed=3)
        # Swap the tensors of the two blocks: nonzeros leave their bounds.
        b0, b1 = decomp.blocks[(0, 0, 0)], decomp.blocks[(1, 0, 0)]
        if b0.tensor.nnz and b1.tensor.nnz:
            b0.tensor, b1.tensor = b1.tensor, b0.tensor
            assert "PL406" in rules(verify_decomposition(decomp))

    def test_corrupted_boundaries_is_pl405(self):
        t = small_tensor(4)
        decomp = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=4)
        mode0 = decomp.boundaries[0].copy()
        mode0[-1] = t.shape[0] - 1  # no longer spans the mode
        decomp.boundaries = (mode0, decomp.boundaries[1], decomp.boundaries[2])
        assert "PL405" in rules(verify_decomposition(decomp))


class TestVerifyCapacity:
    def test_fitting_plan_is_clean(self):
        t = small_tensor(5)
        plan = get_kernel("splatt").prepare(t, 0)
        assert verify_capacity(plan, 16, power8(64)) == []

    def test_oversized_working_set_is_pl409_warning(self):
        t = small_tensor(6)
        plan = get_kernel("splatt").prepare(t, 0)
        tiny = power8(64).scaled(1e-4)
        diags = verify_capacity(plan, 512, tiny)
        assert rules(diags) == ["PL409"]
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_unknown_level_name_raises(self):
        t = small_tensor(7)
        plan = get_kernel("splatt").prepare(t, 0)
        with pytest.raises(ConfigError):
            verify_capacity(plan, 16, power8(64), target_level="L9")

    def test_dispatch_with_machine(self):
        t = small_tensor(8)
        plan = get_kernel("mb").prepare(t, 0, block_counts=(2, 2, 1))
        assert verify_plan(plan, rank=16, machine=power8(64)) == []


class TestVerifyPlanDispatch:
    def test_unknown_object_raises(self):
        with pytest.raises(ConfigError):
            verify_plan(object())

    def test_combined_plan_checks_grid_and_strips(self):
        t = small_tensor(9)
        plan = get_kernel("mb+rankb").prepare(
            t, 0, block_counts=(2, 2, 1), n_rank_blocks=2
        )
        assert verify_plan(plan, rank=32) == []


class TestScanSource:
    def test_valid_literals_clean(self):
        src = (
            "g = BlockGrid((30, 20, 10), (3, 2, 1))\n"
            "rb = RankBlocking(block_cols=16)\n"
            "pg = ProcessGrid((2, 2, 2), rank_groups=2)\n"
        )
        assert scan_source(src, "x.py") == []

    def test_invalid_grid_literal_flagged(self):
        src = "g = BlockGrid.from_boundaries((10,), [[0, 5, 9]])\n"
        diags = scan_source(src, "x.py")
        assert rules(diags) == ["PL401"]
        assert diags[0].line == 1

    def test_invalid_process_grid_flagged(self):
        src = "pg = ProcessGrid((2, 2))\n"
        assert rules(scan_source(src, "x.py")) == ["PL408"]

    def test_non_literal_args_skipped(self):
        src = "n = some_function()\ng = BlockGrid(shape, (n, 2, 1))\n"
        assert scan_source(src, "x.py") == []

    def test_pytest_raises_block_skipped(self):
        src = (
            "with pytest.raises(ConfigError):\n"
            "    BlockGrid((3, 3, 3), (4, 1, 1))\n"
        )
        assert scan_source(src, "x.py") == []

    def test_syntax_error_returns_nothing(self):
        assert scan_source("def broken(:\n", "x.py") == []


class TestRunnerIntegration:
    def test_run_check_plans_flag(self, tmp_path):
        from repro.analysis import run_check

        bad = tmp_path / "bench_bad.py"
        bad.write_text("g = BlockGrid.from_boundaries((10,), [[0, 5, 9]])\n")
        result = run_check([tmp_path], plans=True)
        assert rules(result.diagnostics) == ["PL401"]
        # Without the flag the plan pass does not run.
        assert run_check([tmp_path]).diagnostics == []

    def test_noqa_suppresses_plan_rule(self, tmp_path):
        f = tmp_path / "bench.py"
        f.write_text(
            "g = BlockGrid.from_boundaries((10,), [[0, 5, 9]])"
            "  # repro: noqa[PL401]\n"
        )
        from repro.analysis import run_check

        assert run_check([f], plans=True).diagnostics == []


class TestRuntimeWiring:
    def test_parallel_rejects_gapped_thread_ranges(self):
        from repro.perf.parallel import parallel_predict_time
        from repro.util.errors import ScheduleError

        t = small_tensor(10)
        core = power8(1).scaled(1.0 / 64.0)
        with pytest.raises(ScheduleError):
            parallel_predict_time(
                t, 0, 16, core, 2,
                thread_ranges=[(0, 10), (20, t.shape[0])],
            )

    def test_parallel_accepts_exact_tiling(self):
        from repro.perf.parallel import parallel_predict_time

        t = small_tensor(11)
        core = power8(1).scaled(1.0 / 64.0)
        half = t.shape[0] // 2
        est = parallel_predict_time(
            t, 0, 16, core, 2, thread_ranges=[(0, half), (half, t.shape[0])]
        )
        assert est.makespan > 0

    def test_tuner_verifies_before_caching(self):
        from repro.tune.cache import TuningCache
        from repro.tune.tuner import Tuner

        t = small_tensor(12)
        cache = TuningCache()
        tuner = Tuner(t, 0, power8(64), cache=cache)
        result = tuner.get_or_tune(16, strategy="heuristic")
        assert result.cost > 0
        hit = tuner.get_or_tune(16, strategy="heuristic")
        assert hit.from_cache

    def test_distributed_rejects_corrupted_decomposition(self):
        from repro.dist.mttkrp import distributed_mttkrp
        from repro.util.errors import DistributionError

        t = small_tensor(13)
        rng = np.random.default_rng(13)
        factors = [rng.standard_normal((s, 8)) for s in t.shape]
        decomp = medium_grain_decompose(t, ProcessGrid((2, 1, 1)), seed=13)
        mode0 = decomp.boundaries[0].copy()
        mode0[-1] = t.shape[0] + 5
        decomp.boundaries = (mode0, decomp.boundaries[1], decomp.boundaries[2])
        with pytest.raises(DistributionError):
            distributed_mttkrp(decomp, factors, 0, power8(64))
