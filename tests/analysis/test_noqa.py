"""Suppression hygiene: DG001 unused-noqa detection, comment-accurate
noqa parsing, and the runner's skip-dir hardening."""

from __future__ import annotations

import pytest

from repro.analysis import run_check
from repro.analysis.diagnostics import (
    Diagnostic,
    suppressions_for_source,
    unused_suppression_diagnostics,
)
from repro.analysis.runner import iter_python_files

ALL_FAMILIES = {"KC", "HP", "PL", "DF", "DG"}


def _rules(diags):
    return sorted(d.rule for d in diags)


class TestNoqaParsing:
    def test_docstring_mention_is_not_a_directive(self):
        src = '"""Suppress with ``# repro: noqa[HP303]`` on the line."""\nx = 1\n'
        assert suppressions_for_source(src) == {}

    def test_backtick_quoted_comment_mention_exempt(self):
        src = "#: suppressible via ``# repro: noqa`` on the flagged line\nx = 1\n"
        assert suppressions_for_source(src) == {}

    def test_real_comment_directive_parsed(self):
        src = "import numpy as np\nA = np.zeros(3)  # repro: noqa[HP303]\n"
        assert suppressions_for_source(src) == {2: {"HP303"}}

    def test_bare_noqa_parsed_as_suppress_all(self):
        src = "x = 1  # repro: noqa\n"
        assert suppressions_for_source(src) == {1: None}

    def test_untokenizable_source_falls_back_to_line_scan(self):
        src = "def broken(:\n    x = 1  # repro: noqa[HP303]\n"
        assert suppressions_for_source(src) == {2: {"HP303"}}


class TestDG001:
    def _diag(self, rule, line):
        return Diagnostic(rule, "k.py", line, 0, "msg")

    def test_used_suppression_not_flagged(self):
        raw = [self._diag("HP303", 2)]
        out = unused_suppression_diagnostics(
            raw, {2: {"HP303"}}, "k.py", ALL_FAMILIES
        )
        assert out == []

    def test_unused_listed_suppression_flagged(self):
        out = unused_suppression_diagnostics(
            [], {2: {"HP303"}}, "k.py", ALL_FAMILIES
        )
        assert _rules(out) == ["DG001"]
        assert "HP303" in out[0].message

    def test_partially_stale_list_names_only_stale_ids(self):
        raw = [self._diag("HP303", 2)]
        (d,) = unused_suppression_diagnostics(
            raw, {2: {"HP303", "HP301"}}, "k.py", ALL_FAMILIES
        )
        assert "HP301" in d.message and "HP303" not in d.message

    def test_bare_noqa_with_no_findings_flagged(self):
        (d,) = unused_suppression_diagnostics([], {3: None}, "k.py", ALL_FAMILIES)
        assert d.rule == "DG001" and d.line == 3

    def test_bare_noqa_with_any_finding_exempt(self):
        raw = [self._diag("KC102", 3)]
        assert (
            unused_suppression_diagnostics(raw, {3: None}, "k.py", ALL_FAMILIES)
            == []
        )

    def test_inactive_family_exempt(self):
        # noqa[DF601] is not "unused" on a run that skipped --dataflow.
        out = unused_suppression_diagnostics(
            [], {2: {"DF601"}}, "k.py", {"KC", "HP", "DG"}
        )
        assert out == []

    def test_runtime_family_always_exempt(self):
        out = unused_suppression_diagnostics(
            [], {2: {"SZ501", "RS201"}}, "k.py", ALL_FAMILIES | {"SZ", "RS"}
        )
        assert out == []

    def test_dg001_self_suppression_exempt(self):
        out = unused_suppression_diagnostics(
            [], {2: {"DG001", "HP303"}}, "k.py", ALL_FAMILIES
        )
        assert out == []


class TestDG001ThroughRunner:
    def test_stale_noqa_reported(self, tmp_path):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(
            "import numpy as np\n"
            "A = np.zeros(3, dtype=np.float32)  # repro: noqa[HP303]\n"
        )
        result = run_check(paths=[tmp_path])
        assert _rules(result.diagnostics) == ["DG001"]

    def test_used_noqa_quiet(self, tmp_path):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(
            "import numpy as np\nA = np.zeros(3)  # repro: noqa[HP303]\n"
        )
        result = run_check(paths=[tmp_path])
        assert result.diagnostics == []

    def test_df_noqa_needs_dataflow_run_to_be_judged(self, tmp_path):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(
            "import numpy as np\n"
            "def f(factors):\n"
            "    return np.sum(factors[0])  # repro: noqa[DF601]\n"
        )
        assert run_check(paths=[tmp_path]).diagnostics == []
        result = run_check(paths=[tmp_path], dataflow=True)
        assert _rules(result.diagnostics) == ["DG001"]

    def test_hp_noqa_outside_hot_path_exempt(self, tmp_path):
        # The HP pass never ran on a non-kernels file, so its noqa is
        # not judged stale there.
        (tmp_path / "m.py").write_text(
            "import numpy as np\nA = np.zeros(3)  # repro: noqa[HP303]\n"
        )
        assert run_check(paths=[tmp_path]).diagnostics == []

    def test_dg001_ignorable(self, tmp_path):
        kdir = tmp_path / "kernels"
        kdir.mkdir()
        (kdir / "k.py").write_text(
            "import numpy as np\n"
            "A = np.zeros(3, dtype=np.float32)  # repro: noqa[HP303]\n"
        )
        result = run_check(paths=[tmp_path], ignore={"DG001"})
        assert result.diagnostics == []


class TestSkipDirs:
    @pytest.mark.parametrize(
        "vendored", [".venv", "venv", "build", "dist", "pkg.egg-info"]
    )
    def test_vendored_trees_not_scanned(self, tmp_path, vendored):
        sub = tmp_path / vendored / "kernels"
        sub.mkdir(parents=True)
        (sub / "bad.py").write_text("import numpy as np\nA = np.zeros(3)\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["ok.py"]
        assert run_check(paths=[tmp_path]).diagnostics == []

    def test_explicit_file_argument_still_checked(self, tmp_path):
        # Skip dirs prune directory walks, not direct file arguments.
        sub = tmp_path / "build"
        sub.mkdir()
        target = sub / "m.py"
        target.write_text("x = 1\n")
        assert iter_python_files([target]) == [target]
