"""Integration tests for the symbolic loop-nest cost certifier."""

import json

import pytest

from repro.analysis.cost import (
    KERNEL_COST_SPECS,
    ModuleRegistry,
    certify_all,
    certify_kernel,
    derive_certificate,
    model_gather_rows,
    model_stream_bytes,
)
from repro.analysis.runner import run_check
from repro.analysis.symbolic import (
    DISTINCT_OUT,
    I_OUT,
    ITEMSIZE,
    N_FIBERS,
    N_STRIPS,
    NNZ,
    RANK,
)

ALL_KERNELS = sorted(KERNEL_COST_SPECS)


@pytest.fixture(scope="module")
def registry():
    return ModuleRegistry()


class TestCertificates:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_all_shipped_kernels_certify_clean(self, name, registry):
        cert, diags = certify_kernel(name, registry)
        assert cert is not None
        assert diags == [], [
            f"{d.rule} {d.file}:{d.line} {d.message}" for d in diags
        ]

    def test_coo_certificate_polynomials(self, registry):
        cert, _ = derive_certificate("coo", registry)
        # COO reads its value stream once and gathers B per nonzero
        assert cert.stream_bytes["val"] == NNZ * ITEMSIZE
        assert cert.gather_rows["B"] == NNZ
        assert cert.gather_elements["B"] == NNZ * RANK
        # no fiber compression: the sorted row stream is the delimiter
        assert cert.stream_bytes["k_pointer"] == 8 * NNZ

    def test_splatt_certificate_polynomials(self, registry):
        cert, _ = derive_certificate("splatt", registry)
        assert cert.stream_bytes["j_index"] == 8 * NNZ
        assert cert.stream_bytes["k_index"] == 8 * N_FIBERS
        assert cert.gather_rows["C"] == N_FIBERS
        assert cert.gather_elements["C"] == N_FIBERS * RANK
        # the fiber_rows map is excluded from the model comparison
        assert "row_map" in cert.excluded_bytes

    def test_rankb_strips_scale_rows_not_elements(self, registry):
        cert, _ = derive_certificate("rankb", registry)
        # per-strip re-gathers: rows scale with n_strips...
        assert cert.gather_rows["B"] == N_STRIPS * NNZ
        # ...but strip width R/n_strips cancels in gathered elements
        assert cert.gather_elements["B"] == NNZ * RANK
        assert cert.stream_bytes["val"] == N_STRIPS * NNZ * ITEMSIZE
        # slab store over the full output, once per strip
        assert cert.writes[0].kind == "all_rows"
        assert cert.writes[0].elements == I_OUT * RANK

    def test_csf_blocked_packed_factor_roles_recovered(self, registry):
        cert, _ = derive_certificate("csf-blocked", registry)
        assert cert.gather_rows["B"] == N_STRIPS * NNZ
        assert cert.gather_rows["C"] == N_STRIPS * N_FIBERS
        assert cert.writes[0].kind == "distinct_out"

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_counter_polys_strip_invariant(self, name, registry):
        """kernel.gathers folds to nnz + n_fibers for every family."""
        cert, _ = derive_certificate(name, registry)
        subs = KERNEL_COST_SPECS[name].subs
        gathers = cert.gathers_counter().substitute(subs)
        expected = (NNZ + N_FIBERS).substitute(subs)
        assert gathers == expected
        factor_bytes = cert.factor_bytes_counter().substitute(subs)
        expected_fb = (
            (NNZ + N_FIBERS + DISTINCT_OUT) * RANK * ITEMSIZE
        ).substitute(subs)
        assert factor_bytes == expected_fb

    def test_model_mirror_matches_traffic_constants(self):
        """The mirror must track estimate_traffic's 16*nnz + 16*n_fibers
        float64 shape (pinned by tests/machine/test_trace_and_traffic)."""
        total = sum(
            model_stream_bytes().values(), NNZ * 0
        ).substitute({"n_strips": 1, "itemsize": 8})
        assert total == 16 * NNZ + 16 * N_FIBERS
        rows = model_gather_rows()
        assert rows["B"].substitute({"n_strips": 1}) == NNZ

    def test_certify_all_covers_every_kernel(self):
        scan = certify_all()
        assert sorted(scan.certificates) == ALL_KERNELS
        assert all(
            not diags for diags in scan.diagnostics_by_file.values()
        ), scan.diagnostics_by_file


class TestRunnerIntegration:
    def test_run_check_cost_clean(self):
        result = run_check(cost=True)
        ct = [d for d in result.diagnostics if d.rule.startswith("CT")]
        assert ct == []
        assert result.exit_code == 0

    def test_calibrate_implies_cost(self):
        result = run_check(calibrate=True)
        assert result.exit_code == 0

    def test_cost_files_outside_scanned_paths_still_covered(self, tmp_path):
        # scanning an unrelated tree with --cost still certifies the
        # shipped kernels (their modules are loaded on demand)
        f = tmp_path / "empty.py"
        f.write_text("x = 1\n")
        result = run_check(paths=[tmp_path], cost=True)
        assert result.exit_code == 0
        assert result.files_checked == 1


class TestCLI:
    def test_check_cost_text(self, capsys):
        from repro.cli import main

        assert main(["check", "--cost", "src/repro/kernels"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_check_cost_json_statistics(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "check",
                    "--cost",
                    "--statistics",
                    "--format",
                    "json",
                    "src/repro/kernels",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["diagnostics"] == []

    def test_sarif_declares_ct_rules(self, capsys):
        from repro.cli import main

        main(["check", "--cost", "--format", "sarif", "src/repro/kernels"])
        doc = json.loads(capsys.readouterr().out)
        rules = {
            r["id"]
            for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {f"CT70{i}" for i in range(1, 10)} <= rules


class TestRegistrationGate:
    def test_gate_off_by_default(self, monkeypatch):
        from repro.analysis.cost import cost_vet_enabled

        monkeypatch.delenv("REPRO_COST_VET", raising=False)
        assert not cost_vet_enabled()

    def test_shipped_kernels_pass_gate(self, monkeypatch):
        from repro.analysis.cost import _COST_VETTED, enforce_kernel_cost
        from repro.kernels.splatt_mttkrp import SplattKernel

        monkeypatch.setenv("REPRO_COST_VET", "1")
        _COST_VETTED.discard(SplattKernel)
        enforce_kernel_cost(SplattKernel)  # must not raise
        assert SplattKernel in _COST_VETTED

    def test_unknown_class_skipped(self, monkeypatch):
        from repro.analysis.cost import enforce_kernel_cost

        monkeypatch.setenv("REPRO_COST_VET", "1")

        class NotAKernel:
            pass

        enforce_kernel_cost(NotAKernel)  # no spec: silently skipped
