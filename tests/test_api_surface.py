"""Public-API surface tests: every documented entry point imports and
every ``__all__`` name resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.tensor",
    "repro.kernels",
    "repro.blocking",
    "repro.machine",
    "repro.perf",
    "repro.dist",
    "repro.cpd",
    "repro.tune",
    "repro.bench",
    "repro.exec",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} must declare __all__"
    for attr in exported:
        assert hasattr(module, attr), f"{name}.{attr} missing"


def test_top_level_version():
    import repro

    assert repro.__version__.count(".") == 2


def test_kernel_registry_complete():
    from repro.kernels import KERNELS

    assert set(KERNELS) >= {
        "coo",
        "splatt",
        "csf",
        "csf-any",
        "csf-blocked",
        "mb",
        "rankb",
        "mb+rankb",
    }


def test_dataset_registry_complete():
    from repro.tensor import DATASETS

    assert len(DATASETS) == 7


def test_docs_exist():
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for fname in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        os.path.join("docs", "machine-model.md"),
        os.path.join("docs", "distributed-substrate.md"),
        os.path.join("docs", "parallel-execution.md"),
    ):
        assert os.path.exists(os.path.join(root, fname)), fname
