"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util import (
    ConfigError,
    ShapeError,
    as_index_array,
    as_value_array,
    check_mode,
    check_rank,
    check_shape,
    require,
)
from repro.util.validation import INDEX_DTYPE, VALUE_DTYPE, check_bounds


class TestCheckRank:
    def test_accepts_positive(self):
        assert check_rank(16) == 16

    def test_coerces_numpy_int(self):
        assert check_rank(np.int64(8)) == 8

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigError):
            check_rank(bad)


class TestCheckMode:
    def test_in_range(self):
        assert check_mode(2, 3) == 2

    def test_negative_wraps(self):
        assert check_mode(-1, 3) == 2
        assert check_mode(-3, 3) == 0

    @pytest.mark.parametrize("bad", [3, -4, 10])
    def test_out_of_range(self, bad):
        with pytest.raises(ShapeError):
            check_mode(bad, 3)


class TestCheckShape:
    def test_valid(self):
        assert check_shape([3, 4, 5]) == (3, 4, 5)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            check_shape([])

    def test_zero_extent_rejected(self):
        with pytest.raises(ShapeError):
            check_shape([3, 0, 5])


class TestArrayCoercion:
    def test_index_array_dtype(self):
        arr = as_index_array([1, 2, 3])
        assert arr.dtype == INDEX_DTYPE
        assert arr.flags.c_contiguous

    def test_value_array_dtype(self):
        arr = as_value_array([1.5, 2.5])
        assert arr.dtype == VALUE_DTYPE

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            as_index_array(np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            as_value_array(np.zeros((2, 2)))


class TestCheckBounds:
    def test_ok(self):
        check_bounds(np.array([0, 4]), 5, "x")

    def test_too_large(self):
        with pytest.raises(ShapeError, match="out of bounds"):
            check_bounds(np.array([0, 5]), 5, "x")

    def test_negative(self):
        with pytest.raises(ShapeError):
            check_bounds(np.array([-1]), 5, "x")

    def test_empty_ok(self):
        check_bounds(np.array([], dtype=np.int64), 5, "x")


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_default(self):
        with pytest.raises(ConfigError, match="boom"):
            require(False, "boom")

    def test_raises_custom(self):
        with pytest.raises(ShapeError):
            require(False, "boom", ShapeError)
