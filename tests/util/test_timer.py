"""Tests for the sample-accumulating Timer."""

import pytest

from repro.util import Timer


def _fake_clock(values):
    it = iter(values)
    return lambda: next(it)


class TestTimer:
    def test_context_manager_appends_sample(self):
        t = Timer(clock_ns=_fake_clock([100, 350]))
        with t:
            pass
        assert t.samples_ns == [250]
        assert t.samples == [250e-9]
        assert t.elapsed == pytest.approx(250e-9)

    def test_multiple_intervals_accumulate(self):
        t = Timer(clock_ns=_fake_clock([0, 10, 20, 50, 100, 160]))
        for _ in range(3):
            with t:
                pass
        assert t.samples_ns == [10, 30, 60]
        assert len(t) == 3
        assert t.total == pytest.approx(100e-9)
        assert t.elapsed == pytest.approx(60e-9)  # last interval

    def test_start_stop_explicit(self):
        t = Timer(clock_ns=_fake_clock([5, 25]))
        t.start()
        elapsed = t.stop()
        assert elapsed == pytest.approx(20e-9)
        assert t.samples_ns == [20]

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer(clock_ns=_fake_clock([0, 1, 2, 3]))
        with t:
            pass
        t.reset()
        assert t.samples == []
        assert t.elapsed == 0.0

    def test_real_clock_monotonic(self):
        t = Timer()
        with t:
            _ = sum(range(1000))
        assert t.elapsed >= 0.0
        assert len(t.samples) == 1
