"""Tests for repro.util.formatting."""

import pytest

from repro.util import format_bytes, format_count, format_seconds, format_table


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2.0 KiB"),
            (1536, "1.5 KiB"),
            (1024**2, "1.0 MiB"),
            (3 * 1024**3, "3.0 GiB"),
        ],
    )
    def test_values(self, n, expected):
        assert format_bytes(n) == expected

    def test_negative(self):
        assert format_bytes(-2048) == "-2.0 KiB"


class TestFormatCount:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0"),
            (999, "999"),
            (1500, "1.50K"),
            (1_500_000, "1.50M"),
            (2_000_000_000, "2.00B"),
        ],
    )
    def test_values(self, n, expected):
        assert format_count(n) == expected


class TestFormatSeconds:
    def test_zero(self):
        assert format_seconds(0) == "0 s"

    def test_nanoseconds(self):
        assert format_seconds(5e-9) == "5.0 ns"

    def test_milliseconds(self):
        assert format_seconds(0.0042).endswith("ms")

    def test_seconds(self):
        assert format_seconds(2.5) == "2.500 s"


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_numeric_right_aligned(self):
        out = format_table(["n"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out
