"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util import resolve_rng, spawn_rngs


class TestResolveRng:
    def test_int_seed_deterministic(self):
        a = resolve_rng(7).random(5)
        b = resolve_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_passthrough(self):
        gen = np.random.default_rng(3)
        assert resolve_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 4)) == 4

    def test_children_differ(self):
        children = spawn_rngs(1, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_deterministic(self):
        a = [c.random(3).tolist() for c in spawn_rngs(9, 2)]
        b = [c.random(3).tolist() for c in spawn_rngs(9, 2)]
        assert a == b

    def test_from_generator(self):
        children = spawn_rngs(np.random.default_rng(5), 2)
        assert len(children) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
