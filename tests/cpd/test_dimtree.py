"""Tests for dimension-tree (memoized) CP-ALS."""

import numpy as np
import pytest

from repro.cpd import cp_als, cp_als_dimtree, init_factors
from repro.cpd.dimtree import DimTreePlan
from repro.kernels import reference_mttkrp
from repro.tensor import COOTensor, poisson_tensor, uniform_random_tensor
from repro.util import ConfigError


@pytest.fixture(scope="module")
def tensor():
    # Clustered counts: pairs are heavily reused (P << nnz would need
    # duplicate (i,j); with counts, fibers along k give P < nnz).
    return poisson_tensor((20, 25, 22), 5000, seed=71, concentration=0.2)


class TestPlanStructure:
    def test_pairs_cover_nonzeros(self, tensor):
        plan = DimTreePlan(tensor)
        assert plan.pair_ptr[-1] == tensor.nnz
        assert plan.n_pairs <= tensor.nnz
        assert np.all(np.diff(plan.pair_ptr) >= 1)

    def test_pair_reuse_exists(self, tensor):
        plan = DimTreePlan(tensor)
        assert plan.n_pairs < tensor.nnz  # fibers along k are non-trivial

    def test_flop_saving_vs_three_mttkrps(self, tensor):
        """The memoized sweep must cost fewer flops than three SPLATT
        MTTKRPs whenever pairs are reused."""
        from repro.tensor import SplattTensor

        plan = DimTreePlan(tensor)
        rank = 64
        standard = 0.0
        for mode in range(3):
            s = SplattTensor.from_coo(tensor, output_mode=mode)
            standard += 2.0 * rank * (s.nnz + s.n_fibers)
        assert plan.flops_per_sweep(rank) < standard

    def test_memo_bytes(self, tensor):
        plan = DimTreePlan(tensor)
        assert plan.memo_bytes(16) == 8 * 16 * plan.n_pairs

    def test_3mode_only(self):
        t4 = uniform_random_tensor((4, 4, 4, 4), 20, seed=1)
        with pytest.raises(ConfigError):
            DimTreePlan(t4)


class TestMTTKRPExactness:
    """Each memoized update is an exact MTTKRP."""

    def test_all_modes(self, tensor):
        rng = np.random.default_rng(72)
        factors = [rng.standard_normal((n, 7)) for n in tensor.shape]
        plan = DimTreePlan(tensor)
        memo = plan.contract_mode2(factors[2])

        m0 = plan.mttkrp_mode0(memo, factors[1])
        np.testing.assert_allclose(
            m0, reference_mttkrp(tensor, factors, 0), rtol=1e-10, atol=1e-12
        )
        m1 = plan.mttkrp_mode1(memo, factors[0])
        np.testing.assert_allclose(
            m1, reference_mttkrp(tensor, factors, 1), rtol=1e-10, atol=1e-12
        )
        m2 = plan.mttkrp_mode2(factors[0], factors[1])
        np.testing.assert_allclose(
            m2, reference_mttkrp(tensor, factors, 2), rtol=1e-10, atol=1e-12
        )

    def test_empty_tensor(self):
        t = COOTensor((3, 4, 5), np.empty((0, 3)), np.empty(0))
        plan = DimTreePlan(t)
        rng = np.random.default_rng(0)
        memo = plan.contract_mode2(rng.random((5, 3)))
        assert plan.mttkrp_mode0(memo, rng.random((4, 3))).shape == (3, 3)


class TestTrajectoryEquivalence:
    def test_same_fits_as_standard_als(self, tensor):
        init = init_factors(tensor, 5, seed=3)
        standard = cp_als(
            tensor, 5, n_iters=6, tol=0.0, init=[f.copy() for f in init]
        )
        memoized = cp_als_dimtree(
            tensor, 5, n_iters=6, tol=0.0, init=[f.copy() for f in init]
        )
        np.testing.assert_allclose(memoized.fits, standard.fits, rtol=1e-9)

    def test_convergence(self, tensor):
        res = cp_als_dimtree(tensor, 4, n_iters=100, tol=1e-4, seed=4)
        assert res.converged
        assert res.final_fit > 0

    def test_bad_init(self, tensor):
        with pytest.raises(ConfigError):
            cp_als_dimtree(tensor, 3, init=[np.ones((20, 3))])
