"""End-to-end float32 CPD regression tests.

The kernels have honored the float32 precision contract since the static
analyzer's KC-rule era; these tests pin the *driver* layers — cp_als,
cp_apr, cp_als_dimtree, init_factors, KruskalTensor — which used to
allocate float64 weights/grams and silently upcast (or trip the kernels'
mixed-precision ConfigError) on float32 input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpd import KruskalTensor, cp_als, cp_als_dimtree, cp_apr, init_factors
from repro.tensor import poisson_tensor
from repro.tensor.coo import COOTensor


def as_float32(tensor: COOTensor) -> COOTensor:
    return COOTensor(tensor.shape, tensor.indices, tensor.values.astype(np.float32))


@pytest.fixture(scope="module")
def t32() -> COOTensor:
    return as_float32(poisson_tensor((20, 26, 22), 1600, seed=9))


def assert_model_float32(model: KruskalTensor) -> None:
    assert model.weights.dtype == np.float32
    for m, f in enumerate(model.factors):
        assert f.dtype == np.float32, f"factor {m} upcast to {f.dtype}"


class TestTensorLayer:
    def test_coo_preserves_float32(self, t32):
        assert t32.values.dtype == np.float32
        assert t32.deduplicate().values.dtype == np.float32

    def test_compressed_formats_preserve_float32(self, t32):
        from repro.tensor import CSFTensor, SplattTensor

        assert SplattTensor.from_coo(t32, output_mode=0).vals.dtype == np.float32
        assert CSFTensor.from_coo(t32).vals.dtype == np.float32

    def test_float16_still_coerced_to_float64(self):
        t = poisson_tensor((6, 7, 8), 50, seed=1)
        t16 = COOTensor(t.shape, t.indices, t.values.astype(np.float16))
        assert t16.values.dtype == np.float64


class TestInitFactors:
    @pytest.mark.parametrize("method", ["random", "randn", "hosvd"])
    def test_init_matches_tensor_dtype(self, t32, method):
        factors = init_factors(t32, rank=6, method=method, seed=0)
        assert all(f.dtype == np.float32 for f in factors)

    def test_float64_unchanged(self):
        t = poisson_tensor((10, 12, 11), 300, seed=2)
        factors = init_factors(t, rank=4, seed=0)
        assert all(f.dtype == np.float64 for f in factors)


class TestKruskalTensor:
    def test_all_float32_stays_float32(self):
        rng = np.random.default_rng(0)
        factors = [rng.random((n, 3), dtype=np.float32) for n in (5, 6, 7)]
        model = KruskalTensor(np.ones(3, dtype=np.float32), factors)
        assert_model_float32(model)
        assert_model_float32(model.normalize())
        assert np.isfinite(model.norm())

    def test_mixed_inputs_promote_to_float64(self):
        rng = np.random.default_rng(0)
        factors = [rng.random((n, 3), dtype=np.float32) for n in (5, 6, 7)]
        model = KruskalTensor(np.ones(3), factors)  # float64 weights
        assert model.weights.dtype == np.float64
        assert all(f.dtype == np.float64 for f in model.factors)


class TestFloat32EndToEnd:
    def test_cp_als_rank16_converges_float32(self, t32):
        # The ISSUE acceptance case: no upcast, no mixed-precision
        # ConfigError, and the fit actually improves.
        res = cp_als(t32, 16, n_iters=10, seed=0)
        assert_model_float32(res.model)
        assert np.isfinite(res.final_fit)
        assert res.final_fit > res.fits[0] - 1e-3
        assert res.final_fit > 0.0

    @pytest.mark.parametrize(
        "kernel,params",
        [
            ("coo", {}),
            ("mb", {"block_counts": (2, 2, 2)}),
            ("rankb", {"n_rank_blocks": 2}),
        ],
    )
    def test_cp_als_float32_other_kernels(self, t32, kernel, params):
        res = cp_als(t32, 6, n_iters=4, seed=0, kernel=kernel, kernel_params=params)
        assert_model_float32(res.model)
        assert np.isfinite(res.final_fit)

    def test_cp_als_float32_matches_float64_fit(self, t32):
        t64 = COOTensor(t32.shape, t32.indices, t32.values.astype(np.float64))
        fit32 = cp_als(t32, 6, n_iters=6, seed=0).final_fit
        fit64 = cp_als(t64, 6, n_iters=6, seed=0).final_fit
        assert fit32 == pytest.approx(fit64, abs=5e-3)

    def test_cp_als_dimtree_float32(self, t32):
        res = cp_als_dimtree(t32, 8, n_iters=5, seed=0)
        assert_model_float32(res.model)
        assert np.isfinite(res.final_fit)
        assert res.final_fit > 0.0

    def test_cp_apr_float32(self, t32):
        res = cp_apr(t32, 8, n_iters=5, seed=0)
        assert_model_float32(res.model)
        assert np.isfinite(res.final_log_likelihood)
        # Log-likelihood is non-decreasing under the APR multiplicative
        # updates, float32 noise aside.
        assert res.log_likelihoods[-1] >= res.log_likelihoods[0] - 1e-2

    @pytest.mark.parallel_exec
    def test_cp_als_float32_threaded(self, t32):
        res = cp_als(t32, 6, n_iters=3, seed=0, n_threads=2)
        assert_model_float32(res.model)
        serial = cp_als(t32, 6, n_iters=3, seed=0)
        assert res.final_fit == pytest.approx(serial.final_fit, abs=1e-4)
