"""Tests for CP-APR (Poisson nonnegative CP)."""

import numpy as np
import pytest

from repro.cpd import KruskalTensor, cp_apr, poisson_log_likelihood
from repro.tensor import COOTensor, poisson_tensor
from repro.util import ConfigError


@pytest.fixture(scope="module")
def count_tensor():
    return poisson_tensor((20, 24, 22), 4000, seed=55, concentration=0.3)


class TestUpdates:
    def test_log_likelihood_monotone(self, count_tensor):
        """Multiplicative updates must not decrease the likelihood."""
        res = cp_apr(count_tensor, 4, n_iters=15, tol=0.0, seed=1)
        lls = np.array(res.log_likelihoods)
        assert np.all(np.diff(lls) > -1e-6 * np.abs(lls[:-1]))

    def test_factors_nonnegative(self, count_tensor):
        res = cp_apr(count_tensor, 4, n_iters=10, seed=2)
        assert np.all(res.model.weights >= 0)
        for f in res.model.factors:
            assert np.all(f >= 0)

    def test_columns_normalized(self, count_tensor):
        """Factor columns are stochastic (sum to 1); scale lives in the
        weights — the Chi-Kolda parameterization."""
        res = cp_apr(count_tensor, 4, n_iters=5, seed=3)
        for f in res.model.factors:
            np.testing.assert_allclose(f.sum(axis=0), 1.0, rtol=1e-8)

    def test_total_mass_matched(self, count_tensor):
        """At convergence the model's total mass equals the data's
        (a stationarity property of Poisson MU updates)."""
        res = cp_apr(count_tensor, 4, n_iters=40, tol=1e-10, seed=4)
        assert res.model.weights.sum() == pytest.approx(
            count_tensor.values.sum(), rel=0.01
        )


class TestRecovery:
    def test_planted_components(self):
        """CP-APR should reconstruct a planted low-rank Poisson model well
        enough to beat a rank-1 fit decisively."""
        rng = np.random.default_rng(6)
        true_rank = 3
        shape = (15, 14, 16)
        factors = [
            rng.dirichlet(np.full(n, 0.3), size=true_rank).T for n in shape
        ]
        truth = KruskalTensor(np.full(true_rank, 2000.0), factors)
        dense = rng.poisson(truth.full())
        x = COOTensor.from_dense(dense.astype(float))

        full = cp_apr(x, true_rank, n_iters=50, seed=7)
        low = cp_apr(x, 1, n_iters=50, seed=7)
        assert full.final_log_likelihood > low.final_log_likelihood

    def test_convergence_flag(self, count_tensor):
        res = cp_apr(count_tensor, 3, n_iters=200, tol=1e-4, seed=8)
        assert res.converged
        assert res.n_iters < 200


class TestValidation:
    def test_negative_values_rejected(self):
        x = COOTensor((3, 3, 3), np.array([[0, 0, 0]]), np.array([-1.0]))
        with pytest.raises(ConfigError):
            cp_apr(x, 2)

    def test_bad_init_rejected(self, count_tensor):
        with pytest.raises(ConfigError):
            cp_apr(count_tensor, 2, init="hosvd")
        with pytest.raises(ConfigError):
            cp_apr(count_tensor, 2, init=[np.ones((20, 2))])
        bad = [-np.ones((n, 2)) for n in count_tensor.shape]
        with pytest.raises(ConfigError):
            cp_apr(count_tensor, 2, init=bad)

    def test_explicit_init_used(self, count_tensor):
        init = [
            np.full((n, 2), 1.0 / n) for n in count_tensor.shape
        ]
        res = cp_apr(count_tensor, 2, n_iters=2, init=init)
        assert res.model.rank == 2


class TestLogLikelihood:
    def test_matches_dense_formula(self, count_tensor):
        rng = np.random.default_rng(9)
        weights = rng.random(3) * 100 + 1
        factors = [
            rng.dirichlet(np.ones(n), size=3).T for n in count_tensor.shape
        ]
        ll = poisson_log_likelihood(count_tensor, weights, factors)
        model = KruskalTensor(weights, factors).full()
        dense = count_tensor.to_dense()
        expected = float(
            np.sum(dense[dense > 0] * np.log(model[dense > 0])) - model.sum()
        )
        assert ll == pytest.approx(expected, rel=1e-6)
