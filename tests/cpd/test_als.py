"""Tests for CP-ALS."""

import numpy as np
import pytest

from repro.cpd import KruskalTensor, cp_als, init_factors
from repro.tensor import COOTensor, poisson_tensor
from repro.util import ConfigError
from repro.util.errors import ReproError


def planted_problem(shape=(12, 10, 11), rank=3, seed=5):
    rng = np.random.default_rng(seed)
    kt = KruskalTensor(
        np.ones(rank), [rng.random((n, rank)) + 0.1 for n in shape]
    )
    return COOTensor.from_dense(kt.full()), kt


class TestRecovery:
    def test_planted_rank3_recovered(self):
        x, _ = planted_problem()
        res = cp_als(x, 3, n_iters=300, tol=1e-10, seed=1)
        assert res.final_fit > 0.98

    def test_fit_non_decreasing_tail(self):
        """ALS fit is monotone (up to tiny numerical wiggle)."""
        x, _ = planted_problem(seed=6)
        res = cp_als(x, 3, n_iters=40, tol=0.0, seed=2)
        fits = np.array(res.fits)
        assert np.all(np.diff(fits) > -1e-8)

    def test_convergence_flag(self):
        x, _ = planted_problem(seed=7)
        res = cp_als(x, 3, n_iters=500, tol=1e-6, seed=3)
        assert res.converged
        assert res.n_iters < 500


class TestKernelEquivalence:
    """Every kernel must drive ALS down the same trajectory."""

    @pytest.mark.parametrize(
        "kernel,params",
        [
            ("coo", {}),
            ("csf", {}),
            ("csf-any", {}),
            ("csf-blocked", {"block_counts": (2, 2, 2)}),
            ("mb", {"block_counts": (2, 2, 2)}),
            ("rankb", {"n_rank_blocks": 2}),
            ("mb+rankb", {"block_counts": (2, 2, 2), "n_rank_blocks": 2}),
        ],
    )
    def test_same_fits_as_splatt(self, kernel, params):
        x = poisson_tensor((15, 18, 16), 900, seed=9)
        baseline = cp_als(x, 4, n_iters=5, tol=0.0, kernel="splatt", seed=4)
        other = cp_als(
            x, 4, n_iters=5, tol=0.0, kernel=kernel, kernel_params=params, seed=4
        )
        np.testing.assert_allclose(other.fits, baseline.fits, rtol=1e-8)


class TestAPI:
    def test_explicit_init(self):
        x, kt = planted_problem(seed=8)
        res = cp_als(x, 3, n_iters=3, init=[f.copy() for f in kt.factors])
        assert res.final_fit > 0.9  # started at the solution

    def test_wrong_init_count(self):
        x, _ = planted_problem()
        with pytest.raises(ConfigError):
            cp_als(x, 3, init=[np.ones((12, 3))])

    def test_model_shape(self):
        x, _ = planted_problem()
        res = cp_als(x, 5, n_iters=2)
        assert res.model.rank == 5
        assert res.model.shape == x.shape

    def test_param_validation(self):
        x, _ = planted_problem()
        with pytest.raises(ReproError):
            cp_als(x, 0)
        with pytest.raises(ReproError):
            cp_als(x, 3, n_iters=0)


class TestInit:
    def test_shapes(self):
        x, _ = planted_problem()
        for method in ("random", "randn", "hosvd"):
            fs = init_factors(x, 4, method=method, seed=1)
            assert [f.shape for f in fs] == [(12, 4), (10, 4), (11, 4)]

    def test_deterministic(self):
        x, _ = planted_problem()
        a = init_factors(x, 3, seed=2)
        b = init_factors(x, 3, seed=2)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa, fb)

    def test_unknown_method(self):
        x, _ = planted_problem()
        with pytest.raises(ConfigError):
            init_factors(x, 3, method="magic")

    def test_hosvd_orthogonal_leading_block(self):
        x, _ = planted_problem()
        f = init_factors(x, 3, method="hosvd", seed=0)[0]
        gram = f.T @ f
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-8)

    def test_hosvd_beats_random_start(self):
        """HOSVD init should reach a good fit in fewer iterations."""
        x, _ = planted_problem(seed=11)
        hosvd = cp_als(x, 3, n_iters=5, tol=0.0, init="hosvd", seed=1)
        rand = cp_als(x, 3, n_iters=5, tol=0.0, init="randn", seed=1)
        assert hosvd.final_fit >= rand.final_fit - 0.05
