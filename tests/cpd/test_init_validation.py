"""Explicit-init validation: cp_als/cp_als_dimtree must reject malformed
initial factors up front, naming the offending mode — not fail with an
opaque broadcast error deep inside the first MTTKRP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpd import check_init_factors, cp_als, cp_als_dimtree
from repro.tensor import poisson_tensor
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def tensor():
    return poisson_tensor((12, 15, 10), 600, seed=21)


def _good_init(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((s, rank)) for s in shape]


class TestCheckInitFactors:
    def test_accepts_conforming_factors(self, tensor):
        check_init_factors(_good_init(tensor.shape, 5), tensor.shape, 5)

    def test_wrong_count(self, tensor):
        init = _good_init(tensor.shape, 5)[:2]
        with pytest.raises(ConfigError, match="one initial factor per mode"):
            check_init_factors(init, tensor.shape, 5)

    @pytest.mark.parametrize("bad_mode", [0, 1, 2])
    def test_wrong_rows_names_the_mode(self, tensor, bad_mode):
        init = _good_init(tensor.shape, 5)
        init[bad_mode] = init[bad_mode][:-1]
        with pytest.raises(ConfigError, match=f"mode {bad_mode}"):
            check_init_factors(init, tensor.shape, 5)

    def test_wrong_rank_names_expected_shape(self, tensor):
        init = _good_init(tensor.shape, 5)
        init[1] = np.ascontiguousarray(init[1][:, :3])
        with pytest.raises(ConfigError, match=r"\(15, 5\), got \(15, 3\)"):
            check_init_factors(init, tensor.shape, 5)

    def test_one_dimensional_factor(self, tensor):
        init = _good_init(tensor.shape, 5)
        init[2] = init[2][:, 0]
        with pytest.raises(ConfigError, match="mode 2"):
            check_init_factors(init, tensor.shape, 5)


class TestDriversValidateInit:
    def test_cp_als_rejects_bad_shape(self, tensor):
        init = _good_init(tensor.shape, 4)
        init[1] = np.zeros((3, 4))
        with pytest.raises(ConfigError, match="mode 1"):
            cp_als(tensor, 4, n_iters=2, init=init)

    def test_cp_als_dimtree_rejects_bad_shape(self, tensor):
        init = _good_init(tensor.shape, 4)
        init[2] = np.zeros((tensor.shape[2], 7))
        with pytest.raises(ConfigError, match="mode 2"):
            cp_als_dimtree(tensor, 4, n_iters=2, init=init)

    def test_cp_als_accepts_good_explicit_init(self, tensor):
        init = _good_init(tensor.shape, 4)
        res = cp_als(tensor, 4, n_iters=2, init=init)
        assert res.n_iters == 2
        # The caller's arrays must not be mutated by the run.
        np.testing.assert_array_equal(init[0], _good_init(tensor.shape, 4)[0])

    def test_drivers_agree_from_shared_init(self, tensor):
        init = _good_init(tensor.shape, 4)
        a = cp_als(tensor, 4, n_iters=3, init=[f.copy() for f in init])
        b = cp_als(
            tensor, 4, n_iters=3, init=[f.copy() for f in init], fused=True
        )
        assert a.fits == b.fits
