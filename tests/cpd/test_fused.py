"""Fused ALS sweeps: pooled scratch must change nothing but allocation
counts.  Plus the batched many-small-MTTKRPs launch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpd import batched_mttkrp, cp_als, cp_als_dimtree
from repro.kernels import get_kernel
from repro.obs import Tracer, use_tracer
from repro.tensor import poisson_tensor
from repro.tensor.coo import COOTensor
from repro.util.errors import ConfigError

KERNEL_PARAMS: dict[str, dict[str, object]] = {
    "coo": {},
    "splatt": {},
    "csf": {},
    "csf-any": {},
    "mb": {"block_counts": (2, 2, 2)},
    "rankb": {"n_rank_blocks": 2},
    "mb+rankb": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
    "csf-blocked": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
}


def _tensor(dtype=np.float64, nnz=1200, seed=11):
    t = poisson_tensor((14, 19, 16), nnz, seed=seed)
    if np.dtype(dtype) == np.float64:
        return t
    return COOTensor(t.shape, t.indices, t.values.astype(dtype))


def _assert_identical_runs(ref, fused):
    assert ref.fits == fused.fits
    assert ref.n_iters == fused.n_iters
    np.testing.assert_array_equal(ref.model.weights, fused.model.weights)
    for a, b in zip(ref.model.factors, fused.model.factors):
        np.testing.assert_array_equal(a, b)


class TestFusedBitwiseIdentity:
    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32], ids=["f64", "f32"]
    )
    @pytest.mark.parametrize("kernel", sorted(KERNEL_PARAMS))
    def test_serial_fused_matches_unfused(self, kernel, dtype):
        tensor = _tensor(dtype)
        kwargs = dict(
            rank=6, n_iters=4, seed=0, kernel=kernel,
            kernel_params=KERNEL_PARAMS[kernel],
        )
        ref = cp_als(tensor, **kwargs)
        fused = cp_als(tensor, fused=True, **kwargs)
        _assert_identical_runs(ref, fused)
        assert fused.model.factors[0].dtype == np.dtype(dtype)

    @pytest.mark.parallel_exec
    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32], ids=["f64", "f32"]
    )
    @pytest.mark.parametrize("kernel", ["splatt", "mb"])
    def test_parallel_fused_matches_unfused(self, kernel, dtype):
        tensor = _tensor(dtype)
        kwargs = dict(
            rank=6, n_iters=3, seed=0, kernel=kernel,
            kernel_params=KERNEL_PARAMS[kernel], n_threads=2,
        )
        ref = cp_als(tensor, **kwargs)
        fused = cp_als(tensor, fused=True, **kwargs)
        _assert_identical_runs(ref, fused)

    def test_fused_respects_explicit_backend(self):
        """A caller-selected backend wins over the fused default routing."""
        tensor = _tensor()
        ref = cp_als(tensor, rank=5, n_iters=3, seed=0)
        fused = cp_als(
            tensor, rank=5, n_iters=3, seed=0, fused=True,
            kernel_params={"backend": "numpy"},
        )
        _assert_identical_runs(ref, fused)

    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32], ids=["f64", "f32"]
    )
    def test_dimtree_fused_matches_unfused(self, dtype):
        tensor = _tensor(dtype)
        ref = cp_als_dimtree(tensor, rank=6, n_iters=4, seed=0)
        fused = cp_als_dimtree(tensor, rank=6, n_iters=4, seed=0, fused=True)
        _assert_identical_runs(ref, fused)

    def test_dimtree_fused_tracks_plain_cp_als(self):
        """Same tolerance the unfused dimtree driver is held to against
        cp_als (the memoized contraction order re-associates sums)."""
        tensor = _tensor()
        ref = cp_als(tensor, rank=6, n_iters=4, seed=0)
        fused = cp_als_dimtree(tensor, rank=6, n_iters=4, seed=0, fused=True)
        np.testing.assert_allclose(fused.fits, ref.fits, rtol=1e-9)


class TestScratchAmortization:
    @staticmethod
    def _arena_counters(n_iters: int, driver, **kwargs) -> dict[str, float]:
        tracer = Tracer()
        with use_tracer(tracer):
            driver(_tensor(), rank=6, n_iters=n_iters, tol=0.0,
                   seed=0, fused=True, **kwargs)
        return tracer.counters

    @pytest.mark.parametrize(
        "driver,kwargs",
        [(cp_als, {"kernel": "splatt"}), (cp_als_dimtree, {})],
        ids=["cp_als", "cp_als_dimtree"],
    )
    def test_allocs_do_not_scale_with_iterations(self, driver, kwargs):
        """The O(1)-allocs-per-iteration contract: the arena warms a fixed
        buffer set, so tripling the sweep count must not change allocs
        while reuses grow."""
        short = self._arena_counters(3, driver, **kwargs)
        long = self._arena_counters(9, driver, **kwargs)
        assert short["arena.allocs"] > 0
        assert long["arena.allocs"] == short["arena.allocs"]
        assert long["arena.reuses"] > short["arena.reuses"]
        assert long["arena.bytes"] == short["arena.bytes"]

    def test_unfused_emits_no_arena_counters(self):
        tracer = Tracer()
        with use_tracer(tracer):
            cp_als(_tensor(), rank=4, n_iters=2, seed=0)
        assert "arena.allocs" not in tracer.counters


class TestBatchedMTTKRP:
    @staticmethod
    def _items(n=3, rank=5, dtype=np.float64, seed=5):
        rng = np.random.default_rng(seed)
        tensors, factors_list = [], []
        shapes = [(9, 7, 8), (6, 11, 5), (8, 8, 8)][:n]
        for i, shape in enumerate(shapes):
            t = _tensor(dtype, nnz=150 + 40 * i, seed=seed + i)
            t = COOTensor(
                shape, t.indices % np.array(shape, dtype=t.indices.dtype),
                t.values, validate=False,
            )
            tensors.append(t)
            factors_list.append(
                [rng.standard_normal((s, rank)).astype(dtype) for s in shape]
            )
        return tensors, factors_list

    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32], ids=["f64", "f32"]
    )
    @pytest.mark.parametrize("kernel", ["coo", "splatt"])
    def test_bitwise_vs_standalone(self, kernel, dtype):
        tensors, factors_list = self._items(dtype=dtype)
        kern = get_kernel(kernel)
        for mode in range(3):
            batched = batched_mttkrp(tensors, factors_list, mode, kernel)
            for t, fs, got in zip(tensors, factors_list, batched):
                inputs = [f if m != mode else None for m, f in enumerate(fs)]
                ref = kern.execute(kern.prepare(t, mode), inputs)
                np.testing.assert_array_equal(got, ref)
                assert got.dtype == np.dtype(dtype)

    def test_csf_bitwise_with_pinned_mode_order(self):
        """The CSF layout heuristic is shape-dependent; pinning mode_order
        keeps the stacked launch bitwise-equal to the standalone ones."""
        tensors, factors_list = self._items()
        kern = get_kernel("csf")
        batched = batched_mttkrp(
            tensors, factors_list, 0, "csf", mode_order=(0, 1, 2)
        )
        for t, fs, got in zip(tensors, factors_list, batched):
            ref = kern.execute(
                kern.prepare(t, 0, mode_order=(0, 1, 2)),
                [None, fs[1], fs[2]],
            )
            np.testing.assert_array_equal(got, ref)

    def test_default_layout_allclose(self):
        tensors, factors_list = self._items()
        kern = get_kernel("csf")
        batched = batched_mttkrp(tensors, factors_list, 0, "csf")
        for t, fs, got in zip(tensors, factors_list, batched):
            ref = kern.execute(kern.prepare(t, 0), [None, fs[1], fs[2]])
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_single_item_batch(self):
        tensors, factors_list = self._items(n=1)
        (got,) = batched_mttkrp(tensors, factors_list, 1, "splatt")
        kern = get_kernel("splatt")
        ref = kern.execute(
            kern.prepare(tensors[0], 1),
            [factors_list[0][0], None, factors_list[0][2]],
        )
        np.testing.assert_array_equal(got, ref)

    def test_validation_errors(self):
        tensors, factors_list = self._items()
        with pytest.raises(ConfigError, match="at least one"):
            batched_mttkrp([], [], 0)
        with pytest.raises(ConfigError, match="factor sets"):
            batched_mttkrp(tensors, factors_list[:2], 0)
        with pytest.raises(ConfigError, match="order"):
            bad = COOTensor(
                (4, 5), np.zeros((1, 2), dtype=np.int64), np.ones(1)
            )
            batched_mttkrp(
                [tensors[0], bad], [factors_list[0], factors_list[1]], 0
            )
        skewed = [f.copy() for f in factors_list[1]]
        skewed[1] = np.ascontiguousarray(skewed[1][:, :3])
        with pytest.raises(ConfigError, match="rank"):
            batched_mttkrp(
                [tensors[0], tensors[1]], [factors_list[0], skewed], 0
            )
