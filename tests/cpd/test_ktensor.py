"""Tests for Kruskal tensors."""

import numpy as np
import pytest

from repro.cpd import KruskalTensor
from repro.tensor import COOTensor, uniform_random_tensor
from repro.util import ShapeError


def random_kt(shape=(6, 7, 8), rank=3, seed=0):
    rng = np.random.default_rng(seed)
    return KruskalTensor(
        rng.random(rank) + 0.5, [rng.random((n, rank)) for n in shape]
    )


class TestConstruction:
    def test_properties(self):
        kt = random_kt()
        assert kt.rank == 3
        assert kt.shape == (6, 7, 8)
        assert kt.order == 3

    def test_rank_mismatch(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ShapeError):
            KruskalTensor(
                np.ones(3), [rng.random((5, 3)), rng.random((6, 4))]
            )

    def test_needs_two_modes(self):
        with pytest.raises(ShapeError):
            KruskalTensor(np.ones(2), [np.ones((4, 2))])


class TestNorm:
    def test_matches_dense(self):
        kt = random_kt()
        assert kt.norm() == pytest.approx(np.linalg.norm(kt.full().ravel()))

    def test_rank_one_closed_form(self):
        a, b = np.array([[3.0], [4.0]]), np.array([[1.0], [0.0], [0.0]])
        kt = KruskalTensor(np.array([2.0]), [a, b])
        assert kt.norm() == pytest.approx(2.0 * 5.0 * 1.0)


class TestInnerProduct:
    def test_matches_dense(self):
        kt = random_kt()
        x = uniform_random_tensor(kt.shape, 60, seed=2)
        expected = float(np.sum(x.to_dense() * kt.full()))
        assert kt.innerprod(x) == pytest.approx(expected)

    def test_shape_checked(self):
        kt = random_kt()
        x = uniform_random_tensor((5, 5, 5), 10, seed=3)
        with pytest.raises(ShapeError):
            kt.innerprod(x)

    def test_empty_tensor(self):
        kt = random_kt()
        x = COOTensor(kt.shape, np.empty((0, 3)), np.empty(0))
        assert kt.innerprod(x) == 0.0


class TestFit:
    def test_perfect_model(self):
        kt = random_kt()
        x = COOTensor.from_dense(kt.full())
        assert kt.fit(x) == pytest.approx(1.0, abs=1e-8)

    def test_zero_model_fit_zero(self):
        kt = KruskalTensor(np.zeros(2), [np.zeros((4, 2)), np.zeros((5, 2))])
        x = uniform_random_tensor((4, 5), 8, seed=4)
        assert kt.fit(x) == pytest.approx(0.0, abs=1e-12)

    def test_matches_dense_residual(self):
        kt = random_kt()
        x = uniform_random_tensor(kt.shape, 80, seed=5)
        dense_fit = 1.0 - np.linalg.norm(
            (x.to_dense() - kt.full()).ravel()
        ) / np.linalg.norm(x.values)
        assert kt.fit(x) == pytest.approx(dense_fit, abs=1e-8)


class TestNormalize:
    def test_unit_columns_and_same_tensor(self):
        kt = random_kt()
        nt = kt.normalize()
        for f in nt.factors:
            np.testing.assert_allclose(np.linalg.norm(f, axis=0), 1.0)
        np.testing.assert_allclose(nt.full(), kt.full(), rtol=1e-10)

    def test_zero_column_safe(self):
        f0 = np.zeros((3, 2))
        f1 = np.ones((4, 2))
        kt = KruskalTensor(np.ones(2), [f0, f1])
        nt = kt.normalize()  # must not divide by zero
        assert np.all(np.isfinite(nt.weights))
