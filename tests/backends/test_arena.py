"""Unit tests for the keyed scratch-buffer pool (ScratchArena)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.backends import ScratchArena, current_arena, use_arena


class TestScratchArenaGet:
    def test_first_get_allocates(self) -> None:
        arena = ScratchArena()
        buf = arena.get("a", (4, 3), np.float64)
        assert buf.shape == (4, 3)
        assert buf.dtype == np.float64
        assert arena.allocs == 1
        assert arena.reuses == 0

    def test_same_key_reuses_storage(self) -> None:
        arena = ScratchArena()
        first = arena.get("a", (4, 3), np.float64)
        second = arena.get("a", (4, 3), np.float64)
        assert arena.allocs == 1
        assert arena.reuses == 1
        assert np.shares_memory(first, second)

    def test_smaller_request_reuses_prefix(self) -> None:
        arena = ScratchArena()
        big = arena.get("a", (10, 4), np.float64)
        small = arena.get("a", (3, 4), np.float64)
        assert arena.allocs == 1
        assert small.shape == (3, 4)
        assert np.shares_memory(big, small)

    def test_larger_request_grows_once(self) -> None:
        arena = ScratchArena()
        arena.get("a", (4,), np.float64)
        arena.get("a", (16,), np.float64)
        assert arena.allocs == 2
        # Steady state at the high-water mark: both sizes now reuse.
        arena.get("a", (4,), np.float64)
        arena.get("a", (16,), np.float64)
        assert arena.allocs == 2
        assert arena.reuses == 2

    def test_dtype_change_reallocates(self) -> None:
        arena = ScratchArena()
        arena.get("a", (8,), np.float64)
        f32 = arena.get("a", (8,), np.float32)
        assert f32.dtype == np.float32
        assert arena.allocs == 2

    def test_distinct_keys_do_not_alias(self) -> None:
        arena = ScratchArena()
        a = arena.get("a", (4,), np.float64)
        b = arena.get("b", (4,), np.float64)
        assert not np.shares_memory(a, b)

    def test_zero_fills_the_view(self) -> None:
        arena = ScratchArena()
        buf = arena.get("a", (5,), np.float64)
        buf[:] = 7.0
        zeroed = arena.get("a", (5,), np.float64, zero=True)
        assert np.all(zeroed == 0.0)

    def test_zero_size_request(self) -> None:
        arena = ScratchArena()
        buf = arena.get("a", (0, 4), np.float64)
        assert buf.shape == (0, 4)

    def test_stats_and_nbytes(self) -> None:
        arena = ScratchArena()
        arena.get("a", (4,), np.float64)
        arena.get("a", (4,), np.float64)
        stats = arena.stats()
        assert stats["allocs"] == 1
        assert stats["reuses"] == 1
        assert stats["buffers"] == 1
        assert stats["bytes"] == arena.nbytes == 4 * 8

    def test_clear_drops_buffers_keeps_counters(self) -> None:
        arena = ScratchArena()
        arena.get("a", (4,), np.float64)
        arena.clear()
        assert arena.nbytes == 0
        assert arena.allocs == 1
        arena.get("a", (4,), np.float64)
        assert arena.allocs == 2


class TestArenaContext:
    def test_no_active_arena_by_default(self) -> None:
        assert current_arena() is None

    def test_use_arena_nests(self) -> None:
        outer, inner = ScratchArena(), ScratchArena()
        with use_arena(outer):
            assert current_arena() is outer
            with use_arena(inner):
                assert current_arena() is inner
            assert current_arena() is outer
        assert current_arena() is None

    def test_use_arena_restores_on_exception(self) -> None:
        arena = ScratchArena()
        with pytest.raises(RuntimeError):
            with use_arena(arena):
                raise RuntimeError("boom")
        assert current_arena() is None

    def test_active_arena_is_thread_local(self) -> None:
        arena = ScratchArena()
        seen: list[object] = []
        with use_arena(arena):
            worker = threading.Thread(target=lambda: seen.append(current_arena()))
            worker.start()
            worker.join()
        assert seen == [None]
