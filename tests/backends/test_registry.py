"""Registry and registration-gate tests for repro.backends.

The registration path is the contract surface: unknown kernels, static
dataflow violations (DF613), sanitizer violations (SZ501 through the
seeded mutant), dtype drift, and parity failures must all reject the
backend and leave the registry exactly as it was.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    KERNEL_CONTRACTS,
    Backend,
    default_backend,
    get_backend,
    list_backends,
    register_backend,
    use_backend,
    validate_backend_name,
)
from repro.kernels import get_kernel
from repro.util.errors import ConfigError, RegistrationError


def _reference(kernel_name: str):
    """The unwrapped reference execute body of a registered kernel (the
    dispatch wrapper preserves it via functools.wraps)."""
    kern = get_kernel(kernel_name)
    return type(kern).execute.__wrapped__


class TestRegistryBasics:
    def test_shipped_backends_present(self) -> None:
        names = [b.name for b in list_backends()]
        assert "numpy" in names
        assert "numpy-pooled" in names

    def test_contracts_cover_all_registered_kernels(self) -> None:
        from repro.kernels import KERNELS

        assert set(KERNEL_CONTRACTS) == set(KERNELS)

    def test_contract_declares_write_set(self) -> None:
        for contract in KERNEL_CONTRACTS.values():
            assert contract.writes == "plan.write_set()"

    def test_validate_backend_name_rejects_unknown(self) -> None:
        with pytest.raises(ConfigError, match="unknown backend"):
            validate_backend_name("definitely-not-registered")

    def test_get_backend_roundtrip(self) -> None:
        assert get_backend("numpy-pooled").name == "numpy-pooled"

    def test_default_backend_and_use_backend(self) -> None:
        assert default_backend() == "numpy"
        with use_backend("numpy-pooled"):
            assert default_backend() == "numpy-pooled"
            with use_backend("numpy"):
                assert default_backend() == "numpy"
        assert default_backend() == "numpy"

    def test_use_backend_rejects_unknown(self) -> None:
        with pytest.raises(ConfigError):
            with use_backend("nope"):
                pass  # pragma: no cover

    def test_backend_dataclass_validation(self) -> None:
        with pytest.raises(RegistrationError):
            Backend(name="", ops={})
        with pytest.raises(RegistrationError):
            Backend(name="x", ops={}, parity="exact-ish")


class TestRegistrationGates:
    def test_unknown_kernel_rejected(self) -> None:
        backend = Backend(name="t-unknown", ops={"not-a-kernel": lambda: None})
        with pytest.raises(RegistrationError, match="unknown kernel"):
            register_backend(backend)
        assert not any(b.name == "t-unknown" for b in list_backends())

    def test_duplicate_name_needs_replace(self) -> None:
        backend = Backend(name="numpy", ops={}, parity="bitwise")
        with pytest.raises(RegistrationError, match="already registered"):
            register_backend(backend, validate=False)

    def test_same_instance_reregistration_is_noop(self) -> None:
        backend = get_backend("numpy-pooled")
        assert register_backend(backend) is backend

    def test_seeded_mutant_rejected_through_sz501(self) -> None:
        """A backend op that delegates to the reference body, then writes
        one output row outside ``plan.write_set()``, must be caught by the
        sanitizer's write-set containment rule at registration time."""
        ref = _reference("coo")

        def mutant_coo(self, plan, factors, out=None):  # type: ignore[no-untyped-def]
            result = ref(self, plan, factors, out=out)
            covered = np.zeros(plan.shape[plan.mode], dtype=bool)
            for lo, hi in plan.write_set():
                covered[lo:hi] = True
            gap = int(np.flatnonzero(~covered)[0])
            result[gap, 0] = 1.0
            return result

        with pytest.raises(RegistrationError, match="SZ501"):
            register_backend(
                Backend(name="t-mutant", ops={"coo": mutant_coo})
            )
        assert not any(b.name == "t-mutant" for b in list_backends())

    def test_parity_violation_rejected(self) -> None:
        ref = _reference("coo")

        def skewed_coo(self, plan, factors, out=None):  # type: ignore[no-untyped-def]
            result = ref(self, plan, factors, out=out)
            rows = np.unique(plan.i)
            result[rows] *= 1.5  # stays inside the write-set, wrong values
            return result

        with pytest.raises(RegistrationError, match="parity"):
            register_backend(
                Backend(name="t-skewed", ops={"coo": skewed_coo})
            )
        assert not any(b.name == "t-skewed" for b in list_backends())

    def test_dtype_violation_rejected(self) -> None:
        ref = _reference("coo")

        def upcast_coo(self, plan, factors, out=None):  # type: ignore[no-untyped-def]
            result = ref(self, plan, factors, out=out)
            return result.astype(np.float64)

        with pytest.raises(RegistrationError, match="dtype|parity"):
            register_backend(
                Backend(name="t-upcast", ops={"coo": upcast_coo})
            )
        assert not any(b.name == "t-upcast" for b in list_backends())

    def test_rollback_restores_replaced_backend(self) -> None:
        """A failed replace=True registration must restore the previous
        backend under that name, not leave a hole."""
        original = get_backend("numpy-pooled")

        def broken(self, plan, factors, out=None):  # type: ignore[no-untyped-def]
            raise RuntimeError("broken op")

        with pytest.raises(Exception):
            register_backend(
                Backend(name="numpy-pooled", ops={"coo": broken}),
                replace=True,
            )
        assert get_backend("numpy-pooled") is original


class TestDispatch:
    def test_prepare_rejects_unknown_backend(self) -> None:
        from repro.tensor import poisson_tensor

        tensor = poisson_tensor((10, 8, 6), 100, seed=0)
        kern = get_kernel("coo")
        with pytest.raises(ConfigError, match="unknown backend"):
            kern.prepare(tensor, 0, backend="no-such-backend")

    def test_plan_records_backend(self) -> None:
        from repro.tensor import poisson_tensor

        tensor = poisson_tensor((10, 8, 6), 100, seed=0)
        kern = get_kernel("coo")
        assert kern.prepare(tensor, 0).backend is None
        plan = kern.prepare(tensor, 0, backend="numpy-pooled")
        assert plan.backend == "numpy-pooled"

    def test_dispatch_counter_emitted(self) -> None:
        from repro.obs import Tracer, use_tracer
        from repro.tensor import poisson_tensor

        tensor = poisson_tensor((10, 8, 6), 100, seed=0)
        kern = get_kernel("splatt")
        rng = np.random.default_rng(0)
        factors = [rng.standard_normal((n, 4)) for n in tensor.shape]
        plan = kern.prepare(tensor, 0, backend="numpy-pooled")
        tracer = Tracer()
        with use_tracer(tracer):
            kern.execute(plan, [None, factors[1], factors[2]])
        assert tracer.counters.get("backend.numpy-pooled.calls") == 1
        spans = tracer.spans_named("mttkrp")
        assert spans and spans[0].meta["backend"] == "numpy-pooled"
