"""Shared backend-conformance suite.

Every registered non-reference backend is held to the same contract on
every kernel it overrides (and trivially on the kernels it falls through
on): serial and parallel execution across float32/float64 factors must
match the reference path — bitwise for ``parity='bitwise'`` backends
(numpy-pooled always; more when optional dependencies are importable),
``allclose`` for ``parity='approx'`` ones (numba/torch, whose compiled
reductions may re-associate) — and every overridden op must come through
the execution sanitizer clean against ``plan.write_set()``.

The suite parametrizes over whatever the registry holds at collection
time, so the numba CI leg runs the same tests against the numba backend
with zero extra code here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend, list_backends, use_backend
from repro.kernels import get_kernel

#: Per-kernel prepare parameters; layout-heuristic kernels are pinned so
#: serial/parallel sub-plans agree on traversal order.
KERNEL_PARAMS: dict[str, dict[str, object]] = {
    "coo": {},
    "splatt": {},
    "csf": {},
    "csf-any": {"mode_order": (0, 1, 2)},
    "mb": {"block_counts": (2, 2, 2)},
    "rankb": {"n_rank_blocks": 2},
    "mb+rankb": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
    "csf-blocked": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
}

NON_REFERENCE_BACKENDS = sorted(
    b.name for b in list_backends() if b.name != "numpy"
)


def _assert_parity(backend_name: str, ref: np.ndarray, got: np.ndarray) -> None:
    assert got.dtype == ref.dtype
    if get_backend(backend_name).parity == "bitwise":
        np.testing.assert_array_equal(got, ref)
    else:
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-6)


def _factors(shape, rank, dtype, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((n, rank)).astype(dtype) for n in shape]


@pytest.mark.parametrize("backend_name", NON_REFERENCE_BACKENDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
def test_serial_conformance(kernel_name, dtype, backend_name, small_tensor):
    kern = get_kernel(kernel_name)
    params = KERNEL_PARAMS[kernel_name]
    factors = _factors(small_tensor.shape, 8, dtype)
    for mode in range(small_tensor.order):
        inputs = [f if m != mode else None for m, f in enumerate(factors)]
        ref = kern.execute(kern.prepare(small_tensor, mode, **params), inputs)
        plan = kern.prepare(
            small_tensor, mode, backend=backend_name, **params
        )
        got = kern.execute(plan, inputs)
        _assert_parity(backend_name, ref, got)


@pytest.mark.parallel_exec
@pytest.mark.parametrize("backend_name", NON_REFERENCE_BACKENDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
def test_parallel_conformance(kernel_name, dtype, backend_name, small_tensor):
    """Worker sub-plans inherit the session default backend; the fanned-out
    execution must agree with the reference parallel path."""
    kern = get_kernel(kernel_name)
    params = KERNEL_PARAMS[kernel_name]
    factors = _factors(small_tensor.shape, 8, dtype)
    ref = kern.execute_parallel(
        small_tensor, [None, factors[1], factors[2]], 0,
        n_threads=2, **params,
    )
    with use_backend(backend_name):
        got = kern.execute_parallel(
            small_tensor, [None, factors[1], factors[2]], 0,
            n_threads=2, **params,
        )
    _assert_parity(backend_name, ref, got)


@pytest.mark.parametrize("backend_name", NON_REFERENCE_BACKENDS)
def test_overridden_ops_pass_sanitizer(backend_name, small_tensor):
    """Every op a backend ships must come through SZ501-SZ506 clean when
    dispatched on a fresh plan (the registration gate, re-asserted on a
    different tensor)."""
    from repro.analysis.diagnostics import Severity
    from repro.analysis.sanitize import sanitized_execute

    backend = get_backend(backend_name)
    assert backend.ops, f"{backend_name} overrides no kernels"
    for kernel_name in sorted(backend.ops):
        kern = get_kernel(kernel_name)
        params = KERNEL_PARAMS[kernel_name]
        factors = _factors(small_tensor.shape, 6, np.float64)
        plan = kern.prepare(
            small_tensor, 0, backend=backend_name, **params
        )
        report = sanitized_execute(
            kern, plan, [None, factors[1], factors[2]], check_traffic=False
        )
        errors = [
            d for d in report.diagnostics if d.severity is Severity.ERROR
        ]
        assert errors == [], [d.format() for d in errors]


def test_numpy_pooled_overrides_all_but_csf_any():
    """csf-any's layout heuristic is shape-dependent; it intentionally
    falls through to the reference body."""
    pooled = get_backend("numpy-pooled")
    assert set(pooled.ops) == set(KERNEL_PARAMS) - {"csf-any"}


@pytest.mark.skipif(
    not any(b.name == "numba" for b in list_backends()),
    reason="numba not importable (CI-only backend)",
)
def test_numba_backend_registered_with_approx_parity():
    assert get_backend("numba").parity == "approx"
