"""Property-based tests for MTTKRP kernels (hypothesis).

These check algebraic identities any correct MTTKRP must satisfy,
independent of the dense reference: linearity in the tensor values and
in the factors, additivity over tensor partitions, and invariance of the
blocked kernels to the block grid.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import get_kernel
from repro.tensor import COOTensor


@st.composite
def mttkrp_problems(draw):
    """A small 3-mode tensor plus factors and a mode."""
    shape = tuple(draw(st.integers(2, 10)) for _ in range(3))
    nnz = draw(st.integers(1, 40))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    indices = np.stack(
        [rng.integers(0, s, nnz) for s in shape], axis=1
    )
    values = rng.standard_normal(nnz)
    tensor = COOTensor(shape, indices, values)
    rank = draw(st.integers(1, 6))
    factors = [rng.standard_normal((s, rank)) for s in shape]
    mode = draw(st.integers(0, 2))
    return tensor, factors, mode


@given(mttkrp_problems(), st.floats(-5, 5, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_linearity_in_values(problem, scale):
    """MTTKRP(a*X) == a * MTTKRP(X)."""
    tensor, factors, mode = problem
    kernel = get_kernel("splatt")
    base = kernel.mttkrp(tensor, factors, mode)
    scaled_tensor = COOTensor(tensor.shape, tensor.indices, tensor.values * scale)
    scaled = kernel.mttkrp(scaled_tensor, factors, mode)
    np.testing.assert_allclose(scaled, scale * base, rtol=1e-9, atol=1e-9)


@given(mttkrp_problems())
@settings(max_examples=40, deadline=None)
def test_linearity_in_inner_factor(problem):
    """MTTKRP is linear in each non-output factor."""
    tensor, factors, mode = problem
    kernel = get_kernel("splatt")
    inner = (mode + 1) % 3
    f1 = [f.copy() for f in factors]
    f2 = [f.copy() for f in factors]
    rng = np.random.default_rng(0)
    f2[inner] = rng.standard_normal(f2[inner].shape)
    f_sum = [f.copy() for f in factors]
    f_sum[inner] = f1[inner] + f2[inner]
    out = kernel.mttkrp(tensor, f_sum, mode)
    expected = kernel.mttkrp(tensor, f1, mode) + kernel.mttkrp(tensor, f2, mode)
    np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


@given(mttkrp_problems(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_additivity_over_partitions(problem, split_seed):
    """Splitting the nonzeros arbitrarily and summing the partial MTTKRPs
    recovers the whole — the identity every blocking scheme relies on."""
    tensor, factors, mode = problem
    kernel = get_kernel("coo")
    whole = kernel.mttkrp(tensor, factors, mode)
    rng = np.random.default_rng(split_seed)
    mask = rng.random(tensor.nnz) < 0.5
    part_a = tensor.filter(mask)
    part_b = tensor.filter(~mask)
    total = kernel.mttkrp(part_a, factors, mode) + kernel.mttkrp(
        part_b, factors, mode
    )
    np.testing.assert_allclose(total, whole, rtol=1e-9, atol=1e-9)


@given(
    mttkrp_problems(),
    st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
    st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_blocking_invariance(problem, counts, n_rank_blocks):
    """Any valid block grid and strip count computes the same MTTKRP."""
    tensor, factors, mode = problem
    counts = tuple(min(c, s) for c, s in zip(counts, tensor.shape))
    rank = factors[0].shape[1]
    n_rank_blocks = min(n_rank_blocks, rank)
    base = get_kernel("splatt").mttkrp(tensor, factors, mode)
    blocked = get_kernel("mb+rankb").mttkrp(
        tensor, factors, mode, block_counts=counts, n_rank_blocks=n_rank_blocks
    )
    np.testing.assert_allclose(blocked, base, rtol=1e-9, atol=1e-9)


@given(mttkrp_problems())
@settings(max_examples=30, deadline=None)
def test_mode_permutation_consistency(problem):
    """Permuting tensor modes and the factor list permutes the MTTKRP."""
    tensor, factors, mode = problem
    kernel = get_kernel("splatt")
    base = kernel.mttkrp(tensor, factors, mode)
    perm = (2, 0, 1)
    permuted_tensor = tensor.permute_modes(perm)
    permuted_factors = [factors[p] for p in perm]
    new_mode = perm.index(mode)
    out = kernel.mttkrp(permuted_tensor, permuted_factors, new_mode)
    np.testing.assert_allclose(out, base, rtol=1e-9, atol=1e-9)
