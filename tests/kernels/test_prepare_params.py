"""Every kernel's ``prepare`` must reject parameters it does not
understand — a typo'd ``block_count`` fails loudly instead of silently
preparing an unblocked plan — while still accepting its own knobs and
the universal ``backend=``."""

from __future__ import annotations

import pytest

from repro.kernels import KERNELS, get_kernel
from repro.util.errors import ConfigError

#: One valid non-default parameterization per kernel.
VALID_PARAMS: dict[str, dict[str, object]] = {
    "coo": {},
    "splatt": {},
    "csf": {"mode_order": (0, 1, 2)},
    "csf-any": {"mode_order": (2, 1, 0)},
    "mb": {"block_counts": (2, 2, 2)},
    "rankb": {"n_rank_blocks": 2},
    "mb+rankb": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
    "csf-blocked": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
}


def test_valid_params_cover_registry() -> None:
    assert set(VALID_PARAMS) == set(KERNELS)


@pytest.mark.parametrize("kernel_name", sorted(VALID_PARAMS))
def test_unknown_param_rejected(kernel_name, small_tensor) -> None:
    kern = get_kernel(kernel_name)
    with pytest.raises(ConfigError) as excinfo:
        kern.prepare(small_tensor, 0, block_count=7)  # typo'd knob
    message = str(excinfo.value)
    assert "block_count" in message
    assert kernel_name in message
    # The error teaches the fix: it lists what the kernel does accept.
    assert "accepted" in message


@pytest.mark.parametrize("kernel_name", sorted(VALID_PARAMS))
def test_own_params_still_accepted(kernel_name, small_tensor) -> None:
    kern = get_kernel(kernel_name)
    plan = kern.prepare(small_tensor, 0, **VALID_PARAMS[kernel_name])
    assert plan.mode == 0


@pytest.mark.parametrize("kernel_name", sorted(VALID_PARAMS))
def test_backend_param_universally_accepted(kernel_name, small_tensor) -> None:
    kern = get_kernel(kernel_name)
    plan = kern.prepare(
        small_tensor, 0, backend="numpy", **VALID_PARAMS[kernel_name]
    )
    assert plan.backend == "numpy"


@pytest.mark.parametrize("kernel_name", sorted(VALID_PARAMS))
def test_unknown_backend_rejected(kernel_name, small_tensor) -> None:
    kern = get_kernel(kernel_name)
    with pytest.raises(ConfigError, match="unknown backend"):
        kern.prepare(
            small_tensor, 0, backend="not-a-backend",
            **VALID_PARAMS[kernel_name],
        )


def test_foreign_kernels_knob_rejected(small_tensor) -> None:
    """coo/splatt take no layout knobs at all — another kernel's valid
    parameter is still unknown to them."""
    for kernel_name in ("coo", "splatt"):
        with pytest.raises(ConfigError, match="unknown prepare parameter"):
            get_kernel(kernel_name).prepare(
                small_tensor, 0, block_counts=(2, 2, 2)
            )
