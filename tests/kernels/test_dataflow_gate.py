"""The DF611 registration-time gate: a Kernel subclass violating the
static dataflow contract must fail at class-definition time (and again
at the registry door), with the documented opt-outs honoured."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dataflow import (
    VET_ENV_VAR,
    dataflow_vet_enabled,
    enforce_kernel_dataflow,
    vet_kernel_class,
)
from repro.kernels.base import KERNELS, Kernel, register_kernel
from repro.util.errors import RegistrationError

#: Shared mutable module state for the DF606 violation fixtures.
_SHARED = {}


def _define_df601_violator():
    class BadAlloc(Kernel):
        name = "bad-df601"

        def prepare(self, tensor, mode, **params):
            return None

        def execute(self, plan, factors, out=None):
            return np.zeros((3, 4), dtype=np.float64)

    return BadAlloc


def _define_df606_violator():
    class LeakyState(Kernel):
        name = "bad-df606"

        def prepare(self, tensor, mode, **params):
            return None

        def execute(self, plan, factors, out=None):
            _SHARED["last"] = plan
            return out

    return LeakyState


class TestDefinitionTimeGate:
    def test_df601_violation_raises_at_class_definition(self):
        with pytest.raises(RegistrationError, match="DF611"):
            _define_df601_violator()

    def test_df606_violation_raises_at_class_definition(self):
        with pytest.raises(RegistrationError, match="DF611"):
            _define_df606_violator()

    def test_error_names_the_rule_and_optout(self):
        with pytest.raises(RegistrationError) as exc:
            _define_df601_violator()
        assert "DF601" in str(exc.value)
        assert VET_ENV_VAR in str(exc.value)

    def test_clean_subclass_defines_fine(self):
        class CleanKernel(Kernel):
            name = "clean-df-gate"

            def prepare(self, tensor, mode, **params):
                return None

            def execute(self, plan, factors, out=None):
                return factors[0] * 2.0

        assert CleanKernel.name == "clean-df-gate"

    def test_noqa_in_method_body_respected(self):
        class Annotated(Kernel):
            name = "annotated-df-gate"

            def prepare(self, tensor, mode, **params):
                return None

            def execute(self, plan, factors, out=None):
                return np.zeros((3, 4), dtype=np.float64)  # repro: noqa[DF601]

        assert vet_kernel_class(Annotated) == []


class TestOptOuts:
    def test_env_var_disables_gate(self, monkeypatch):
        monkeypatch.setenv(VET_ENV_VAR, "0")
        assert not dataflow_vet_enabled()
        cls = _define_df601_violator()
        assert cls.name == "bad-df601"

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "False", " OFF "])
    def test_disabling_spellings(self, monkeypatch, value):
        monkeypatch.setenv(VET_ENV_VAR, value)
        assert not dataflow_vet_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", ""])
    def test_enabling_spellings(self, monkeypatch, value):
        monkeypatch.setenv(VET_ENV_VAR, value)
        assert dataflow_vet_enabled()

    def test_class_keyword_disables_gate(self):
        class Unvetted(Kernel, dataflow_vet=False):
            name = "unvetted-df-gate"

            def prepare(self, tensor, mode, **params):
                return None

            def execute(self, plan, factors, out=None):
                return np.zeros((3, 4), dtype=np.float64)

        # The violation is still visible to the explicit vetting API.
        assert any(d.rule == "DF601" for d in vet_kernel_class(Unvetted))


class TestRegistryGate:
    def test_register_revets_classes_that_dodged_definition(self, monkeypatch):
        monkeypatch.setenv(VET_ENV_VAR, "0")
        cls = _define_df601_violator()
        monkeypatch.delenv(VET_ENV_VAR)
        with pytest.raises(RegistrationError, match="DF611"):
            register_kernel(cls())
        assert "bad-df601" not in KERNELS

    def test_class_keyword_optout_still_gated_at_registry(self):
        class UnvettedToo(Kernel, dataflow_vet=False):
            name = "unvetted-df-gate-2"

            def prepare(self, tensor, mode, **params):
                return None

            def execute(self, plan, factors, out=None):
                return np.zeros((3, 4), dtype=np.float64)

        with pytest.raises(RegistrationError, match="DF611"):
            register_kernel(UnvettedToo())
        assert "unvetted-df-gate-2" not in KERNELS

    def test_all_shipped_kernels_vet_clean(self):
        for name, kernel in KERNELS.items():
            assert vet_kernel_class(type(kernel)) == [], name

    def test_diagnostic_lines_point_into_real_file(self):
        class Offside(Kernel, dataflow_vet=False):
            name = "offside-df-gate"

            def prepare(self, tensor, mode, **params):
                return None

            def execute(self, plan, factors, out=None):
                return np.zeros((3, 4), dtype=np.float64)

        (diag,) = [d for d in vet_kernel_class(Offside) if d.rule == "DF601"]
        assert diag.file.endswith("test_dataflow_gate.py")
        src_line = open(__file__, encoding="utf-8").readlines()[diag.line - 1]
        assert "np.zeros" in src_line


class TestVetInternals:
    def test_inherited_methods_not_revetted(self):
        class Base(Kernel, dataflow_vet=False):
            name = "vet-base"

            def prepare(self, tensor, mode, **params):
                return None

            def execute(self, plan, factors, out=None):
                return np.zeros((3, 4), dtype=np.float64)

        class Child(Base):
            name = "vet-child"

        # Child defines no prepare/execute of its own: nothing to vet,
        # the violation belongs to (and was reported for) Base.
        assert vet_kernel_class(Child) == []

    def test_sourceless_class_skipped(self):
        ns: dict = {}
        exec(
            "import numpy as np\n"
            "def execute(self, plan, factors, out=None):\n"
            "    return np.zeros((3, 4), dtype=np.float64)\n",
            ns,
        )
        Sourceless = type(
            "Sourceless", (), {"name": "sourceless", "execute": ns["execute"]}
        )
        # inspect.getsource has nothing to read for exec'd bodies; the
        # gate skips rather than crashing (the on-disk pass covers code
        # that exists on disk).
        assert vet_kernel_class(Sourceless) == []

    def test_enforce_is_noop_when_disabled(self, monkeypatch):
        monkeypatch.setenv(VET_ENV_VAR, "off")

        class Quiet(Kernel, dataflow_vet=False):
            name = "quiet-df-gate"

            def prepare(self, tensor, mode, **params):
                return None

            def execute(self, plan, factors, out=None):
                return np.zeros((3, 4), dtype=np.float64)

        enforce_kernel_dataflow(Quiet)  # must not raise
