"""Precision contract regression tests: float32 factors must flow
through every kernel without a silent float64 upcast, mixed precision
must be rejected, and the traffic model must scale with element size."""

import numpy as np
import pytest

from repro.kernels import get_kernel, reference_mttkrp
from repro.kernels.base import factor_dtype
from repro.tensor import poisson_tensor
from repro.util.errors import ConfigError, ShapeError

KERNEL_PARAMS = {
    "coo": {},
    "splatt": {},
    "csf": {},
    "csf-any": {},
    "csf-blocked": {"block_counts": (2, 2, 2)},
    "mb": {"block_counts": (2, 3, 2)},
    "rankb": {"n_rank_blocks": 3},
    "mb+rankb": {"block_counts": (2, 2, 3), "n_rank_blocks": 2},
}


@pytest.fixture(scope="module")
def problem():
    t = poisson_tensor((14, 20, 17), 1100, seed=61)
    rng = np.random.default_rng(62)
    factors = [rng.standard_normal((n, 9)) for n in t.shape]
    return t, factors


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
@pytest.mark.parametrize("mode", [0, 1, 2])
def test_float32_in_float32_out(problem, kernel_name, mode):
    t, factors = problem
    f32 = [f.astype(np.float32) for f in factors]
    got = get_kernel(kernel_name).mttkrp(
        t, f32, mode, **KERNEL_PARAMS[kernel_name]
    )
    assert got.dtype == np.float32, kernel_name
    ref = reference_mttkrp(t, factors, mode)
    np.testing.assert_allclose(got, ref, rtol=2e-4, atol=2e-4)


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
def test_float64_unchanged(problem, kernel_name):
    t, factors = problem
    got = get_kernel(kernel_name).mttkrp(
        t, factors, 0, **KERNEL_PARAMS[kernel_name]
    )
    assert got.dtype == np.float64


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
def test_mixed_precision_raises(problem, kernel_name):
    t, factors = problem
    mixed = [f.astype(np.float32) for f in factors]
    mixed[2] = mixed[2].astype(np.float64)
    with pytest.raises(ConfigError, match="mixed-precision"):
        get_kernel(kernel_name).mttkrp(
            t, mixed, 0, **KERNEL_PARAMS[kernel_name]
        )


def test_mixed_precision_raises_in_parallel(problem):
    from repro.exec import ParallelExecutor

    t, factors = problem
    ex = ParallelExecutor(n_threads=1)
    pplan = ex.prepare(t, 0, "splatt")
    mixed = [f.astype(np.float32) for f in factors]
    mixed[1] = mixed[1].astype(np.float64)
    with pytest.raises(ConfigError, match="mixed-precision"):
        ex.execute(pplan, mixed)


def test_float32_out_buffer_honored(problem):
    t, factors = problem
    f32 = [f.astype(np.float32) for f in factors]
    kern = get_kernel("splatt")
    plan = kern.prepare(t, 0)
    out = np.empty((t.shape[0], 9), dtype=np.float32)
    got = kern.execute(plan, f32, out=out)
    assert got is out
    # A float64 buffer no longer matches the factor dtype.
    with pytest.raises(ShapeError, match="out buffer"):
        kern.execute(plan, f32, out=np.empty((t.shape[0], 9), dtype=np.float64))


def test_factor_dtype_helper(problem):
    _, factors = problem
    assert factor_dtype(factors) == np.float64
    assert factor_dtype([None, factors[1], factors[2]]) == np.float64
    f32 = [f.astype(np.float32) for f in factors]
    assert factor_dtype(f32) == np.float32
    with pytest.raises(ShapeError):
        factor_dtype([None, None, None])


def test_traffic_scales_with_itemsize(problem):
    from repro.machine import power8
    from repro.machine.traffic import estimate_traffic

    t, _ = problem
    machine = power8(1)
    plan = get_kernel("splatt").prepare(t, 0)
    t8 = estimate_traffic(plan, 16, machine)
    t4 = estimate_traffic(plan, 16, machine, itemsize=4)
    # Factor rows and the value stream shrink with the element size;
    # index/pointer streams are 8-byte either way, so the total drops
    # but by less than half.
    assert t4.total_bytes < t8.total_bytes
    assert t4.total_bytes > t8.total_bytes / 2
    with pytest.raises(ValueError):
        estimate_traffic(plan, 16, machine, itemsize=0)
