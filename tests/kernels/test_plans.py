"""Tests for the Plan/Kernel API: reuse, validation, block statistics."""

import numpy as np
import pytest

from repro.kernels import get_kernel, reference_mttkrp
from repro.kernels.base import check_factors
from repro.util import ConfigError, ShapeError


class TestPlanReuse:
    def test_plan_reused_across_factor_sets(self, small_tensor):
        """Prepare once, execute many times — the CP-ALS usage pattern."""
        kernel = get_kernel("splatt")
        plan = kernel.prepare(small_tensor, 0)
        rng = np.random.default_rng(50)
        for _ in range(3):
            factors = [rng.standard_normal((n, 6)) for n in small_tensor.shape]
            got = kernel.execute(plan, factors)
            ref = reference_mttkrp(small_tensor, factors, 0)
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_out_buffer_reused_and_zeroed(self, small_tensor, factors_for):
        kernel = get_kernel("splatt")
        plan = kernel.prepare(small_tensor, 0)
        factors = factors_for(small_tensor, 5)
        buf = np.full((small_tensor.shape[0], 5), 123.0)
        got = kernel.execute(plan, factors, out=buf)
        assert got is buf
        ref = reference_mttkrp(small_tensor, factors, 0)
        np.testing.assert_allclose(buf, ref, rtol=1e-10, atol=1e-12)

    def test_wrong_out_shape_rejected(self, small_tensor, factors_for):
        kernel = get_kernel("splatt")
        plan = kernel.prepare(small_tensor, 0)
        factors = factors_for(small_tensor, 5)
        with pytest.raises(ShapeError):
            kernel.execute(plan, factors, out=np.zeros((3, 5)))

    def test_different_ranks_same_plan(self, small_tensor):
        kernel = get_kernel("splatt")
        plan = kernel.prepare(small_tensor, 0)
        rng = np.random.default_rng(51)
        for rank in (1, 4, 17):
            factors = [rng.standard_normal((n, rank)) for n in small_tensor.shape]
            got = kernel.execute(plan, factors)
            assert got.shape == (small_tensor.shape[0], rank)


class TestFactorValidation:
    def test_wrong_row_count(self, small_tensor, rng):
        factors = [rng.random((n + 1, 4)) for n in small_tensor.shape]
        with pytest.raises(ShapeError):
            get_kernel("splatt").mttkrp(small_tensor, factors, 0)

    def test_rank_disagreement(self, small_tensor, rng):
        n0, n1, n2 = small_tensor.shape
        factors = [rng.random((n0, 4)), rng.random((n1, 4)), rng.random((n2, 5))]
        with pytest.raises(ShapeError):
            get_kernel("splatt").mttkrp(small_tensor, factors, 0)

    def test_output_factor_may_be_none(self, small_tensor, rng):
        n0, n1, n2 = small_tensor.shape
        factors = [None, rng.random((n1, 4)), rng.random((n2, 4))]
        out = get_kernel("splatt").mttkrp(small_tensor, factors, 0)
        assert out.shape == (n0, 4)

    def test_check_factors_returns_rank(self, rng):
        factors, rank = check_factors(
            [None, rng.random((4, 7)), rng.random((5, 7))], (3, 4, 5), 0
        )
        assert rank == 7
        assert factors[0] is None


class TestBlockStats:
    def test_unblocked_single_phase(self, medium_tensor):
        plan = get_kernel("splatt").prepare(medium_tensor, 0)
        stats = plan.block_stats()
        assert len(stats) == 1
        s = stats[0]
        assert s.nnz == medium_tensor.nnz
        assert s.n_fibers <= s.nnz
        d = medium_tensor.distinct_per_mode()
        assert s.distinct_out == d[0]
        assert s.distinct_inner == d[1]
        assert s.distinct_fiber == d[2]

    def test_blocked_conserves_nnz(self, medium_tensor):
        plan = get_kernel("mb").prepare(medium_tensor, 0, block_counts=(2, 5, 4))
        stats = plan.block_stats()
        assert sum(b.nnz for b in stats) == medium_tensor.nnz
        assert len(stats) <= 2 * 5 * 4

    def test_blocked_distincts_bounded_by_block_extent(self, medium_tensor):
        plan = get_kernel("mb").prepare(medium_tensor, 0, block_counts=(1, 8, 1))
        for b, block in zip(plan.block_stats(), plan.blocked.blocks):
            extent = block.bounds[plan.inner_mode]
            assert b.distinct_inner <= extent[1] - extent[0]

    def test_plan_totals(self, medium_tensor):
        plan = get_kernel("mb").prepare(medium_tensor, 0, block_counts=(2, 2, 2))
        assert plan.nnz == medium_tensor.nnz
        assert plan.n_fibers >= get_kernel("splatt").prepare(
            medium_tensor, 0
        ).n_fibers

    def test_describe(self, small_tensor):
        plan = get_kernel("splatt").prepare(small_tensor, 0)
        text = plan.describe()
        assert "splatt" in text and "nnz" in text

    def test_rankb_plan_carries_config(self, small_tensor):
        plan = get_kernel("rankb").prepare(small_tensor, 0, n_rank_blocks=4)
        assert plan.rank_blocking.n_blocks == 4
        assert plan.block_stats()[0].nnz == small_tensor.nnz


class TestKernelConfigErrors:
    def test_mb_requires_grid(self, small_tensor):
        with pytest.raises(ConfigError):
            get_kernel("mb").prepare(small_tensor, 0)

    def test_mb_rejects_both_specs(self, small_tensor):
        from repro.blocking import BlockGrid

        grid = BlockGrid(small_tensor.shape, (2, 2, 2))
        with pytest.raises(ConfigError):
            get_kernel("mb").prepare(
                small_tensor, 0, grid=grid, block_counts=(2, 2, 2)
            )

    def test_rankb_requires_spec(self, small_tensor):
        with pytest.raises(ConfigError):
            get_kernel("rankb").prepare(small_tensor, 0)

    def test_rankb_rejects_double_spec(self, small_tensor):
        with pytest.raises(ConfigError):
            get_kernel("rankb").prepare(
                small_tensor, 0, n_rank_blocks=2, block_cols=16
            )

    def test_unknown_kernel(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            get_kernel("quantum")
