"""Numerical correctness of every MTTKRP kernel vs. the dense reference."""

import numpy as np
import pytest

from repro.kernels import get_kernel, reference_mttkrp
from repro.tensor import (
    COOTensor,
    clustered_tensor,
    poisson_tensor,
    power_law_tensor,
    uniform_random_tensor,
)

KERNEL_PARAMS = {
    "coo": {},
    "splatt": {},
    "csf": {},
    "mb": {"block_counts": (2, 3, 2)},
    "rankb": {"n_rank_blocks": 3},
    "mb+rankb": {"block_counts": (2, 2, 3), "n_rank_blocks": 2},
}


@pytest.fixture(scope="module")
def problem():
    t = poisson_tensor((15, 22, 18), 1200, seed=31)
    rng = np.random.default_rng(32)
    factors = [rng.standard_normal((n, 13)) for n in t.shape]
    refs = [reference_mttkrp(t, factors, m) for m in range(3)]
    return t, factors, refs


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
@pytest.mark.parametrize("mode", [0, 1, 2])
def test_kernel_matches_reference(problem, kernel_name, mode):
    t, factors, refs = problem
    got = get_kernel(kernel_name).mttkrp(
        t, factors, mode, **KERNEL_PARAMS[kernel_name]
    )
    np.testing.assert_allclose(got, refs[mode], rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize(
    "gen",
    [
        lambda: uniform_random_tensor((12, 30, 9), 800, seed=33),
        lambda: clustered_tensor((25, 25, 25), 900, seed=34),
        lambda: power_law_tensor((20, 30, 15), 700, seed=35),
    ],
    ids=["uniform", "clustered", "power_law"],
)
@pytest.mark.parametrize("kernel_name", sorted(KERNEL_PARAMS))
def test_kernels_across_structures(gen, kernel_name):
    t = gen()
    rng = np.random.default_rng(36)
    factors = [rng.standard_normal((n, 8)) for n in t.shape]
    ref = reference_mttkrp(t, factors, 0)
    got = get_kernel(kernel_name).mttkrp(t, factors, 0, **KERNEL_PARAMS[kernel_name])
    np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)


class TestEdgeCases:
    def test_empty_tensor(self):
        t = COOTensor((5, 6, 7), np.empty((0, 3)), np.empty(0))
        rng = np.random.default_rng(0)
        factors = [rng.random((n, 4)) for n in t.shape]
        for name, params in KERNEL_PARAMS.items():
            out = get_kernel(name).mttkrp(t, factors, 0, **params)
            assert out.shape == (5, 4)
            assert np.all(out == 0.0)

    def test_single_nonzero(self):
        t = COOTensor((3, 4, 5), np.array([[1, 2, 3]]), np.array([2.0]))
        rng = np.random.default_rng(1)
        factors = [rng.random((n, 6)) for n in t.shape]
        expected = np.zeros((3, 6))
        expected[1] = 2.0 * factors[1][2] * factors[2][3]
        for name, params in KERNEL_PARAMS.items():
            got = get_kernel(name).mttkrp(t, factors, 0, **params)
            np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_rank_1(self, small_tensor):
        rng = np.random.default_rng(2)
        factors = [rng.random((n, 1)) for n in small_tensor.shape]
        ref = reference_mttkrp(small_tensor, factors, 1)
        for name, params in KERNEL_PARAMS.items():
            params = {k: v for k, v in params.items() if k != "n_rank_blocks"}
            if name in ("rankb", "mb+rankb"):
                params["n_rank_blocks"] = 1
            got = get_kernel(name).mttkrp(small_tensor, factors, 1, **params)
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_mode_minus_one(self, small_tensor, factors_for):
        factors = factors_for(small_tensor, 5)
        ref = reference_mttkrp(small_tensor, factors, 2)
        got = get_kernel("splatt").mttkrp(small_tensor, factors, -1)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)


class TestChunking:
    """Tiny scratch budgets force the chunked paths."""

    @pytest.mark.parametrize("scratch", [8, 64, 1024])
    def test_splatt_chunked(self, small_tensor, factors_for, scratch):
        from repro.kernels.splatt_mttkrp import SplattKernel

        factors = factors_for(small_tensor, 7)
        ref = reference_mttkrp(small_tensor, factors, 0)
        got = SplattKernel(scratch_elems=scratch).mttkrp(small_tensor, factors, 0)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_coo_chunked(self, small_tensor, factors_for):
        from repro.kernels.coo_mttkrp import COOKernel

        factors = factors_for(small_tensor, 7)
        ref = reference_mttkrp(small_tensor, factors, 0)
        got = COOKernel(scratch_elems=16).mttkrp(small_tensor, factors, 0)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_csf_chunked(self, small_tensor, factors_for):
        from repro.kernels.csf_mttkrp import CSFKernel

        factors = factors_for(small_tensor, 7)
        ref = reference_mttkrp(small_tensor, factors, 0)
        got = CSFKernel(scratch_elems=16).mttkrp(small_tensor, factors, 0)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)


class TestHigherOrder:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_csf_order_4(self, mode):
        t = uniform_random_tensor((7, 8, 9, 10), 500, seed=37)
        rng = np.random.default_rng(38)
        factors = [rng.standard_normal((n, 5)) for n in t.shape]
        got = get_kernel("csf").mttkrp(t, factors, mode)
        ref = reference_mttkrp(t, factors, mode)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_csf_order_5(self):
        t = uniform_random_tensor((4, 5, 6, 7, 8), 400, seed=39)
        rng = np.random.default_rng(40)
        factors = [rng.standard_normal((n, 3)) for n in t.shape]
        got = get_kernel("csf").mttkrp(t, factors, 2)
        ref = reference_mttkrp(t, factors, 2)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)
