"""Tests for the Equation 1-3 operation counters."""

import pytest

from repro.kernels import coo_op_counts, splatt_op_counts
from repro.util.errors import ReproError


class TestSplattCounts:
    def test_equation_1_terms(self):
        """Q = 2nnz + 2F + (1-a)R nnz + (1-a)R F, in words."""
        c = splatt_op_counts(nnz=1000, n_fibers=100, rank=16, alpha=0.5)
        expected = 2 * 1000 + 2 * 100 + 0.5 * 16 * 1000 + 0.5 * 16 * 100
        assert c.memory_words == pytest.approx(expected)

    def test_equation_2(self):
        c = splatt_op_counts(nnz=1000, n_fibers=100, rank=16, alpha=0.5)
        assert c.flops == pytest.approx(2 * 16 * 1100)

    def test_intensity_limits(self):
        """Equation 3: I ranges from R/(8+4R) at a=0 to R/8 at a=1."""
        for rank in (16, 128, 2048):
            lo = splatt_op_counts(10**6, 10**5, rank, 0.0)
            hi = splatt_op_counts(10**6, 10**5, rank, 1.0)
            # With F = nnz/10 the closed forms hold exactly:
            # I = 2R(nnz+F) / 8(2(nnz+F) + (1-a)R(nnz+F)) = R/(8 + 4R(1-a))
            assert lo.arithmetic_intensity == pytest.approx(
                rank / (8 + 4 * rank), rel=1e-12
            )
            assert hi.arithmetic_intensity == pytest.approx(rank / 8, rel=1e-12)

    def test_paper_fig2_alpha95_extremes(self):
        """At a=0.95 the AI spans ~1.43 (R=16) to ~4.90 (R=2048)."""
        lo = splatt_op_counts(10**6, 10**5, 16, 0.95).arithmetic_intensity
        hi = splatt_op_counts(10**6, 10**5, 2048, 0.95).arithmetic_intensity
        assert lo == pytest.approx(1.43, abs=0.01)
        assert hi == pytest.approx(4.90, abs=0.01)

    def test_intensity_monotone_in_alpha(self):
        vals = [
            splatt_op_counts(10**5, 10**4, 64, a).arithmetic_intensity
            for a in (0.0, 0.4, 0.8, 1.0)
        ]
        assert vals == sorted(vals)

    def test_validation(self):
        with pytest.raises(ReproError):
            splatt_op_counts(-1, 0, 16, 0.5)
        with pytest.raises(ReproError):
            splatt_op_counts(10, 1, 16, 1.5)
        with pytest.raises(ReproError):
            splatt_op_counts(10, 1, 0, 0.5)


class TestCOOCounts:
    def test_flops_3r_per_nnz(self):
        c = coo_op_counts(nnz=500, rank=8, alpha=0.0)
        assert c.flops == pytest.approx(3 * 8 * 500)

    def test_coo_does_more_work_than_splatt(self):
        """SPLATT saves flops whenever fibers hold >1 nonzero on average."""
        coo = coo_op_counts(nnz=10_000, rank=32, alpha=0.5)
        spl = splatt_op_counts(nnz=10_000, n_fibers=2_000, rank=32, alpha=0.5)
        assert spl.flops < coo.flops
        assert spl.memory_words < coo.memory_words

    def test_load_counts_positive(self):
        c = coo_op_counts(nnz=10, rank=4, alpha=0.5)
        assert c.load_instructions > 0
        assert c.store_instructions > 0

    def test_memory_bytes_is_words_times_8(self):
        c = coo_op_counts(nnz=10, rank=4, alpha=0.5)
        assert c.memory_bytes == pytest.approx(8 * c.memory_words)
