"""Tests for the any-mode single-CSF MTTKRP kernel."""

import numpy as np
import pytest

from repro.kernels import get_kernel, reference_mttkrp
from repro.kernels.csf_any import CSFAnyKernel
from repro.tensor import poisson_tensor, uniform_random_tensor


@pytest.fixture(scope="module")
def problem3():
    t = poisson_tensor((14, 22, 18), 1500, seed=101)
    rng = np.random.default_rng(102)
    factors = [rng.standard_normal((n, 9)) for n in t.shape]
    return t, factors


class TestCorrectness3Mode:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("mode_order", [(0, 1, 2), (2, 0, 1), (1, 2, 0)])
    def test_every_mode_at_every_level(self, problem3, mode, mode_order):
        """The output mode may sit at the root, middle, or leaf level of
        the tree — all must agree with the dense reference."""
        t, factors = problem3
        got = get_kernel("csf-any").mttkrp(t, factors, mode, mode_order=mode_order)
        ref = reference_mttkrp(t, factors, mode)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_root_placement_matches_root_kernel(self, problem3):
        t, factors = problem3
        any_out = get_kernel("csf-any").mttkrp(
            t, factors, 0, mode_order=(0, 2, 1)
        )
        root_out = get_kernel("csf").mttkrp(t, factors, 0, mode_order=(0, 2, 1))
        np.testing.assert_allclose(any_out, root_out, rtol=1e-12)


class TestCorrectnessHigherOrder:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_order_4_all_levels(self, mode):
        t = uniform_random_tensor((7, 8, 9, 10), 600, seed=103)
        rng = np.random.default_rng(104)
        factors = [rng.standard_normal((n, 6)) for n in t.shape]
        # Fixed ordering puts each mode at a different level.
        got = get_kernel("csf-any").mttkrp(t, factors, mode, mode_order=(3, 1, 0, 2))
        ref = reference_mttkrp(t, factors, mode)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_order_5_middle_level(self):
        t = uniform_random_tensor((5, 6, 7, 8, 6), 400, seed=105)
        rng = np.random.default_rng(106)
        factors = [rng.standard_normal((n, 4)) for n in t.shape]
        got = get_kernel("csf-any").mttkrp(t, factors, 2, mode_order=(0, 1, 2, 3, 4))
        ref = reference_mttkrp(t, factors, 2)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)


class TestOneTreeAllModes:
    def test_shared_tree_serves_all_modes(self, problem3):
        """The memory story: one prepared tree, re-targeted per mode at
        zero cost, matches the reference on every mode."""
        t, factors = problem3
        kernel = get_kernel("csf-any")
        base = kernel.prepare(t, 0, mode_order=(1, 0, 2))
        for mode in range(3):
            plan = CSFAnyKernel.plan_for_mode(base, mode)
            assert plan.csf is base.csf  # no recompression
            got = kernel.execute(plan, factors)
            ref = reference_mttkrp(t, factors, mode)
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_storage_saving(self, problem3):
        """One tree vs SPLATT's three copies (Section III-C footprints)."""
        from repro.tensor import CSFTensor, SplattTensor

        t, _ = problem3
        one_tree = CSFTensor.from_coo(t).memory_bytes()
        three_copies = sum(
            SplattTensor.from_coo(t, output_mode=m).memory_bytes()
            for m in range(3)
        )
        assert one_tree < three_copies / 2

    def test_default_mode_order_shortest_first(self, problem3):
        t, _ = problem3
        plan = get_kernel("csf-any").prepare(t, 2)
        assert plan.csf.mode_order == tuple(
            sorted(range(3), key=lambda m: t.shape[m])
        )


class TestEdgeCases:
    def test_empty(self):
        from repro.tensor import COOTensor

        t = COOTensor((4, 5, 6), np.empty((0, 3)), np.empty(0))
        rng = np.random.default_rng(0)
        factors = [rng.random((n, 3)) for n in t.shape]
        out = get_kernel("csf-any").mttkrp(t, factors, 1)
        assert np.all(out == 0.0)

    def test_repeated_coordinates_at_target_level(self):
        """Multiple subtrees contribute to the same output row — the
        scatter-add path."""
        from repro.tensor import COOTensor

        idx = np.array([[0, 2, 1], [1, 2, 1], [2, 2, 1], [0, 1, 1]])
        t = COOTensor((3, 3, 3), idx, np.array([1.0, 2.0, 3.0, 4.0]))
        rng = np.random.default_rng(1)
        factors = [rng.random((3, 2)) for _ in range(3)]
        got = get_kernel("csf-any").mttkrp(t, factors, 1, mode_order=(0, 1, 2))
        ref = reference_mttkrp(t, factors, 1)
        np.testing.assert_allclose(got, ref, rtol=1e-10)
