"""Tests for the higher-order blocked CSF kernel."""

import numpy as np
import pytest

from repro.blocking import RankBlocking
from repro.kernels import get_kernel, reference_mttkrp
from repro.machine import power8_socket
from repro.perf import predict_time
from repro.tensor import clustered_tensor, uniform_random_tensor
from repro.util import ConfigError


class TestCorrectness3Mode:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_reference(self, mode):
        t = uniform_random_tensor((14, 20, 16), 900, seed=41)
        rng = np.random.default_rng(42)
        factors = [rng.standard_normal((n, 9)) for n in t.shape]
        got = get_kernel("csf-blocked").mttkrp(
            t, factors, mode, block_counts=(2, 3, 2)
        )
        ref = reference_mttkrp(t, factors, mode)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_with_rank_strips(self):
        t = uniform_random_tensor((14, 20, 16), 900, seed=43)
        rng = np.random.default_rng(44)
        factors = [rng.standard_normal((n, 20)) for n in t.shape]
        got = get_kernel("csf-blocked").mttkrp(
            t, factors, 0, block_counts=(2, 2, 2), n_rank_blocks=3
        )
        ref = reference_mttkrp(t, factors, 0)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)


class TestCorrectnessHigherOrder:
    @pytest.mark.parametrize("mode", [0, 2, 3])
    def test_order_4(self, mode):
        t = uniform_random_tensor((8, 9, 10, 11), 700, seed=45)
        rng = np.random.default_rng(46)
        factors = [rng.standard_normal((n, 7)) for n in t.shape]
        got = get_kernel("csf-blocked").mttkrp(
            t, factors, mode, block_counts=(2, 2, 2, 2)
        )
        ref = reference_mttkrp(t, factors, mode)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_order_5_with_strips(self):
        t = uniform_random_tensor((5, 6, 7, 8, 6), 500, seed=47)
        rng = np.random.default_rng(48)
        factors = [rng.standard_normal((n, 18)) for n in t.shape]
        got = get_kernel("csf-blocked").mttkrp(
            t,
            factors,
            1,
            block_counts=(1, 2, 2, 1, 2),
            rank_blocking=RankBlocking(n_blocks=2),
        )
        ref = reference_mttkrp(t, factors, 1)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)


class TestPlanAndModel:
    def test_block_stats_conserve_nnz(self):
        t = uniform_random_tensor((10, 12, 14, 8), 600, seed=49)
        plan = get_kernel("csf-blocked").prepare(t, 0, block_counts=(2, 2, 2, 2))
        assert sum(b.nnz for b in plan.block_stats()) == t.nnz

    def test_machine_model_accepts_plan(self):
        """The traffic/time models work on higher-order blocked plans —
        the full Section V methodology applied to 4-mode data."""
        t = clustered_tensor((40, 60, 50, 30), 5000, seed=50)
        machine = power8_socket().scaled(1.0 / 256.0)
        base = get_kernel("csf").prepare(t, 0)
        blocked = get_kernel("csf-blocked").prepare(
            t, 0, block_counts=(1, 4, 2, 1), n_rank_blocks=2
        )
        t_base = predict_time(base, 128, machine).total
        t_blocked = predict_time(blocked, 128, machine).total
        assert t_base > 0 and t_blocked > 0

    def test_param_validation(self):
        t = uniform_random_tensor((8, 8, 8), 100, seed=51)
        kernel = get_kernel("csf-blocked")
        with pytest.raises(ConfigError):
            kernel.prepare(t, 0)  # no grid
        with pytest.raises(ConfigError):
            kernel.prepare(
                t, 0, block_counts=(2, 2, 2),
                rank_blocking=RankBlocking(n_blocks=2), n_rank_blocks=2,
            )
        with pytest.raises(ConfigError):
            kernel.prepare(t, 0, block_counts=(2, 2, 2), mode_order=(1, 0, 2))

    def test_mode_order_default_shortest_first(self):
        t = uniform_random_tensor((30, 5, 90), 200, seed=52)
        plan = get_kernel("csf-blocked").prepare(t, 0, block_counts=(1, 1, 1))
        assert plan.mode_order == (0, 1, 2)  # mode 1 (len 5) before mode 2
