"""End-to-end tests of the ``repro bench`` CLI verbs."""

import json

from repro.bench import BenchSuiteResult, load_suite, save_suite
from repro.bench.harness import BenchmarkResult, summarize_samples
from repro.cli import main


def synthetic_suite_file(path, name="fig2_roofline", scale=1.0):
    samples = [s * scale for s in (0.0100, 0.0101, 0.0099)]
    suite = BenchSuiteResult(
        config={"tier": "quick"},
        results=[
            BenchmarkResult(
                name=name,
                tags=("model",),
                params={"tier": "quick"},
                samples_s=samples,
                summary=summarize_samples(samples),
                metrics={},
                model=None,
                check="passed",
            )
        ],
    )
    save_suite(suite, str(path))
    return str(path)


class TestBenchList:
    def test_list_text(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig2_roofline" in out and "table3_distributed" in out

    def test_list_json_filtered(self, capsys):
        assert main(["bench", "list", "--filter", "dist", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {e["name"] for e in doc} == {
            "table3_distributed",
            "decomposition_comparison",
            "dist_strong_scaling_real",
        }


class TestBenchRun:
    def test_quick_run_writes_valid_suite(self, tmp_path, capsys):
        out_json = tmp_path / "out.json"
        rc = main(
            [
                "bench", "run",
                "--filter", "fig2_roofline",
                "--quick",
                "--json", str(out_json),
            ]
        )
        assert rc == 0
        suite = load_suite(str(out_json))
        (res,) = suite.results
        assert res.name == "fig2_roofline"
        assert res.check == "passed"
        assert res.params["tier"] == "quick"
        assert suite.config["tier"] == "quick"
        assert "fig2_roofline" in capsys.readouterr().out

    def test_repeats_flag_controls_sample_count(self, tmp_path):
        out_json = tmp_path / "out.json"
        assert (
            main(
                [
                    "bench", "run",
                    "--filter", "fig2_roofline",
                    "--quick",
                    "--repeats", "3",
                    "--json", str(out_json),
                ]
            )
            == 0
        )
        (res,) = load_suite(str(out_json)).results
        assert res.summary.n == 3
        assert len(res.samples_s) == 3

    def test_unknown_filter_exits_2(self, tmp_path, capsys):
        rc = main(
            [
                "bench", "run",
                "--filter", "no-such-benchmark",
                "--json", str(tmp_path / "out.json"),
            ]
        )
        assert rc == 2


class TestBenchCompare:
    def test_self_compare_exits_zero(self, tmp_path, capsys):
        base = synthetic_suite_file(tmp_path / "base.json")
        assert main(["bench", "compare", base, base]) == 0
        assert "within noise" in capsys.readouterr().out

    def test_regression_exits_nonzero_and_names_benchmark(self, tmp_path, capsys):
        base = synthetic_suite_file(tmp_path / "base.json")
        slow = synthetic_suite_file(tmp_path / "slow.json", scale=2.0)
        rc = main(["bench", "compare", base, slow, "--threshold", "1.25"])
        assert rc == 1
        assert "REGRESSED: fig2_roofline" in capsys.readouterr().out

    def test_threshold_loosening_opens_gate(self, tmp_path):
        base = synthetic_suite_file(tmp_path / "base.json")
        slow = synthetic_suite_file(tmp_path / "slow.json", scale=2.0)
        assert main(["bench", "compare", base, slow, "--threshold", "3.0"]) == 0

    def test_invalid_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        base = synthetic_suite_file(tmp_path / "base.json")
        assert main(["bench", "compare", base, str(bad)]) == 2

    def test_markdown_format_and_step_summary(self, tmp_path, capsys):
        base = synthetic_suite_file(tmp_path / "base.json")
        summary = tmp_path / "summary.md"
        rc = main(
            [
                "bench", "compare", base, base,
                "--format", "markdown",
                "--github-summary", str(summary),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "## Benchmark comparison" in out
        assert "✅ no regressions" in summary.read_text()

    def test_strict_metrics_gates_drift(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        for path, speedup in ((base, 2.0), (cur, 3.0)):
            samples = [0.0100, 0.0101, 0.0099]
            suite = BenchSuiteResult(
                config={"tier": "quick"},
                results=[
                    BenchmarkResult(
                        name="m",
                        tags=("model",),
                        params={"tier": "quick"},
                        samples_s=samples,
                        summary=summarize_samples(samples),
                        metrics={"speedup": speedup},
                        model=None,
                        check="passed",
                    )
                ],
            )
            save_suite(suite, str(path))
        assert main(["bench", "compare", str(base), str(cur)]) == 0
        assert (
            main(
                [
                    "bench", "compare", str(base), str(cur),
                    "--strict-metrics",
                ]
            )
            == 1
        )
