"""Tests for the benchmark harness machinery (registry, runner, stats).

The full-size experiments are exercised by ``benchmarks/`` and the
``bench-smoke`` CI job; here we test the machinery itself with synthetic
benchmarks and a fake clock, so the suite stays fast and deterministic.
"""

import pytest

from repro.bench import (
    Benchmark,
    iter_benchmarks,
    run_benchmark,
    summarize_samples,
)
from repro.bench.harness import KNOWN_TAGS, reject_outliers
from repro.util.errors import ConfigError


def fake_clock(step_ns=1_000_000):
    """A monotonic fake nanosecond clock advancing ``step_ns`` per call."""
    state = {"t": 0}

    def clock():
        state["t"] += step_ns
        return state["t"]

    return clock


def make_bench(**over):
    kw = dict(
        name="synthetic",
        fn=lambda scale=1: {"value": 21 * scale},
        tags=frozenset({"model"}),
        params={"scale": 2},
        quick={"scale": 1},
    )
    kw.update(over)
    return Benchmark(**kw)


class TestRegistry:
    def test_all_twenty_three_registered(self):
        names = [b.name for b in iter_benchmarks()]
        assert len(names) == 23
        assert len(set(names)) == 23
        for expected in (
            "fig2_roofline",
            "table1_ppa",
            "table2_datasets",
            "fig4_rankb_sweep",
            "fig5_mb_sweep",
            "fig6_speedup",
            "table3_distributed",
            "kernels_wallclock",
            "parallel_scaling",
            "sensitivity",
            "csf_higher_order",
            "decomposition_comparison",
            "ablation_dimtree",
            "ablation_heuristic",
            "ablation_model",
            "ablation_regblock",
            "tracer_overhead_splatt",
            "cpd_float32",
            "serve_openloop",
            "serve_warm_cache",
            "dist_strong_scaling_real",
            "fused_als_sweeps",
            "backend_matrix",
        ):
            assert expected in names

    def test_tags_are_known(self):
        for b in iter_benchmarks():
            assert b.tags <= KNOWN_TAGS
            assert b.tags, b.name

    def test_filter_by_tag_and_name(self):
        dist = iter_benchmarks("dist")
        assert {b.name for b in dist} == {
            "table3_distributed",
            "decomposition_comparison",
            "dist_strong_scaling_real",
        }
        assert [b.name for b in iter_benchmarks("fig2")] == ["fig2_roofline"]
        # "ablation" matches the four ablation_* names plus the
        # ablation-tagged sensitivity sweep.
        many = iter_benchmarks("fig2,ablation")
        assert len(many) == 6

    def test_unknown_tag_rejected(self):
        with pytest.raises(ConfigError):
            make_bench(tags=frozenset({"nonsense"}))

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            make_bench(name="")


class TestTierParams:
    def test_quick_overrides_merge(self):
        b = make_bench(params={"a": 1, "b": 2}, quick={"b": 3})
        assert b.tier_params(quick=False) == {"a": 1, "b": 2}
        assert b.tier_params(quick=True) == {"a": 1, "b": 3}


class TestRunner:
    def test_repeats_produce_samples(self):
        res = run_benchmark(
            make_bench(), repeats=4, warmup=0, clock_ns=fake_clock()
        )
        assert len(res.samples_s) == 4
        assert res.summary.n == 4
        assert res.params["tier"] == "full"
        assert res.params["scale"] == 2
        assert res.raw == {"value": 42}

    def test_quick_tier_params_and_label(self):
        res = run_benchmark(make_bench(), quick=True, clock_ns=fake_clock())
        assert res.params["tier"] == "quick"
        assert res.raw == {"value": 21}

    def test_zero_repeats_rejected(self):
        with pytest.raises(ConfigError):
            run_benchmark(make_bench(), repeats=0)

    def test_check_pass_fail_and_skip(self):
        def failing(result, params):
            assert result["value"] == -1, "wrong value"

        ok = run_benchmark(
            make_bench(check=lambda r, p: None), clock_ns=fake_clock()
        )
        assert ok.check == "passed" and ok.check_passed
        bad = run_benchmark(make_bench(check=failing), clock_ns=fake_clock())
        assert bad.check.startswith("failed") and not bad.check_passed
        assert "wrong value" in bad.check
        skipped = run_benchmark(
            make_bench(check=failing), run_checks=False, clock_ns=fake_clock()
        )
        assert skipped.check == "skipped" and skipped.check_passed

    def test_setup_teardown_and_timed_region(self):
        calls = []

        def setup(n=3):
            calls.append("setup")
            return list(range(n))

        def run(state):
            calls.append("run")
            return sum(state)

        res = run_benchmark(
            Benchmark(
                name="with-state",
                fn=run,
                setup=setup,
                teardown=lambda state: calls.append("teardown"),
                tags=frozenset({"kernel"}),
                params={"n": 4},
            ),
            repeats=2,
            warmup=1,
            clock_ns=fake_clock(),
        )
        # setup once, warmup + 2 timed runs, teardown once.
        assert calls == ["setup", "run", "run", "run", "teardown"]
        assert res.raw == 6

    def test_metrics_and_model_info_recorded(self):
        res = run_benchmark(
            make_bench(
                metrics=lambda r: {"value": r["value"]},
                model_info=lambda p: {"predicted_s": 0.5 * p["scale"]},
            ),
            clock_ns=fake_clock(),
        )
        assert res.metrics == {"value": 42.0}
        assert res.model == {"predicted_s": 1.0}

    def test_deterministic_given_fake_clock(self):
        a = run_benchmark(make_bench(), repeats=3, clock_ns=fake_clock())
        b = run_benchmark(make_bench(), repeats=3, clock_ns=fake_clock())
        assert a.samples_s == b.samples_s
        assert a.summary == b.summary


class TestStatistics:
    def test_summarize_requires_samples(self):
        with pytest.raises(ConfigError):
            summarize_samples([])

    def test_single_sample_degenerate_ci(self):
        s = summarize_samples([0.5])
        assert s.min_s == s.median_s == s.ci95_low_s == s.ci95_high_s == 0.5
        assert s.std_s == 0.0 and s.outliers == 0

    def test_summary_brackets_median(self):
        samples = [1.0, 1.1, 1.05, 0.95, 1.02]
        s = summarize_samples(samples)
        assert s.ci95_low_s <= s.median_s <= s.ci95_high_s
        assert s.min_s == 0.95
        assert s.n == 5

    def test_seeded_bootstrap_deterministic(self):
        # The ISSUE's determinism requirement: identical samples through
        # the seeded bootstrap (repro.util.rng) give identical stats.
        samples = [1.0, 1.2, 1.1, 1.3, 0.9, 1.05]
        assert summarize_samples(samples, seed=7) == summarize_samples(
            samples, seed=7
        )
        # The CI endpoints come from bootstrap medians, so they are
        # always drawn from the achievable-median range of the samples.
        s = summarize_samples(samples, seed=7)
        assert min(samples) <= s.ci95_low_s <= s.ci95_high_s <= max(samples)

    def test_outlier_rejection_one_sided(self):
        samples = [1.0, 1.01, 0.99, 1.02, 0.98, 5.0]
        kept, n_out = reject_outliers(samples)
        assert n_out == 1
        assert 5.0 not in kept
        # Fast samples are never rejected.
        kept, n_out = reject_outliers([1.0, 1.01, 0.99, 1.02, 0.98, 0.5])
        assert 0.5 in kept

    def test_outlier_rejection_small_or_flat_sets(self):
        assert reject_outliers([1.0, 2.0]) == ([1.0, 2.0], 0)
        # MAD==0 (>=50% of samples on the median) used to disable the
        # rejection entirely; the mean-absolute-deviation fallback now
        # still drops the straggler.
        assert reject_outliers([1.0, 1.0, 1.0, 9.0]) == ([1.0, 1.0, 1.0], 1)
        # ...but identical samples are all kept.
        assert reject_outliers([3.0, 3.0, 3.0]) == ([3.0, 3.0, 3.0], 0)

    def test_outliers_excluded_from_summary(self):
        s = summarize_samples([1.0, 1.01, 0.99, 1.02, 0.98, 50.0])
        assert s.outliers == 1
        assert s.mean_s < 2.0
