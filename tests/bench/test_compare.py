"""Regression-gate tests on synthetic sample sets."""

import json

import pytest

from repro.bench import (
    BenchSuiteResult,
    compare_suites,
    render_comparison_json,
    render_comparison_markdown,
    render_comparison_text,
)
from repro.bench.harness import BenchmarkResult, summarize_samples


def make_result(name, samples, metrics=None):
    return BenchmarkResult(
        name=name,
        tags=("model",),
        params={"tier": "quick"},
        samples_s=list(samples),
        summary=summarize_samples(list(samples)),
        metrics=dict(metrics or {}),
        model=None,
        check="passed",
    )


def make_suite(*results):
    return BenchSuiteResult(config={"tier": "quick"}, results=list(results))


TIGHT = [0.0100, 0.0101, 0.0099, 0.0102, 0.0100]
SLOWER = [s * 2.0 for s in TIGHT]  # 2x > 1.25 threshold, CIs disjoint
FASTER = [s * 0.4 for s in TIGHT]
NOISY_SLOWER = [0.0100, 0.0125, 0.0090, 0.0130, 0.0110]  # wide CI, overlaps


class TestVerdicts:
    def test_identical_suites_are_ok(self):
        cmp = compare_suites(
            make_suite(make_result("a", TIGHT)),
            make_suite(make_result("a", TIGHT)),
        )
        (delta,) = cmp.deltas
        assert delta.verdict == "ok"
        assert delta.ratio == pytest.approx(1.0)
        assert cmp.exit_code() == 0

    def test_clear_slowdown_is_regression(self):
        cmp = compare_suites(
            make_suite(make_result("a", TIGHT)),
            make_suite(make_result("a", SLOWER)),
        )
        (delta,) = cmp.deltas
        assert delta.verdict == "regression"
        assert delta.ratio == pytest.approx(2.0)
        assert delta.ci_overlap is False
        assert cmp.exit_code() == 1
        assert [d.name for d in cmp.regressions] == ["a"]

    def test_slowdown_within_noise_does_not_gate(self):
        # Median ratio is above 1 but the bootstrap CIs overlap, so the
        # CI-overlap guard keeps the gate closed.
        cmp = compare_suites(
            make_suite(make_result("a", NOISY_SLOWER)),
            make_suite(make_result("a", [s * 1.25 for s in NOISY_SLOWER])),
            threshold=1.2,
        )
        (delta,) = cmp.deltas
        assert delta.verdict == "ok"
        assert cmp.exit_code() == 0

    def test_clear_speedup_is_improvement(self):
        cmp = compare_suites(
            make_suite(make_result("a", TIGHT)),
            make_suite(make_result("a", FASTER)),
        )
        (delta,) = cmp.deltas
        assert delta.verdict == "improvement"
        assert cmp.exit_code() == 0

    def test_missing_and_new(self):
        cmp = compare_suites(
            make_suite(make_result("gone", TIGHT), make_result("both", TIGHT)),
            make_suite(make_result("both", TIGHT), make_result("added", TIGHT)),
        )
        verdicts = {d.name: d.verdict for d in cmp.deltas}
        assert verdicts == {"gone": "missing", "added": "new", "both": "ok"}
        assert cmp.exit_code() == 0

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            compare_suites(
                make_suite(make_result("a", TIGHT)),
                make_suite(make_result("a", TIGHT)),
                threshold=1.0,
            )


class TestMetricDrift:
    def test_drift_reported_but_not_gating_by_default(self):
        cmp = compare_suites(
            make_suite(make_result("a", TIGHT, metrics={"speedup": 2.0})),
            make_suite(make_result("a", TIGHT, metrics={"speedup": 3.0})),
        )
        (delta,) = cmp.deltas
        assert delta.verdict == "metric-drift"
        assert delta.metric_drift == {"speedup": (2.0, 3.0)}
        assert cmp.exit_code() == 0
        assert cmp.exit_code(strict_metrics=True) == 1

    def test_small_drift_within_rtol_ignored(self):
        cmp = compare_suites(
            make_suite(make_result("a", TIGHT, metrics={"speedup": 2.00})),
            make_suite(make_result("a", TIGHT, metrics={"speedup": 2.04})),
        )
        (delta,) = cmp.deltas
        assert delta.verdict == "ok"
        assert not delta.metric_drift


class TestRenderers:
    def make_cmp(self):
        return compare_suites(
            make_suite(make_result("slow", TIGHT), make_result("fine", TIGHT)),
            make_suite(make_result("slow", SLOWER), make_result("fine", TIGHT)),
        )

    def test_text_names_the_regression(self):
        text = render_comparison_text(self.make_cmp())
        assert "REGRESSED: slow" in text
        assert "1 regression(s)" in text

    def test_json_is_parseable(self):
        doc = json.loads(render_comparison_json(self.make_cmp()))
        assert doc["regressions"] == ["slow"]
        assert {d["name"] for d in doc["deltas"]} == {"slow", "fine"}

    def test_markdown_banner(self):
        md = render_comparison_markdown(self.make_cmp())
        assert "❌ regression" in md
        assert "| slow |" in md or "| slow " in md
        ok_md = render_comparison_markdown(
            compare_suites(
                make_suite(make_result("a", TIGHT)),
                make_suite(make_result("a", TIGHT)),
            )
        )
        assert "✅ no regressions" in ok_md
