"""Tests for the benchmark harness (small, fast configurations).

The full-size experiments run under ``benchmarks/``; here we check the
harness machinery itself: row structure, determinism, rendering, and
persistence.
"""

import numpy as np
import pytest

from repro.bench import (
    experiment_fig2,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_table1,
    render_rows,
    render_series,
    write_result,
)


class TestFig2:
    def test_grid_shape(self):
        data = experiment_fig2(ranks=(16, 64), alphas=(0.0, 1.0))
        assert data["x_values"] == [16, 64]
        assert set(data["series"]) == {"alpha=0", "alpha=1"}
        assert data["series"]["alpha=1"] == [2.0, 8.0]


class TestTable1:
    def test_rows_structured(self):
        rows = experiment_table1(rank=32)
        assert [r["type"] for r in rows] == [1, 2, 3, 4, 5, 6]
        assert rows[-1]["saving_%"] == 0.0

    def test_deterministic(self):
        a = experiment_table1(rank=32)
        b = experiment_table1(rank=32)
        assert a == b


class TestSweeps:
    def test_fig4_small(self):
        data = experiment_fig4(
            datasets=("poisson2",), rank=64, block_counts=(1, 2)
        )
        assert len(data["x_values"]) == 2
        assert len(data["series"]["poisson2"]) == 2
        assert all(v > 0 for v in data["series"]["poisson2"])

    def test_fig5_custom_grids(self):
        rows = experiment_fig5("poisson2", rank=64, grids=[(1, 2, 1)])
        assert rows[0]["grid"] == "1x2x1"
        assert rows[0]["relative_perf"] > 0

    def test_fig6_small(self):
        data = experiment_fig6("poisson2", ranks=(16, 64))
        assert set(data["series"]) == {"MB", "RankB", "MB+RankB"}
        for series in data["series"].values():
            assert len(series) == 2


class TestRendering:
    def test_render_rows(self):
        text = render_rows([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_rows_empty(self):
        assert render_rows([], title="none") == "none"

    def test_render_series(self):
        text = render_series("x", [1, 2], {"s": [10, 20]})
        assert "10" in text and "20" in text

    def test_write_result(self, tmp_path):
        path = write_result("t", "hello", directory=str(tmp_path))
        assert open(path).read() == "hello\n"
