"""Tests for ASCII chart rendering."""

import pytest

from repro.bench import bar_chart, sparkline
from repro.util.errors import ReproError


class TestBarChart:
    def test_basic_structure(self):
        out = bar_chart([16, 32], {"MB": [1.0, 2.0]}, width=20, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1" in lines[1] and "2" in lines[2]

    def test_bar_lengths_proportional(self):
        out = bar_chart(["a", "b"], {"s": [1.0, 2.0]}, width=20)
        bars = [line.count("#") for line in out.splitlines()]
        assert bars[1] == pytest.approx(2 * bars[0], abs=1)

    def test_reference_marker(self):
        out = bar_chart([1], {"s": [0.5]}, width=20, reference=1.0)
        assert "|" in out.splitlines()[0]
        assert "marks 1" in out

    def test_multi_series_grouped(self):
        out = bar_chart(
            [10, 20], {"A": [1, 2], "B": [3, 4]}, width=12
        )
        assert out.count("A ") == 2
        assert out.count("B ") == 2

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            bar_chart([1, 2], {"s": [1.0]})

    def test_too_many_series(self):
        with pytest.raises(ReproError):
            bar_chart([1], {str(i): [1.0] for i in range(9)})


class TestSparkline:
    def test_monotone_trend(self):
        s = sparkline([0, 1, 2, 3, 4])
        assert len(s) == 5
        assert s[0] == " " and s[-1] == "@"

    def test_flat_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_resampled_width(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10

    def test_empty(self):
        assert sparkline([]) == ""
