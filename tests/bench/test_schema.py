"""Round-trip and validation tests for the BENCH_*.json format."""

import json

import pytest

from repro.bench import (
    BenchSuiteResult,
    load_suite,
    save_suite,
    suite_from_json,
    suite_to_json,
)
from repro.bench.harness import BenchmarkResult, summarize_samples
from repro.bench.schema import SCHEMA_KIND, SCHEMA_VERSION, default_result_path, git_sha
from repro.machine import host_fingerprint, spec_fingerprint
from repro.machine.spec import power8_socket
from repro.util.errors import FormatError


def make_result(name="bench_a", samples=(0.010, 0.011, 0.012), **over):
    kw = dict(
        name=name,
        tags=("model",),
        params={"rank": 64, "tier": "quick"},
        samples_s=list(samples),
        summary=summarize_samples(list(samples)),
        metrics={"speedup": 2.5},
        model={"predicted_s": 0.009},
        check="passed",
    )
    kw.update(over)
    return BenchmarkResult(**kw)


def make_suite(results=None):
    return BenchSuiteResult(
        config={"tier": "quick", "repeats": 1},
        results=list(results) if results is not None else [make_result()],
    )


class TestRoundTrip:
    def test_suite_round_trips(self):
        suite = make_suite([make_result("a"), make_result("b", metrics={})])
        back = suite_from_json(suite_to_json(suite))
        assert back.git_sha == suite.git_sha
        assert back.host == suite.host
        assert back.machine_model == suite.machine_model
        assert back.config == suite.config
        assert [r.name for r in back.results] == ["a", "b"]
        a = back.result_by_name()["a"]
        assert a.samples_s == [0.010, 0.011, 0.012]
        assert a.summary == suite.results[0].summary
        assert a.metrics == {"speedup": 2.5}
        assert a.model == {"predicted_s": 0.009}
        assert a.check == "passed"
        # The raw payload is in-process only — never serialized.
        assert a.raw is None

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        save_suite(make_suite(), str(path))
        doc = json.loads(path.read_text())
        assert doc["kind"] == SCHEMA_KIND
        assert doc["schema_version"] == SCHEMA_VERSION
        suite = load_suite(str(path))
        assert suite.results[0].name == "bench_a"


class TestValidation:
    def test_rejects_non_json(self):
        with pytest.raises(FormatError, match="not a JSON"):
            suite_from_json("this is not json")

    def test_rejects_wrong_kind(self):
        with pytest.raises(FormatError, match="kind"):
            suite_from_json(json.dumps({"kind": "something-else"}))

    def test_rejects_wrong_version(self):
        doc = json.loads(suite_to_json(make_suite()))
        doc["schema_version"] = 999
        with pytest.raises(FormatError, match="schema version"):
            suite_from_json(json.dumps(doc))

    def test_rejects_missing_top_key(self):
        doc = json.loads(suite_to_json(make_suite()))
        del doc["git_sha"]
        with pytest.raises(FormatError, match="git_sha"):
            suite_from_json(json.dumps(doc))

    def test_rejects_incomplete_benchmark_entry(self):
        doc = json.loads(suite_to_json(make_suite()))
        del doc["benchmarks"][0]["summary"]
        with pytest.raises(FormatError, match="summary"):
            suite_from_json(json.dumps(doc))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FormatError, match="cannot read"):
            load_suite(str(tmp_path / "nope.json"))


class TestProvenance:
    def test_default_result_path_shape(self):
        path = default_result_path(0.0)
        assert path.startswith("BENCH_") and path.endswith(".json")
        assert len(path) == len("BENCH_19700101T000000.json")

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_host_fingerprint_stable_hash(self):
        a, b = host_fingerprint(), host_fingerprint()
        assert a == b
        assert len(a["hash"]) == 12

    def test_spec_fingerprint_distinguishes_machines(self):
        spec = power8_socket()
        full = spec_fingerprint(spec)
        scaled = spec_fingerprint(spec.scaled(1 / 16))
        assert full["hash"] != scaled["hash"]
        assert len(full["hash"]) == 12

    def test_suite_defaults_carry_provenance(self):
        suite = make_suite()
        assert "hash" in suite.host
        assert "hash" in suite.machine_model
        assert suite.created_unix > 0
