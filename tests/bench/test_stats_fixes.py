"""Regression tests for the benchmark-statistics bugfixes: the MAD==0
outlier-rejection breakdown and the zero-baseline ``unmeasurable``
verdict in ``repro bench compare``."""

import pytest

from repro.bench.compare import VERDICTS, compare_suites
from repro.bench.harness import (
    BenchmarkResult,
    reject_outliers,
    summarize_samples,
)
from repro.bench.schema import BenchSuiteResult


class TestRejectOutliersDegenerateMAD:
    def test_mad_zero_still_rejects_slow_outlier(self):
        # More than half the samples sit on the median, so the MAD is
        # exactly 0 and the old estimator kept everything — including
        # the 5 s straggler.
        kept, n_out = reject_outliers([0.0, 0.0, 0.0, 5.0])
        assert kept == [0.0, 0.0, 0.0]
        assert n_out == 1

    def test_all_identical_samples_kept(self):
        kept, n_out = reject_outliers([2.0, 2.0, 2.0, 2.0])
        assert kept == [2.0, 2.0, 2.0, 2.0]
        assert n_out == 0

    def test_quantized_timings_with_near_cluster(self):
        # Quantized clock: cluster at 1 ms plus one descheduled sample.
        samples = [0.001, 0.001, 0.001, 0.001, 0.25]
        kept, n_out = reject_outliers(samples)
        assert 0.25 not in kept
        assert n_out == 1

    def test_nondegenerate_path_unchanged(self):
        samples = [1.0, 1.1, 0.9, 1.05, 10.0]
        kept, n_out = reject_outliers(samples)
        assert 10.0 not in kept
        assert n_out == 1

    def test_small_sample_lists_untouched(self):
        assert reject_outliers([1.0, 50.0]) == ([1.0, 50.0], 0)

    def test_summary_min_excludes_degenerate_outlier(self):
        s = summarize_samples([0.0, 0.0, 0.0, 5.0])
        assert s.outliers == 1
        assert s.min_s == 0.0
        assert s.median_s == 0.0


def _suite(named_samples):
    results = [
        BenchmarkResult(
            name=name,
            tags=("model",),
            params={},
            samples_s=list(samples),
            summary=summarize_samples(samples),
            metrics=dict(metrics),
            model=None,
            check="passed",
        )
        for name, samples, metrics in named_samples
    ]
    return BenchSuiteResult(
        config={},
        results=results,
        git_sha="test",
        host={"hash": "h"},
        machine_model={"hash": "m"},
        created_unix=0.0,
    )


class TestUnmeasurableVerdict:
    def test_zero_baseline_is_unmeasurable_not_regression(self):
        base = _suite([("b", [0.0, 0.0, 0.0], {})])
        cur = _suite([("b", [0.5, 0.5, 0.5], {})])
        cmp = compare_suites(base, cur)
        (delta,) = cmp.deltas
        assert delta.verdict == "unmeasurable"
        assert delta.ratio is None
        assert delta.ratio_str == "-"
        assert "re-record" in delta.note
        # An unmeasurable baseline must not fail the gate on its own.
        assert cmp.exit_code() == 0
        assert cmp.exit_code(strict_metrics=True) == 0

    def test_verdict_is_known_and_ordered(self):
        assert "unmeasurable" in VERDICTS
        assert VERDICTS.index("unmeasurable") < VERDICTS.index("ok")

    def test_real_regression_still_gates(self):
        base = _suite([("b", [0.1, 0.1, 0.1], {})])
        cur = _suite([("b", [0.5, 0.5, 0.5], {})])
        cmp = compare_suites(base, cur)
        assert cmp.deltas[0].verdict == "regression"
        assert cmp.exit_code() == 1

    def test_metric_drift_still_reported_alongside(self):
        base = _suite([("b", [0.0, 0.0, 0.0], {"speedup": 2.0})])
        cur = _suite([("b", [0.5, 0.5, 0.5], {"speedup": 4.0})])
        cmp = compare_suites(base, cur)
        (delta,) = cmp.deltas
        # Verdict stays unmeasurable (wall-clock), but the deterministic
        # metric drift is still captured for reporting.
        assert delta.verdict == "unmeasurable"
        assert "speedup" in delta.metric_drift

    def test_zero_current_against_positive_baseline(self):
        base = _suite([("b", [0.1, 0.1, 0.1], {})])
        cur = _suite([("b", [0.0, 0.0, 0.0], {})])
        cmp = compare_suites(base, cur)
        (delta,) = cmp.deltas
        assert delta.verdict in ("improvement", "ok")
        assert cmp.exit_code() == 0


@pytest.mark.parametrize("verdict", VERDICTS)
def test_all_verdicts_render(verdict):
    from repro.bench.compare import Comparison, Delta, render_comparison_text

    cmp = Comparison(
        deltas=[Delta(f"bench_{verdict}", verdict, None, None, None, None, {})],
        threshold=1.25,
        metric_rtol=0.05,
        host_match=True,
        machine_model_match=True,
    )
    assert f"bench_{verdict}" in render_comparison_text(cmp)
