"""Tests for tensor fingerprinting."""

import pytest

from repro.tensor import poisson_tensor, power_law_tensor, uniform_random_tensor
from repro.tune import TensorSignature


class TestSignature:
    def test_deterministic(self):
        t = poisson_tensor((30, 40, 35), 2000, seed=1)
        assert TensorSignature.of(t, 0) == TensorSignature.of(t, 0)

    def test_mode_matters(self):
        t = uniform_random_tensor((16, 256, 16), 3000, seed=2)
        assert TensorSignature.of(t, 0) != TensorSignature.of(t, 1)

    def test_same_structure_same_signature(self):
        """Two draws of the same generator share a fingerprint (the whole
        point: tuning transfers)."""
        a = uniform_random_tensor((64, 128, 64), 5000, seed=3)
        b = uniform_random_tensor((64, 128, 64), 5000, seed=4)
        assert TensorSignature.of(a, 0) == TensorSignature.of(b, 0)

    def test_different_scale_different_signature(self):
        a = uniform_random_tensor((32, 32, 32), 1000, seed=5)
        b = uniform_random_tensor((256, 256, 256), 64_000, seed=5)
        assert TensorSignature.of(a, 0) != TensorSignature.of(b, 0)

    def test_skew_detected(self):
        flat = uniform_random_tensor((64, 4096, 64), 20_000, seed=6)
        skewed = power_law_tensor((64, 4096, 64), 20_000, alphas=(0.5, 1.6, 0.5), seed=6)
        assert (
            TensorSignature.of(skewed, 0).skew_decile
            > TensorSignature.of(flat, 0).skew_decile
        )

    def test_key_stable_and_parseable(self):
        t = poisson_tensor((30, 40, 35), 2000, seed=7)
        sig = TensorSignature.of(t, 2)
        key = sig.key()
        assert key == TensorSignature.of(t, 2).key()
        assert "_m2" in key
        # The key ends with the value itemsize (float64 here).
        assert key.endswith("_b8")

    def test_key_itemsize_helper(self):
        from repro.tune.signature import key_itemsize

        t = poisson_tensor((30, 40, 35), 2000, seed=7)
        key = TensorSignature.of(t, 0).key()
        assert key_itemsize(key) == 8
        # Legacy keys (written before the dtype field) carry no suffix.
        assert key_itemsize("s5-5-5_n8_f1_r3_k0.1_m2") is None

    def test_to_dict_roundtrippable(self):
        t = poisson_tensor((30, 40, 35), 2000, seed=8)
        d = TensorSignature.of(t, 0).to_dict()
        assert isinstance(d["shape_buckets"], list)
        assert "nnz_bucket" in d

    def test_higher_order_supported(self):
        t = uniform_random_tensor((8, 9, 10, 11), 500, seed=9)
        sig = TensorSignature.of(t, 1)
        assert sig.mode == 1
