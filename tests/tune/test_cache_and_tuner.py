"""Tests for the tuning cache and search strategies."""

import pytest

from repro.machine import power8_socket
from repro.tensor import poisson_tensor
from repro.tune import TensorSignature, Tuner, TuningCache
from repro.tune.cache import CacheEntry
from repro.util import ConfigError


@pytest.fixture(scope="module")
def setup():
    tensor = poisson_tensor((40, 200, 60), 15_000, seed=31, concentration=0.2)
    machine = power8_socket().scaled(1.0 / 128.0)
    return tensor, machine


class TestCache:
    def test_put_get(self):
        cache = TuningCache()
        entry = CacheEntry((1, 4, 1), 32, 0.005, "heuristic")
        cache.put("sig", 128, "m", entry)
        assert cache.get("sig", 128, "m") == entry
        assert cache.get("sig", 64, "m") is None
        assert len(cache) == 1

    def test_save_load_roundtrip(self, tmp_path):
        cache = TuningCache()
        cache.put("a", 16, "m1", CacheEntry((2, 2, 2), None, 1.0, "exhaustive"))
        cache.put("b", 32, "m2", CacheEntry(None, 48, 2.0, "heuristic"))
        path = tmp_path / "tune.json"
        cache.save(path)
        loaded = TuningCache.load(path)
        assert len(loaded) == 2
        assert loaded.get("a", 16, "m1").block_counts == (2, 2, 2)
        assert loaded.get("b", 32, "m2").rank_blocking().block_cols == 48

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigError):
            TuningCache.load(path)

    def test_merge_prefers_cheaper(self):
        a = TuningCache()
        b = TuningCache()
        a.put("s", 16, "m", CacheEntry(None, None, 5.0, "random"))
        b.put("s", 16, "m", CacheEntry((2, 2, 2), None, 1.0, "exhaustive"))
        a.merge(b)
        assert a.get("s", 16, "m").cost == 1.0


class TestTuner:
    def test_heuristic_beats_baseline(self, setup):
        tensor, machine = setup
        tuner = Tuner(tensor, 0, machine)
        result = tuner.tune(256, "heuristic")
        assert result.cost <= result.baseline_cost
        assert result.speedup >= 1.0

    def test_exhaustive_at_least_as_good(self, setup):
        tensor, machine = setup
        tuner = Tuner(tensor, 0, machine)
        heur = tuner.tune(128, "heuristic")
        exh = tuner.tune(128, "exhaustive", max_blocks_per_mode=8)
        assert exh.cost <= heur.cost * 1.001

    def test_random_respects_budget(self, setup):
        tensor, machine = setup
        tuner = Tuner(tensor, 0, machine)
        result = tuner.tune(128, "random", budget=10, seed=3)
        assert result.n_evaluations <= 11
        assert result.cost <= result.baseline_cost

    def test_unknown_strategy(self, setup):
        tensor, machine = setup
        with pytest.raises(ConfigError):
            Tuner(tensor, 0, machine).tune(64, "simulated-annealing")

    def test_get_or_tune_caches(self, setup):
        tensor, machine = setup
        cache = TuningCache()
        tuner = Tuner(tensor, 0, machine, cache=cache)
        first = tuner.get_or_tune(256)
        assert not first.from_cache
        assert len(cache) == 1
        second = tuner.get_or_tune(256)
        assert second.from_cache
        assert second.block_counts == first.block_counts
        assert second.n_evaluations <= 2

    def test_cache_transfers_across_same_structure(self, setup):
        """A tensor with the same signature reuses the stored config."""
        tensor, machine = setup
        other = poisson_tensor((40, 200, 60), 15_000, seed=77, concentration=0.2)
        if TensorSignature.of(other, 0) != TensorSignature.of(tensor, 0):
            pytest.skip("draws landed in different signature buckets")
        cache = TuningCache()
        Tuner(tensor, 0, machine, cache=cache).get_or_tune(256)
        reused = Tuner(other, 0, machine, cache=cache).get_or_tune(256)
        assert reused.from_cache


class TestDtypeAwareCache:
    """Float32 and float64 runs must not share tuning entries: the traffic
    model's working sets halve at itemsize 4, so the tuned configuration
    (and its cost) is dtype-specific."""

    @staticmethod
    def _as32(tensor):
        import numpy as np

        from repro.tensor.coo import COOTensor

        return COOTensor(
            tensor.shape, tensor.indices, tensor.values.astype(np.float32)
        )

    def test_signature_key_differs_by_dtype(self, setup):
        tensor, _ = setup
        t32 = self._as32(tensor)
        sig64 = TensorSignature.of(tensor, 0)
        sig32 = TensorSignature.of(t32, 0)
        assert sig64.itemsize == 8 and sig32.itemsize == 4
        assert sig64.key() != sig32.key()
        # Only the dtype suffix differs: the structural fingerprint is
        # identical (same coordinates, same histogram).
        assert sig64.key().rsplit("_b", 1)[0] == sig32.key().rsplit("_b", 1)[0]

    def test_float32_retune_gets_distinct_entry(self, setup):
        tensor, machine = setup
        t32 = self._as32(tensor)
        cache = TuningCache()
        first = Tuner(tensor, 0, machine, cache=cache).get_or_tune(128)
        assert not first.from_cache
        # The float64 tuning must not be served to the float32 run...
        second = Tuner(t32, 0, machine, cache=cache).get_or_tune(128)
        assert not second.from_cache
        assert len(cache) == 2  # ...it gets its own entry
        # ...and both runs hit their own entry afterwards.
        assert Tuner(t32, 0, machine, cache=cache).get_or_tune(128).from_cache
        assert Tuner(tensor, 0, machine, cache=cache).get_or_tune(128).from_cache

    def test_legacy_entry_without_itemsize_is_a_miss(self, setup):
        tensor, machine = setup
        cache = TuningCache()
        tuner = Tuner(tensor, 0, machine, cache=cache)
        # A pre-dtype-era entry stored under today's key (itemsize=None,
        # as CacheEntry.from_dict produces for legacy files).
        legacy = CacheEntry(None, None, 1.0, "heuristic", itemsize=None)
        cache.put(tuner.signature.key(), 128, machine.name, legacy)
        result = tuner.get_or_tune(128)
        assert not result.from_cache  # legacy entry read as a miss
        stored = cache.get(tuner.signature.key(), 128, machine.name)
        assert stored.itemsize == 8  # re-tuned entry records its dtype

    def test_from_dict_legacy_roundtrip(self):
        entry = CacheEntry.from_dict(
            {"block_counts": [2, 2, 2], "cost": 0.5, "strategy": "heuristic"}
        )
        assert entry.itemsize is None
        modern = CacheEntry.from_dict(
            {"block_counts": None, "cost": 0.5, "strategy": "heuristic",
             "itemsize": 4}
        )
        assert modern.itemsize == 4
