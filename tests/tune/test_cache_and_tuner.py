"""Tests for the tuning cache and search strategies."""

import pytest

from repro.machine import power8_socket
from repro.tensor import poisson_tensor
from repro.tune import TensorSignature, Tuner, TuningCache
from repro.tune.cache import CacheEntry
from repro.util import ConfigError


@pytest.fixture(scope="module")
def setup():
    tensor = poisson_tensor((40, 200, 60), 15_000, seed=31, concentration=0.2)
    machine = power8_socket().scaled(1.0 / 128.0)
    return tensor, machine


class TestCache:
    def test_put_get(self):
        cache = TuningCache()
        entry = CacheEntry((1, 4, 1), 32, 0.005, "heuristic")
        cache.put("sig", 128, "m", entry)
        assert cache.get("sig", 128, "m") == entry
        assert cache.get("sig", 64, "m") is None
        assert len(cache) == 1

    def test_save_load_roundtrip(self, tmp_path):
        cache = TuningCache()
        cache.put("a", 16, "m1", CacheEntry((2, 2, 2), None, 1.0, "exhaustive"))
        cache.put("b", 32, "m2", CacheEntry(None, 48, 2.0, "heuristic"))
        path = tmp_path / "tune.json"
        cache.save(path)
        loaded = TuningCache.load(path)
        assert len(loaded) == 2
        assert loaded.get("a", 16, "m1").block_counts == (2, 2, 2)
        assert loaded.get("b", 32, "m2").rank_blocking().block_cols == 48

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigError):
            TuningCache.load(path)

    def test_merge_prefers_cheaper(self):
        a = TuningCache()
        b = TuningCache()
        a.put("s", 16, "m", CacheEntry(None, None, 5.0, "random"))
        b.put("s", 16, "m", CacheEntry((2, 2, 2), None, 1.0, "exhaustive"))
        a.merge(b)
        assert a.get("s", 16, "m").cost == 1.0


class TestTuner:
    def test_heuristic_beats_baseline(self, setup):
        tensor, machine = setup
        tuner = Tuner(tensor, 0, machine)
        result = tuner.tune(256, "heuristic")
        assert result.cost <= result.baseline_cost
        assert result.speedup >= 1.0

    def test_exhaustive_at_least_as_good(self, setup):
        tensor, machine = setup
        tuner = Tuner(tensor, 0, machine)
        heur = tuner.tune(128, "heuristic")
        exh = tuner.tune(128, "exhaustive", max_blocks_per_mode=8)
        assert exh.cost <= heur.cost * 1.001

    def test_random_respects_budget(self, setup):
        tensor, machine = setup
        tuner = Tuner(tensor, 0, machine)
        result = tuner.tune(128, "random", budget=10, seed=3)
        assert result.n_evaluations <= 11
        assert result.cost <= result.baseline_cost

    def test_unknown_strategy(self, setup):
        tensor, machine = setup
        with pytest.raises(ConfigError):
            Tuner(tensor, 0, machine).tune(64, "simulated-annealing")

    def test_get_or_tune_caches(self, setup):
        tensor, machine = setup
        cache = TuningCache()
        tuner = Tuner(tensor, 0, machine, cache=cache)
        first = tuner.get_or_tune(256)
        assert not first.from_cache
        assert len(cache) == 1
        second = tuner.get_or_tune(256)
        assert second.from_cache
        assert second.block_counts == first.block_counts
        assert second.n_evaluations <= 2

    def test_cache_transfers_across_same_structure(self, setup):
        """A tensor with the same signature reuses the stored config."""
        tensor, machine = setup
        other = poisson_tensor((40, 200, 60), 15_000, seed=77, concentration=0.2)
        if TensorSignature.of(other, 0) != TensorSignature.of(tensor, 0):
            pytest.skip("draws landed in different signature buckets")
        cache = TuningCache()
        Tuner(tensor, 0, machine, cache=cache).get_or_tune(256)
        reused = Tuner(other, 0, machine, cache=cache).get_or_tune(256)
        assert reused.from_cache


class TestDtypeAwareCache:
    """Float32 and float64 runs must not share tuning entries: the traffic
    model's working sets halve at itemsize 4, so the tuned configuration
    (and its cost) is dtype-specific."""

    @staticmethod
    def _as32(tensor):
        import numpy as np

        from repro.tensor.coo import COOTensor

        return COOTensor(
            tensor.shape, tensor.indices, tensor.values.astype(np.float32)
        )

    def test_signature_key_differs_by_dtype(self, setup):
        tensor, _ = setup
        t32 = self._as32(tensor)
        sig64 = TensorSignature.of(tensor, 0)
        sig32 = TensorSignature.of(t32, 0)
        assert sig64.itemsize == 8 and sig32.itemsize == 4
        assert sig64.key() != sig32.key()
        # Only the dtype suffix differs: the structural fingerprint is
        # identical (same coordinates, same histogram).
        assert sig64.key().rsplit("_b", 1)[0] == sig32.key().rsplit("_b", 1)[0]

    def test_float32_retune_gets_distinct_entry(self, setup):
        tensor, machine = setup
        t32 = self._as32(tensor)
        cache = TuningCache()
        first = Tuner(tensor, 0, machine, cache=cache).get_or_tune(128)
        assert not first.from_cache
        # The float64 tuning must not be served to the float32 run...
        second = Tuner(t32, 0, machine, cache=cache).get_or_tune(128)
        assert not second.from_cache
        assert len(cache) == 2  # ...it gets its own entry
        # ...and both runs hit their own entry afterwards.
        assert Tuner(t32, 0, machine, cache=cache).get_or_tune(128).from_cache
        assert Tuner(tensor, 0, machine, cache=cache).get_or_tune(128).from_cache

    def test_legacy_entry_without_itemsize_is_a_miss(self, setup):
        tensor, machine = setup
        cache = TuningCache()
        tuner = Tuner(tensor, 0, machine, cache=cache)
        # A pre-dtype-era entry stored under today's key (itemsize=None,
        # as CacheEntry.from_dict produces for legacy files).
        legacy = CacheEntry(None, None, 1.0, "heuristic", itemsize=None)
        cache.put(tuner.signature.key(), 128, machine.name, legacy)
        result = tuner.get_or_tune(128)
        assert not result.from_cache  # legacy entry read as a miss
        stored = cache.get(tuner.signature.key(), 128, machine.name)
        assert stored.itemsize == 8  # re-tuned entry records its dtype

    def test_from_dict_legacy_roundtrip(self):
        entry = CacheEntry.from_dict(
            {"block_counts": [2, 2, 2], "cost": 0.5, "strategy": "heuristic"}
        )
        assert entry.itemsize is None
        modern = CacheEntry.from_dict(
            {"block_counts": None, "cost": 0.5, "strategy": "heuristic",
             "itemsize": 4}
        )
        assert modern.itemsize == 4


def _entry(cost=1.0, itemsize=8):
    return CacheEntry((2, 2, 2), None, cost, "heuristic", itemsize=itemsize)


class TestBoundedCache:
    """The serve-facing bounds: LRU size cap and TTL expiry."""

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigError):
            TuningCache(max_entries=0)
        with pytest.raises(ConfigError):
            TuningCache(ttl_s=0)

    def test_lru_evicts_oldest(self):
        cache = TuningCache(max_entries=2)
        cache.put("a", 8, "m", _entry())
        cache.put("b", 8, "m", _entry())
        cache.put("c", 8, "m", _entry())
        assert len(cache) == 2
        assert cache.n_evicted == 1
        assert cache.get("a", 8, "m") is None
        assert cache.get("b", 8, "m") is not None

    def test_get_refreshes_recency(self):
        cache = TuningCache(max_entries=2)
        cache.put("a", 8, "m", _entry())
        cache.put("b", 8, "m", _entry())
        # Touch "a": "b" becomes the LRU victim.
        assert cache.get("a", 8, "m") is not None
        cache.put("c", 8, "m", _entry())
        assert cache.get("a", 8, "m") is not None
        assert cache.get("b", 8, "m") is None

    def test_ttl_expiry_with_injected_clock(self):
        now = {"t": 1000.0}

        def clock():
            return now["t"]

        cache = TuningCache(ttl_s=10.0, clock=clock)
        cache.put("a", 8, "m", _entry())
        stored = cache.get("a", 8, "m")
        assert stored is not None and stored.created_unix == 1000.0
        now["t"] = 1009.0
        assert cache.get("a", 8, "m") is not None
        now["t"] = 1011.0
        assert cache.get("a", 8, "m") is None  # aged out: forced re-tune
        assert cache.n_expired == 1
        assert len(cache) == 0

    def test_unbounded_put_leaves_entry_unstamped(self):
        # The PR 5 contract: without a TTL, get returns the entry as
        # stored (callers compare dataclasses by value).
        cache = TuningCache()
        entry = _entry()
        cache.put("a", 8, "m", entry)
        assert cache.get("a", 8, "m") == entry
        assert cache.get("a", 8, "m").created_unix is None

    def test_ttl_survives_save_load(self, tmp_path):
        now = {"t": 500.0}

        def clock():
            return now["t"]

        cache = TuningCache(ttl_s=60.0, clock=clock)
        cache.put("a", 8, "m", _entry())
        path = tmp_path / "tune.json"
        cache.save(path)
        # Ages persist: a reload 100s later reads the entry as expired.
        now["t"] = 600.0
        fresh = TuningCache.load(path, ttl_s=60.0, clock=clock)
        assert fresh.get("a", 8, "m") is None
        stale_free = TuningCache.load(path)  # unbounded load: still there
        assert stale_free.get("a", 8, "m") is not None


class TestWarmConfigCache:
    """The serve admission policy over the bounded cache, including the
    cross-dtype collision contract from the dtype-aware tuner tests."""

    def _warm(self, **kw):
        from repro.serve import WarmConfigCache

        return WarmConfigCache(**kw)

    def test_counts_hits_and_misses(self):
        warm = self._warm(max_entries=4)
        assert warm.get("a", 8, "m") is None
        warm.put("a", 8, "m", _entry())
        assert warm.get("a", 8, "m") is not None
        stats = warm.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_admit_after_gates_one_off_signatures(self):
        warm = self._warm(max_entries=4, admit_after=3)
        warm.put("scan", 8, "m", _entry())
        warm.put("scan", 8, "m", _entry())
        # Two sightings < admit_after: both denied, nothing cached.
        assert warm.get("scan", 8, "m") is None
        assert warm.stats()["denied"] == 2
        warm.put("scan", 8, "m", _entry())  # third sighting sticks
        assert warm.get("scan", 8, "m") is not None

    def test_admit_after_validation(self):
        with pytest.raises(ValueError):
            self._warm(admit_after=0)

    def test_ttl_eviction_vs_cross_dtype_collisions(self, setup):
        """TTL expiry of one dtype's entry must not disturb the other
        dtype's: the signature keys differ by the ``_b<itemsize>``
        suffix, so the two entries age and evict independently."""
        tensor, _ = setup
        t32 = TestDtypeAwareCache._as32(tensor)
        sig64 = TensorSignature.of(tensor, 0).key()
        sig32 = TensorSignature.of(t32, 0).key()
        assert sig64 != sig32
        now = {"t": 0.0}

        def clock():
            return now["t"]

        warm = self._warm(max_entries=8, ttl_s=10.0, clock=clock)
        warm.put(sig64, 8, "m", _entry(itemsize=8))
        now["t"] = 6.0
        warm.put(sig32, 8, "m", _entry(itemsize=4))
        assert warm.stats()["entries"] == 2
        # f64 entry ages out first; the f32 twin must survive.
        now["t"] = 11.0
        assert warm.get(sig64, 8, "m") is None
        hit32 = warm.get(sig32, 8, "m")
        assert hit32 is not None and hit32.itemsize == 4
        assert warm.stats()["expired"] == 1

    def test_lru_eviction_keeps_hot_dtype_entry(self):
        warm = self._warm(max_entries=2)
        warm.put("sig_b8", 8, "m", _entry(itemsize=8))
        warm.put("sig_b4", 8, "m", _entry(itemsize=4))
        # Keep the f32 entry hot; a third signature evicts the f64 one.
        assert warm.get("sig_b4", 8, "m") is not None
        warm.put("other_b8", 8, "m", _entry(itemsize=8))
        assert warm.get("sig_b4", 8, "m") is not None
        assert warm.get("sig_b8", 8, "m") is None
        assert warm.stats()["evicted"] == 1

    def test_tuner_integration_under_admission_gate(self, setup):
        """With admit_after=2, the first tuned config is denied; the
        signature re-tunes once more, then hits thereafter — and the
        float32 twin still never shares the float64 entry."""
        tensor, machine = setup
        t32 = TestDtypeAwareCache._as32(tensor)
        warm = self._warm(max_entries=8, admit_after=2)
        first = Tuner(tensor, 0, machine, cache=warm).get_or_tune(128)
        assert not first.from_cache
        assert warm.stats()["entries"] == 0  # denied: one sighting
        second = Tuner(tensor, 0, machine, cache=warm).get_or_tune(128)
        assert not second.from_cache  # re-tuned, now admitted
        third = Tuner(tensor, 0, machine, cache=warm).get_or_tune(128)
        assert third.from_cache
        # The admitted f64 entry is invisible to the f32 run.
        other = Tuner(t32, 0, machine, cache=warm).get_or_tune(128)
        assert not other.from_cache
