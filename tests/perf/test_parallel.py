"""Tests for the intra-socket parallel execution model."""

import pytest

from repro.machine import power8
from repro.perf import (
    parallel_predict_time,
    partition_rows,
    per_thread_machine,
    thread_scaling,
)
from repro.tensor import power_law_tensor, uniform_random_tensor


@pytest.fixture(scope="module")
def tensor():
    return uniform_random_tensor((200, 150, 120), 30_000, seed=81)


CORE = power8(1).scaled(1.0 / 64.0)


class TestPerThreadMachine:
    def test_one_thread_unchanged(self):
        assert per_thread_machine(CORE, 1, socket_read_bandwidth=75e9) is CORE

    def test_bandwidth_capped_at_scale(self):
        m = per_thread_machine(CORE, 10, socket_read_bandwidth=75e9)
        assert m.read_bandwidth == pytest.approx(7.5e9)
        assert m.flops_per_cycle == CORE.flops_per_cycle  # private resource

    def test_core_cap_binds_at_low_counts(self):
        m = per_thread_machine(CORE, 2, socket_read_bandwidth=75e9)
        assert m.read_bandwidth == CORE.read_bandwidth


class TestPartition:
    def test_boundaries_cover(self, tensor):
        b = partition_rows(tensor, 0, 8)
        assert b[0] == 0 and b[-1] == tensor.shape[0]
        assert len(b) == 9

    def test_balanced_on_uniform(self, tensor):
        import numpy as np

        b = partition_rows(tensor, 0, 4)
        counts = tensor.slice_nnz(0)
        loads = [counts[b[t] : b[t + 1]].sum() for t in range(4)]
        assert max(loads) / (sum(loads) / 4) < 1.2


class TestParallelTime:
    def test_nnz_conserved(self, tensor):
        est = parallel_predict_time(tensor, 0, 64, CORE, 4)
        assert sum(est.thread_nnz) == tensor.nnz
        assert len(est.thread_times) == 4

    def test_threads_speed_things_up(self, tensor):
        one = parallel_predict_time(tensor, 0, 64, CORE, 1)
        four = parallel_predict_time(tensor, 0, 64, CORE, 4)
        assert four.makespan < one.makespan

    def test_bandwidth_saturation_bends_scaling(self, tensor):
        """Beyond the socket saturation point, extra threads gain less
        than linearly."""
        rows = thread_scaling(tensor, 0, 64, CORE, thread_counts=(1, 2, 4, 16))
        s = {r["threads"]: r["speedup"] for r in rows}
        assert s[2] > 1.5  # near-linear early
        assert s[16] < 16 * 0.8  # saturated late
        assert s[16] >= s[4] * 0.9  # but not worse

    def test_imbalance_on_skewed_data(self):
        skewed = power_law_tensor((64, 100, 100), 20_000, alphas=(2.5, 0.3, 0.3), seed=82)
        est = parallel_predict_time(skewed, 0, 64, CORE, 8)
        assert est.imbalance > 1.05

    def test_thread_count_capped_by_extent(self):
        t = uniform_random_tensor((3, 40, 40), 500, seed=83)
        est = parallel_predict_time(t, 0, 16, CORE, 16)
        assert len(est.thread_times) == 3

    def test_blocked_config_supported(self, tensor):
        est = parallel_predict_time(
            tensor, 0, 128, CORE, 4, block_counts=(1, 4, 2)
        )
        assert est.makespan > 0
