"""Tests for the pressure-point analysis harness (Table I)."""

import pytest

from repro.kernels import get_kernel
from repro.machine import power8
from repro.perf import PRESSURE_POINTS, run_ppa
from repro.tensor import load_dataset


@pytest.fixture(scope="module")
def table1_setup():
    """The paper's Table I subject: Poisson3 at rank 128 on one core."""
    from repro.tensor.datasets import DATASETS

    tensor = load_dataset("poisson3", nnz=600_000)
    machine = power8(1).scaled(DATASETS["poisson3"].machine_scale)
    plan = get_kernel("splatt").prepare(tensor, 0)
    return run_ppa(plan, 128, machine)


class TestTable1Shape:
    def test_six_rows(self, table1_setup):
        assert [r.type_id for r in table1_setup] == [1, 2, 3, 4, 5, 6]
        assert all(r.description == PRESSURE_POINTS[r.type_id] for r in table1_setup)

    def test_savings_ordering(self, table1_setup):
        """The paper's key result: removing B saves the most, then B->L1,
        then accumulator loads, then C; flop motion is negligible."""
        by_type = {r.type_id: r for r in table1_setup}
        assert by_type[1].saving > by_type[2].saving
        assert by_type[2].saving > by_type[3].saving
        assert by_type[3].saving > by_type[4].saving
        assert by_type[4].saving > abs(by_type[5].saving)

    def test_b_removal_is_large(self, table1_setup):
        """Type 1 removed 37% in the paper; the model should place it in
        the same regime (dominant, 25-60%)."""
        by_type = {r.type_id: r for r in table1_setup}
        assert 0.25 < by_type[1].saving < 0.60

    def test_flop_motion_negligible(self, table1_setup):
        """Type 5 changed the paper's runtime by 1.5%; ours must stay
        within a few percent (computation is not the bottleneck)."""
        by_type = {r.type_id: r for r in table1_setup}
        assert abs(by_type[5].saving) < 0.10

    def test_baseline_row_unchanged(self, table1_setup):
        by_type = {r.type_id: r for r in table1_setup}
        assert by_type[6].saving == 0.0
        assert by_type[6].time == by_type[6].baseline_time

    def test_all_ablations_bounded_by_baseline(self, table1_setup):
        for r in table1_setup:
            if r.type_id in (1, 2, 3, 4):
                assert 0 < r.time <= r.baseline_time


class TestPPAOnBlockedPlans:
    def test_regblocked_kernel_immune_to_type3(self):
        """After register blocking the accumulator loads are gone, so the
        type-3 pressure point finds nothing to remove."""
        tensor = load_dataset("poisson3", nnz=200_000)
        machine = power8(1).scaled(1.0 / 64.0)
        plan = get_kernel("rankb").prepare(tensor, 0, n_rank_blocks=2)
        results = {r.type_id: r for r in run_ppa(plan, 128, machine)}
        assert results[3].saving == pytest.approx(0.0, abs=1e-12)
