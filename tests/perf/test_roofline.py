"""Tests for the roofline analysis (Figure 2 / Equations 1-3)."""

import pytest

from repro.machine import power8_socket
from repro.perf import (
    FIG2_ALPHAS,
    FIG2_RANKS,
    arithmetic_intensity,
    attainable_gflops,
    figure2_grid,
    is_memory_bound,
)
from repro.util.errors import ReproError


class TestEquation3:
    def test_alpha_zero_limit(self):
        """I = R/(8+4R) at alpha = 0."""
        for r in (16, 128, 2048):
            assert arithmetic_intensity(r, 0.0) == pytest.approx(r / (8 + 4 * r))

    def test_alpha_one_limit(self):
        """I = R/8 at alpha = 1."""
        for r in (16, 128, 2048):
            assert arithmetic_intensity(r, 1.0) == pytest.approx(r / 8)

    def test_paper_quoted_values(self):
        """'Even for a very high cache hit rate of 95%, the arithmetic
        intensity ranges from 1.43 at rank 16 to at most 4.90 at 2048.'"""
        assert arithmetic_intensity(16, 0.95) == pytest.approx(1.43, abs=0.005)
        assert arithmetic_intensity(2048, 0.95) == pytest.approx(4.90, abs=0.005)

    def test_monotone_in_rank_and_alpha(self):
        ranks = [16, 64, 256, 1024]
        for a in (0.5, 0.9):
            vals = [arithmetic_intensity(r, a) for r in ranks]
            assert vals == sorted(vals)
        for r in ranks:
            vals = [arithmetic_intensity(r, a) for a in (0.0, 0.5, 0.9, 1.0)]
            assert vals == sorted(vals)

    def test_validation(self):
        with pytest.raises(ReproError):
            arithmetic_intensity(16, 1.5)
        with pytest.raises(ReproError):
            arithmetic_intensity(0, 0.5)


class TestFigure2Grid:
    def test_axes(self):
        grid = figure2_grid()
        assert set(grid) == set(FIG2_ALPHAS)
        assert all(len(v) == len(FIG2_RANKS) for v in grid.values())

    def test_series_ordering(self):
        """Higher alpha series sit strictly above lower ones."""
        grid = figure2_grid()
        for i in range(len(FIG2_RANKS)):
            assert grid[0.95][i] > grid[0.6][i] > grid[0.0][i]


class TestMemoryBoundVerdict:
    def test_paper_conclusion(self):
        """SPLATT MTTKRP is memory bound 'unless all the factor matrices
        fit in cache and the rank is large enough (> 64)'."""
        m = power8_socket()
        # Realistic alpha, any rank: memory bound.
        for r in (16, 128, 2048):
            assert is_memory_bound(m, r, 0.9)
        # Perfect cache residency and big rank: compute bound.
        assert not is_memory_bound(m, 2048, 1.0)
        # Perfect cache but small rank: still memory bound (I = R/8 < balance).
        assert is_memory_bound(m, 16, 1.0)

    def test_attainable_caps_at_peak(self):
        m = power8_socket()
        assert attainable_gflops(m, 1e9) == pytest.approx(m.peak_flops / 1e9)
        low = attainable_gflops(m, 0.5)
        assert low == pytest.approx(0.5 * m.read_bandwidth / 1e9)
