"""Tests for the execution-time model and its heuristic evaluator."""

import pytest

from repro.blocking import RankBlocking, select_blocking
from repro.kernels import get_kernel
from repro.machine import power8, power8_socket
from repro.perf import (
    model_evaluator,
    predict_time,
    predict_time_for_config,
    prepare_plan,
)
from repro.perf.model import mttkrp_flops
from repro.tensor import poisson_tensor


@pytest.fixture(scope="module")
def tensor():
    return poisson_tensor((150, 400, 200), 60_000, seed=77, concentration=0.2)


@pytest.fixture(scope="module")
def machine():
    return power8_socket().scaled(1.0 / 64.0)


class TestTimeBreakdown:
    def test_total_is_additive(self, tensor, machine):
        plan = get_kernel("splatt").prepare(tensor, 0)
        tb = predict_time(plan, 64, machine)
        assert tb.total == pytest.approx(sum(tb.components().values()))
        assert all(v >= 0 for v in tb.components().values())

    def test_components_named(self, tensor, machine):
        plan = get_kernel("splatt").prepare(tensor, 0)
        comps = predict_time(plan, 64, machine).components()
        assert set(comps) == {
            "stream",
            "B",
            "C",
            "A_read",
            "A_write",
            "load_units",
            "flops",
        }

    def test_time_grows_with_rank(self, tensor, machine):
        plan = get_kernel("splatt").prepare(tensor, 0)
        times = [predict_time(plan, r, machine).total for r in (16, 64, 256)]
        assert times == sorted(times)

    def test_memory_bound_regime(self, tensor, machine):
        """At realistic sizes the memory + load terms dominate flops —
        the paper's Section IV conclusion."""
        plan = get_kernel("splatt").prepare(tensor, 0)
        tb = predict_time(plan, 128, machine)
        assert tb.flop_time < 0.5 * (tb.memory_time + tb.load_time)

    def test_flops_equation2(self, tensor):
        plan = get_kernel("splatt").prepare(tensor, 0)
        s = plan.splatt
        assert mttkrp_flops(plan, 32) == pytest.approx(2 * 32 * (s.nnz + s.n_fibers))

    def test_blocked_plan_charges_split_fibers(self, tensor):
        base = get_kernel("splatt").prepare(tensor, 0)
        blocked = get_kernel("mb").prepare(tensor, 0, block_counts=(1, 8, 1))
        assert mttkrp_flops(blocked, 32) >= mttkrp_flops(base, 32)


class TestBlockingEffects:
    def test_register_blocking_cuts_load_time(self, tensor, machine):
        base = predict_time_for_config(tensor, 0, 128, machine)
        rb = predict_time_for_config(
            tensor, 0, 128, machine, None, RankBlocking(n_blocks=1)
        )
        assert rb.load_time < base.load_time

    def test_non_restacked_strips_pay_gather_penalty(self, tensor, machine):
        fast = predict_time_for_config(
            tensor, 0, 128, machine, None, RankBlocking(n_blocks=4, restack=True)
        )
        slow = predict_time_for_config(
            tensor, 0, 128, machine, None, RankBlocking(n_blocks=4, restack=False)
        )
        assert slow.total > fast.total

    def test_many_strips_raise_stream_time(self, tensor, machine):
        few = predict_time_for_config(
            tensor, 0, 512, machine, None, RankBlocking(n_blocks=2)
        )
        many = predict_time_for_config(
            tensor, 0, 512, machine, None, RankBlocking(n_blocks=32)
        )
        assert many.stream_time > few.stream_time

    def test_mb_blocking_reduces_b_time_when_thrashing(self, tensor, machine):
        base = predict_time_for_config(tensor, 0, 512, machine)
        blocked = predict_time_for_config(tensor, 0, 512, machine, (1, 8, 1))
        assert blocked.b_time < base.b_time


class TestPreparePlan:
    def test_dispatch(self, tensor):
        assert prepare_plan(tensor, 0).kernel_name == "splatt"
        assert prepare_plan(tensor, 0, (2, 2, 2)).kernel_name == "mb"
        assert (
            prepare_plan(tensor, 0, None, RankBlocking(n_blocks=2)).kernel_name
            == "rankb"
        )
        assert (
            prepare_plan(tensor, 0, (2, 2, 2), RankBlocking(n_blocks=2)).kernel_name
            == "mb+rankb"
        )


class TestModelEvaluator:
    def test_heuristic_integration(self, tensor, machine):
        """The Section V-C search driven by the model must find a config
        at least as good as the baseline."""
        evaluate = model_evaluator(tensor, 0, 256, machine)
        choice = select_blocking(tensor, 0, 256, evaluate)
        assert choice.cost <= evaluate(None, None)

    def test_evaluator_caching(self, tensor, machine):
        evaluate = model_evaluator(tensor, 0, 64, machine)
        a = evaluate(None, None)
        b = evaluate(None, None)
        assert a == b

    def test_evaluator_matches_predict(self, tensor, machine):
        evaluate = model_evaluator(tensor, 0, 64, machine)
        assert evaluate((2, 2, 2), None) == pytest.approx(
            predict_time_for_config(tensor, 0, 64, machine, (2, 2, 2)).total
        )
