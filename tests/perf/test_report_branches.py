"""Branch coverage for the report generator's suggestion logic."""

import pytest

from repro.blocking import RankBlocking
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.perf import performance_report
from repro.tensor import uniform_random_tensor


class TestSuggestionBranches:
    def test_stream_dominated_suggests_wider_strips(self):
        """Many narrow strips on a low-reuse tensor make re-streaming the
        dominant cost; the report must point at the strip count."""
        tensor = uniform_random_tensor((50, 60, 55), 60_000, seed=1)
        machine = power8_socket()  # huge caches: factor misses ~ 0
        plan = get_kernel("rankb").prepare(
            tensor, 0, rank_blocking=RankBlocking(block_cols=16)
        )
        report = performance_report(plan, 512, machine)
        joined = " ".join(report.suggestions)
        if report.breakdown.stream_time / report.breakdown.total > 0.4:
            assert "fewer/wider rank strips" in joined

    def test_load_dominated_suggests_register_blocking(self):
        tensor = uniform_random_tensor((50, 60, 55), 30_000, seed=2)
        machine = power8_socket()  # everything cached -> loads dominate
        plan = get_kernel("splatt").prepare(tensor, 0)
        report = performance_report(plan, 128, machine)
        assert report.breakdown.load_time / report.breakdown.total > 0.3
        assert any("register blocking" in s for s in report.suggestions)

    def test_no_bottleneck_fallback(self):
        tensor = uniform_random_tensor((30, 30, 30), 2000, seed=3)
        machine = power8_socket()
        plan = get_kernel("rankb").prepare(
            tensor, 0, rank_blocking=RankBlocking(n_blocks=1)
        )
        report = performance_report(plan, 16, machine)
        assert len(report.suggestions) >= 1


class TestCSFAnyStats:
    def test_block_stats_well_formed(self):
        from repro.machine import estimate_traffic

        tensor = uniform_random_tensor((20, 30, 25), 2000, seed=4)
        plan = get_kernel("csf-any").prepare(tensor, 1)
        stats = plan.block_stats()
        assert len(stats) == 1
        assert stats[0].nnz == tensor.nnz
        # And the machine model consumes the plan.
        est = estimate_traffic(plan, 32, power8_socket())
        assert est.read_bytes > 0
