"""Tests for the performance-report generator."""

import pytest

from repro.blocking import RankBlocking
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.perf import performance_report
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS


@pytest.fixture(scope="module")
def setup():
    tensor = load_dataset("poisson3", nnz=400_000)
    machine = power8_socket().scaled(DATASETS["poisson3"].machine_scale)
    return tensor, machine


class TestReport:
    def test_baseline_diagnosis(self, setup):
        """An unblocked plan at high rank must be diagnosed memory-bound
        with blocking suggestions."""
        tensor, machine = setup
        plan = get_kernel("splatt").prepare(tensor, 0)
        report = performance_report(plan, 512, machine)
        assert report.plan_name == "splatt"
        joined = " ".join(report.suggestions)
        assert "blocking" in joined

    def test_optimized_plan_fewer_complaints(self, setup):
        tensor, machine = setup
        base = get_kernel("splatt").prepare(tensor, 0)
        tuned = get_kernel("mb+rankb").prepare(
            tensor, 0, block_counts=(1, 4, 2),
            rank_blocking=RankBlocking(block_cols=64),
        )
        base_report = performance_report(base, 512, machine)
        tuned_report = performance_report(tuned, 512, machine)
        assert tuned_report.breakdown.total < base_report.breakdown.total
        joined = " ".join(tuned_report.suggestions)
        assert "register blocking" not in joined  # already applied

    def test_render_structure(self, setup):
        tensor, machine = setup
        plan = get_kernel("splatt").prepare(tensor, 0)
        text = performance_report(plan, 128, machine).render()
        assert "predicted time" in text
        assert "component" in text
        assert "suggestions:" in text

    def test_shares_sum_to_one(self, setup):
        tensor, machine = setup
        plan = get_kernel("splatt").prepare(tensor, 0)
        report = performance_report(plan, 128, machine)
        comps = report.breakdown.components()
        assert sum(comps.values()) == pytest.approx(report.breakdown.total)
