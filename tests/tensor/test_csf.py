"""Tests for the general N-mode CSF format."""

import numpy as np
import pytest

from repro.tensor import COOTensor, CSFTensor, SplattTensor, uniform_random_tensor
from repro.util import FormatError, ShapeError


class TestRoundTrip:
    @pytest.mark.parametrize(
        "shape,nnz",
        [((6, 7), 20), ((5, 6, 7), 80), ((4, 5, 6, 7), 150), ((3, 4, 5, 6, 7), 200)],
    )
    def test_orders_2_to_5(self, shape, nnz):
        t = uniform_random_tensor(shape, nnz, seed=11)
        c = CSFTensor.from_coo(t)
        assert c.to_coo().equal(t)

    def test_arbitrary_mode_order(self):
        t = uniform_random_tensor((5, 6, 7, 8), 120, seed=12)
        c = CSFTensor.from_coo(t, mode_order=(3, 1, 0, 2))
        assert c.root_mode == 3
        assert c.to_coo().equal(t)

    def test_empty(self):
        t = COOTensor((3, 4, 5), np.empty((0, 3)), np.empty(0))
        c = CSFTensor.from_coo(t)
        assert c.nnz == 0
        assert c.to_coo().equal(t)


class TestSplattEquivalence:
    """A 3-mode CSF with SPLATT's mode ordering has SPLATT's arrays."""

    def test_arrays_match(self):
        t = uniform_random_tensor((8, 10, 12), 200, seed=13)
        s = SplattTensor.from_coo(t, output_mode=0)  # inner=1, fiber=2
        c = CSFTensor.from_coo(t, mode_order=(0, 2, 1))
        # Level-1 nodes are the fibers.
        assert c.levels[1].n_nodes == s.n_fibers
        np.testing.assert_array_equal(c.levels[1].fids, s.fiber_kidx)
        np.testing.assert_array_equal(c.levels[1].fptr, s.fiber_ptr)
        np.testing.assert_array_equal(c.leaf_fids, s.jidx)
        np.testing.assert_array_equal(c.vals, s.vals)

    def test_node_counts_monotone(self):
        t = uniform_random_tensor((8, 10, 12), 300, seed=14)
        c = CSFTensor.from_coo(t)
        counts = c.nodes_per_level()
        assert all(a <= b for a, b in zip(counts, counts[1:]))


class TestStructure:
    def test_leaf_spans_sum_to_nnz(self):
        t = uniform_random_tensor((6, 7, 8, 9), 250, seed=15)
        c = CSFTensor.from_coo(t)
        for span in c.leaf_spans():
            assert span.sum() == c.nnz

    def test_root_fids_unique(self):
        t = uniform_random_tensor((6, 7, 8), 100, seed=16)
        c = CSFTensor.from_coo(t)
        fids = c.levels[0].fids
        assert np.unique(fids).size == fids.size

    def test_memory_bytes_positive(self):
        t = uniform_random_tensor((6, 7, 8), 100, seed=17)
        c = CSFTensor.from_coo(t)
        assert 0 < c.memory_bytes() <= t.memory_bytes() + 8 * (
            c.nodes_per_level()[0] + 1
        ) * 4


class TestValidation:
    def test_bad_mode_order(self):
        t = uniform_random_tensor((4, 5, 6), 30, seed=18)
        with pytest.raises(ShapeError):
            CSFTensor.from_coo(t, mode_order=(0, 0, 1))

    def test_invariant_violation_detected(self):
        t = uniform_random_tensor((4, 5, 6), 60, seed=19)
        c = CSFTensor.from_coo(t)
        c.levels[0].fptr[-1] += 1
        with pytest.raises(FormatError):
            c.check_invariants()

    def test_leaf_bounds_checked(self):
        t = uniform_random_tensor((4, 5, 6), 60, seed=20)
        c = CSFTensor.from_coo(t)
        c.leaf_fids[0] = 1000
        with pytest.raises(FormatError):
            c.check_invariants()
