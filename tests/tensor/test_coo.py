"""Tests for the COO tensor format."""

import numpy as np
import pytest

from repro.tensor import COOTensor, uniform_random_tensor
from repro.util import ShapeError


def make_simple():
    """The Figure 1a example tensor (0-based)."""
    idx = np.array(
        [
            [0, 0, 0],
            [0, 1, 1],
            [0, 1, 2],
            [1, 0, 2],
            [1, 1, 1],
            [1, 2, 2],
            [2, 0, 0],
        ]
    )
    vals = np.array([5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0])
    return COOTensor((3, 3, 3), idx, vals)


class TestConstruction:
    def test_basic(self):
        t = make_simple()
        assert t.order == 3
        assert t.nnz == 7
        assert t.shape == (3, 3, 3)

    def test_density(self):
        t = make_simple()
        assert t.density == pytest.approx(7 / 27)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2, 2), np.array([[0, 0, 2]]), np.array([1.0]))

    def test_negative_index_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2, 2), np.array([[0, -1, 0]]), np.array([1.0]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2), np.array([[0, 0], [1, 1]]), np.array([1.0]))

    def test_wrong_mode_count_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2, 2), np.array([[0, 0]]), np.array([1.0]))

    def test_memory_bytes_paper_formula(self):
        # 32 * nnz for a 3-mode tensor (Section III-C).
        t = make_simple()
        assert t.memory_bytes() == 32 * t.nnz

    def test_from_arrays(self):
        t = COOTensor.from_arrays(
            (3, 3, 3), [np.array([0, 1]), np.array([1, 2]), np.array([2, 0])],
            np.array([1.0, 2.0]),
        )
        assert t.nnz == 2
        np.testing.assert_array_equal(t.indices[1], [1, 2, 0])


class TestTransformations:
    def test_permute_modes(self):
        t = make_simple()
        p = t.permute_modes((2, 0, 1))
        assert p.shape == (3, 3, 3)
        # nonzero (0,1,2) becomes (2,0,1)
        assert p.equal(
            COOTensor(
                (3, 3, 3),
                t.indices[:, [2, 0, 1]],
                t.values,
            )
        )

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ShapeError):
            make_simple().permute_modes((0, 0, 1))

    def test_sort_lexicographic(self):
        t = uniform_random_tensor((5, 6, 7), 100, seed=1)
        s = t.sort((1, 0, 2))
        key = s.indices[:, 1] * 1000 + s.indices[:, 0] * 10 + s.indices[:, 2]
        assert np.all(np.diff(key) >= 0)

    def test_deduplicate_sums(self):
        idx = np.array([[0, 0, 0], [0, 0, 0], [1, 1, 1]])
        t = COOTensor((2, 2, 2), idx, np.array([1.0, 2.0, 4.0]))
        d = t.deduplicate()
        assert d.nnz == 2
        assert d.values.sum() == pytest.approx(7.0)
        assert d.to_dense()[0, 0, 0] == pytest.approx(3.0)

    def test_deduplicate_empty(self):
        t = COOTensor((2, 2), np.empty((0, 2)), np.empty(0))
        assert t.deduplicate().nnz == 0

    def test_filter_mask(self):
        t = make_simple()
        f = t.filter(t.values > 4.0)
        assert f.nnz == 4  # values 5, 9, 7, 9
        assert np.all(f.values > 4.0)

    def test_copy_is_independent(self):
        t = make_simple()
        c = t.copy()
        c.values[0] = 99.0
        assert t.values[0] == 5.0


class TestAnalysis:
    def test_slice_nnz(self):
        t = make_simple()
        np.testing.assert_array_equal(t.slice_nnz(0), [3, 3, 1])
        assert t.slice_nnz(0).sum() == t.nnz

    def test_distinct_per_mode(self):
        t = make_simple()
        assert t.distinct_per_mode() == (3, 3, 3)

    def test_fiber_count_matches_figure(self):
        # Figure 1b shows 6 fibers for the example tensor.
        t = make_simple()
        assert t.fiber_count(slice_mode=0, fiber_mode=2) == 6

    def test_fiber_count_same_mode_rejected(self):
        with pytest.raises(ShapeError):
            make_simple().fiber_count(1, 1)


class TestExtractAndCompact:
    def test_extract_rebases_coordinates(self):
        t = make_simple()
        sub = t.extract([(1, 3), (0, 3), (0, 3)])
        assert sub.shape == (2, 3, 3)
        assert sub.nnz == 4  # rows 1 and 2
        np.testing.assert_array_equal(
            sub.to_dense(), t.to_dense()[1:3, :, :]
        )

    def test_extract_empty_region(self):
        t = make_simple()
        sub = t.extract([(0, 3), (0, 3), (1, 2)])
        assert sub.shape == (3, 3, 1)
        assert sub.values.sum() == pytest.approx(12.0)  # values 3 and 9

    def test_extract_validates_bounds(self):
        t = make_simple()
        with pytest.raises(ShapeError):
            t.extract([(0, 4), (0, 3), (0, 3)])
        with pytest.raises(ShapeError):
            t.extract([(2, 2), (0, 3), (0, 3)])
        with pytest.raises(ShapeError):
            t.extract([(0, 3), (0, 3)])

    def test_compact_removes_empty_slices(self):
        idx = np.array([[0, 5, 9], [0, 5, 2], [7, 5, 9]])
        t = COOTensor((100, 100, 100), idx, np.array([1.0, 2.0, 3.0]))
        compacted, mappings = t.compact()
        assert compacted.shape == (2, 1, 2)
        assert compacted.nnz == 3
        # Round-trip through the mappings recovers the original coords.
        restored = np.stack(
            [mappings[m][compacted.indices[:, m]] for m in range(3)], axis=1
        )
        assert t.equal(COOTensor(t.shape, restored, compacted.values))

    def test_compact_empty_tensor(self):
        t = COOTensor((5, 5), np.empty((0, 2)), np.empty(0))
        compacted, mappings = t.compact()
        assert compacted.nnz == 0
        assert all(m.size == 0 for m in mappings)


class TestDenseConversion:
    def test_roundtrip(self):
        t = uniform_random_tensor((4, 5, 6), 50, seed=2)
        back = COOTensor.from_dense(t.to_dense())
        assert back.equal(t)

    def test_to_dense_values(self):
        t = make_simple()
        d = t.to_dense()
        assert d[0, 0, 0] == 5.0
        assert d[2, 0, 0] == 9.0
        assert d.sum() == pytest.approx(t.values.sum())

    def test_to_dense_guard(self):
        huge = COOTensor(
            (10**4, 10**4, 10**4), np.array([[0, 0, 0]]), np.array([1.0])
        )
        with pytest.raises(ShapeError, match="refusing"):
            huge.to_dense()


class TestEquality:
    def test_equal_ignores_order(self):
        t = make_simple()
        shuffled = COOTensor(t.shape, t.indices[::-1].copy(), t.values[::-1].copy())
        assert t.equal(shuffled)

    def test_unequal_values(self):
        t = make_simple()
        other = t.copy()
        other.values[0] += 1.0
        assert not t.equal(other)

    def test_unequal_shape(self):
        t = make_simple()
        other = COOTensor((4, 3, 3), t.indices, t.values)
        assert not t.equal(other)
