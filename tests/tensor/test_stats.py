"""Tests for tensor structure analysis."""

import numpy as np
import pytest

from repro.tensor import (
    COOTensor,
    analyze,
    power_law_tensor,
    uniform_random_tensor,
)


class TestAnalyze:
    def test_basic_fields(self):
        t = uniform_random_tensor((20, 30, 25), 800, seed=61)
        stats = analyze(t)
        assert stats.shape == t.shape
        assert stats.nnz == t.nnz
        assert stats.coo_bytes == t.memory_bytes()
        assert stats.splatt_bytes is not None
        assert stats.splatt_bytes < stats.coo_bytes
        assert len(stats.modes) == 3

    def test_mode_stats_consistent(self):
        t = uniform_random_tensor((20, 30, 25), 800, seed=62)
        stats = analyze(t)
        for m in stats.modes:
            assert m.distinct <= m.extent
            assert m.reuse == pytest.approx(t.nnz / m.distinct)
            assert 0.0 < m.top_decile_share <= 1.0

    def test_skew_detected(self):
        flat = uniform_random_tensor((500, 50, 50), 10_000, seed=63)
        hot = power_law_tensor((500, 50, 50), 10_000, alphas=(1.6, 0.3, 0.3), seed=63)
        assert (
            analyze(hot).modes[0].top_decile_share
            > analyze(flat).modes[0].top_decile_share
        )
        assert analyze(hot).modes[0].imbalance > analyze(flat).modes[0].imbalance

    def test_uniform_low_imbalance(self):
        dense = COOTensor.from_dense(np.ones((10, 10, 10)))
        stats = analyze(dense)
        for m in stats.modes:
            assert m.imbalance == pytest.approx(0.0)
            assert m.top_decile_share == pytest.approx(0.1)

    def test_higher_order_no_splatt(self):
        t = uniform_random_tensor((8, 9, 10, 11), 300, seed=64)
        stats = analyze(t)
        assert stats.splatt_bytes is None
        assert len(stats.modes) == 4

    def test_render_contains_key_facts(self):
        t = uniform_random_tensor((20, 30, 25), 500, seed=65)
        text = analyze(t).render()
        assert "20x30x25" in text
        assert "SPLATT" in text
        assert "reuse" in text
