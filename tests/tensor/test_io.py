"""Tests for .tns / .npz tensor IO."""

import io

import numpy as np
import pytest

from repro.tensor import (
    COOTensor,
    load_npz,
    load_tns,
    save_npz,
    save_tns,
    uniform_random_tensor,
)
from repro.util import FormatError


class TestTns:
    def test_roundtrip(self, tmp_path):
        t = uniform_random_tensor((9, 11, 13), 150, seed=21)
        path = tmp_path / "t.tns"
        save_tns(t, path)
        assert load_tns(path).equal(t)

    def test_shape_header_written(self, tmp_path):
        t = uniform_random_tensor((9, 11, 13), 50, seed=22)
        path = tmp_path / "t.tns"
        save_tns(t, path)
        assert "# shape: 9 11 13" in path.read_text().splitlines()[0]

    def test_explicit_shape_wins(self):
        src = io.StringIO("1 1 1 5.0\n2 2 2 3.0\n")
        t = load_tns(src, shape=(10, 10, 10))
        assert t.shape == (10, 10, 10)

    def test_shape_inferred_from_coords(self):
        src = io.StringIO("1 1 1 5.0\n3 2 4 1.0\n")
        t = load_tns(src)
        assert t.shape == (3, 2, 4)

    def test_one_based_conversion(self):
        src = io.StringIO("1 1 1 5.0\n")
        t = load_tns(src)
        np.testing.assert_array_equal(t.indices[0], [0, 0, 0])

    def test_zero_coordinate_rejected(self):
        src = io.StringIO("0 1 1 5.0\n")
        with pytest.raises(FormatError, match="1-based"):
            load_tns(src)

    def test_ragged_lines_rejected(self):
        src = io.StringIO("1 1 1 5.0\n1 1 2.0\n")
        with pytest.raises(FormatError, match="inconsistent"):
            load_tns(src)

    def test_empty_needs_shape(self):
        with pytest.raises(FormatError):
            load_tns(io.StringIO(""))
        t = load_tns(io.StringIO(""), shape=(2, 3))
        assert t.nnz == 0

    def test_comments_and_blanks_skipped(self):
        src = io.StringIO("# a comment\n\n1 1 1 2.5\n")
        assert load_tns(src).nnz == 1

    def test_gzip_transparent(self, tmp_path):
        import gzip

        t = uniform_random_tensor((6, 7, 8), 40, seed=24)
        plain = tmp_path / "t.tns"
        save_tns(t, plain)
        gz = tmp_path / "t.tns.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert load_tns(gz).equal(t)


class TestNpz:
    def test_roundtrip(self, tmp_path):
        t = uniform_random_tensor((6, 7, 8, 9), 200, seed=23)
        path = tmp_path / "t.npz"
        save_npz(t, path)
        assert load_npz(path).equal(t)

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, shape=np.array([2, 2]))
        with pytest.raises(FormatError, match="missing"):
            load_npz(path)


class TestDtypeRoundTrip:
    """float32 must survive save/load (the PR-4/5 precision contract)."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_tns_preserves_dtype(self, tmp_path, dtype):
        t = uniform_random_tensor((9, 11, 13), 120, seed=31)
        t = COOTensor(t.shape, t.indices, t.values.astype(dtype), validate=False)
        path = tmp_path / "t.tns"
        save_tns(t, path)
        back = load_tns(path)
        assert back.values.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(back.values, t.values)
        np.testing.assert_array_equal(back.indices, t.indices)
        assert back.shape == t.shape

    def test_tns_dtype_header_written(self, tmp_path):
        t = uniform_random_tensor((4, 5, 6), 20, seed=32)
        t = COOTensor(
            t.shape, t.indices, t.values.astype(np.float32), validate=False
        )
        path = tmp_path / "t.tns"
        save_tns(t, path)
        assert "# dtype: float32" in path.read_text().splitlines()[1]

    def test_tns_explicit_dtype_wins(self, tmp_path):
        t = uniform_random_tensor((4, 5, 6), 20, seed=33)
        t = COOTensor(
            t.shape, t.indices, t.values.astype(np.float32), validate=False
        )
        path = tmp_path / "t.tns"
        save_tns(t, path)
        assert load_tns(path, dtype=np.float64).values.dtype == np.float64

    def test_tns_legacy_files_default_to_float64(self):
        # Third-party FROSTT files carry no dtype header.
        src = io.StringIO("1 1 1 5.0\n2 2 2 3.5\n")
        assert load_tns(src).values.dtype == np.float64

    def test_tns_empty_file_honors_dtype(self):
        t = load_tns(io.StringIO(""), shape=(2, 3), dtype=np.float32)
        assert t.nnz == 0
        assert t.values.dtype == np.float32

    def test_tns_bad_dtype_header_rejected(self):
        src = io.StringIO("# dtype: not-a-dtype\n1 1 5.0\n")
        with pytest.raises(FormatError, match="dtype"):
            load_tns(src)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_npz_preserves_dtype(self, tmp_path, dtype):
        t = uniform_random_tensor((6, 7, 8), 60, seed=34)
        t = COOTensor(t.shape, t.indices, t.values.astype(dtype), validate=False)
        path = tmp_path / "t.npz"
        save_npz(t, path)
        back = load_npz(path)
        assert back.values.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(back.values, t.values)

    def test_npz_explicit_dtype_coerces(self, tmp_path):
        t = uniform_random_tensor((6, 7, 8), 60, seed=35)
        path = tmp_path / "t.npz"
        save_npz(t, path)
        assert load_npz(path, dtype=np.float32).values.dtype == np.float32
