"""Property-based tests for the tensor formats (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import COOTensor, CSFTensor, SplattTensor


@st.composite
def coo_tensors(draw, max_order=4, max_extent=12, max_nnz=60):
    """Random small COO tensors (possibly with duplicate coordinates)."""
    order = draw(st.integers(2, max_order))
    shape = tuple(
        draw(st.integers(1, max_extent)) for _ in range(order)
    )
    nnz = draw(st.integers(0, max_nnz))
    idx_cols = [
        draw(
            st.lists(
                st.integers(0, extent - 1), min_size=nnz, max_size=nnz
            )
        )
        for extent in shape
    ]
    indices = np.array(idx_cols, dtype=np.int64).T.reshape(nnz, order)
    values = np.array(
        draw(
            st.lists(
                st.floats(-100, 100, allow_nan=False, width=32),
                min_size=nnz,
                max_size=nnz,
            )
        ),
        dtype=np.float64,
    )
    return COOTensor(shape, indices, values)


@given(coo_tensors())
@settings(max_examples=60, deadline=None)
def test_dedup_preserves_sum_and_canonicalizes(t):
    d = t.deduplicate()
    assert d.nnz <= t.nnz
    np.testing.assert_allclose(d.values.sum(), t.values.sum(), rtol=1e-9, atol=1e-9)
    # Canonical: sorted and duplicate-free.
    if d.nnz > 1:
        keys = [tuple(row) for row in d.indices]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)


@given(coo_tensors())
@settings(max_examples=60, deadline=None)
def test_csf_roundtrip_any_order(t):
    c = CSFTensor.from_coo(t.deduplicate())
    c.check_invariants()
    assert c.to_coo().equal(t.deduplicate())


@given(coo_tensors(max_order=3), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_splatt_roundtrip_any_mode(t, mode):
    if t.order != 3:
        t3_shape = (t.shape + (3, 3))[:3]
        return  # composite gives mixed orders; only 3-mode is valid here
    s = SplattTensor.from_coo(t, output_mode=mode)
    s.check_invariants()
    assert s.to_coo().equal(t)
    # The paper's memory formula is exact.
    assert s.memory_bytes() == 16 + 8 * s.n_rows + 16 * s.n_fibers + 16 * s.nnz


@given(coo_tensors(max_order=3))
@settings(max_examples=40, deadline=None)
def test_permutation_roundtrip(t):
    order = t.order
    perm = tuple(reversed(range(order)))
    inverse = tuple(perm.index(m) for m in range(order))
    assert t.permute_modes(perm).permute_modes(inverse).equal(t)


@given(coo_tensors(max_order=3, max_nnz=40))
@settings(max_examples=40, deadline=None)
def test_slice_nnz_partitions_nonzeros(t):
    for mode in range(t.order):
        counts = t.slice_nnz(mode)
        assert counts.shape[0] == t.shape[mode]
        assert counts.sum() == t.nnz
