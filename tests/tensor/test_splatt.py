"""Tests for the SPLATT fiber-compressed format."""

import numpy as np
import pytest

from repro.tensor import COOTensor, SplattTensor, uniform_random_tensor
from repro.util import FormatError, ShapeError
from repro.util.errors import ReproError


def figure1_tensor():
    """The paper's Figure 1 example (converted to 0-based indices)."""
    idx = np.array(
        [
            [0, 0, 0],
            [0, 1, 1],
            [0, 1, 2],
            [1, 0, 2],
            [1, 1, 1],
            [1, 2, 2],
            [2, 0, 0],
        ]
    )
    vals = np.array([5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0])
    return COOTensor((3, 3, 3), idx, vals)


class TestFigure1:
    """Check the compressed arrays against the structures drawn in Fig 1b."""

    def test_fiber_count(self):
        s = SplattTensor.from_coo(figure1_tensor(), output_mode=0)
        assert s.n_fibers == 6

    def test_pointers(self):
        s = SplattTensor.from_coo(figure1_tensor(), output_mode=0)
        # Rows own 3, 2, 1 fibers; the row-1 fiber at k=2 holds 2 nonzeros.
        np.testing.assert_array_equal(s.row_ptr, [0, 3, 5, 6])
        np.testing.assert_array_equal(s.fiber_ptr, [0, 1, 2, 3, 4, 6, 7])

    def test_fiber_kidx(self):
        s = SplattTensor.from_coo(figure1_tensor(), output_mode=0)
        # Figure 1b's k_index column (0-based): rows sorted by (i, k).
        np.testing.assert_array_equal(s.fiber_kidx, [0, 1, 2, 1, 2, 0])

    def test_values_and_jidx(self):
        s = SplattTensor.from_coo(figure1_tensor(), output_mode=0)
        np.testing.assert_array_equal(s.vals, [5.0, 3.0, 1.0, 9.0, 2.0, 7.0, 9.0])
        np.testing.assert_array_equal(s.jidx, [0, 1, 1, 1, 0, 2, 0])

    def test_memory_formula(self):
        s = SplattTensor.from_coo(figure1_tensor(), output_mode=0)
        expected = 16 + 8 * 3 + 16 * 6 + 16 * 7
        assert s.memory_bytes() == expected


class TestRoundTrip:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_all_output_modes(self, mode):
        t = uniform_random_tensor((10, 12, 14), 300, seed=3)
        s = SplattTensor.from_coo(t, output_mode=mode)
        assert s.to_coo().equal(t)

    @pytest.mark.parametrize("inner", [1, 2])
    def test_inner_mode_choice(self, inner):
        t = uniform_random_tensor((10, 12, 14), 300, seed=3)
        s = SplattTensor.from_coo(t, output_mode=0, inner_mode=inner)
        assert s.inner_mode == inner
        assert s.to_coo().equal(t)

    def test_empty_tensor(self):
        t = COOTensor((4, 5, 6), np.empty((0, 3)), np.empty(0))
        s = SplattTensor.from_coo(t)
        assert s.nnz == 0
        assert s.n_fibers == 0
        assert s.to_coo().equal(t)

    def test_duplicates_preserved(self):
        idx = np.array([[0, 1, 0], [0, 1, 0]])
        t = COOTensor((2, 2, 2), idx, np.array([1.0, 2.0]))
        s = SplattTensor.from_coo(t)
        assert s.nnz == 2
        assert s.n_fibers == 1


class TestProperties:
    def test_fiber_stats(self):
        s = SplattTensor.from_coo(figure1_tensor())
        assert s.nnz_per_fiber().sum() == s.nnz
        assert s.fibers_per_row().sum() == s.n_fibers

    def test_extents(self):
        t = uniform_random_tensor((5, 7, 9), 50, seed=4)
        s = SplattTensor.from_coo(t, output_mode=1)
        assert s.n_rows == 7
        assert s.inner_extent == t.shape[s.inner_mode]
        assert s.fiber_extent == t.shape[s.fiber_mode]

    def test_fewer_fibers_than_nnz_when_clustered(self):
        # Dense-ish tensor: fibers group multiple nonzeros.
        t = uniform_random_tensor((5, 20, 5), 400, seed=5)
        s = SplattTensor.from_coo(t)
        assert s.n_fibers < s.nnz


class TestValidation:
    def test_order_check(self):
        t4 = uniform_random_tensor((3, 3, 3, 3), 10, seed=6)
        with pytest.raises(ShapeError):
            SplattTensor.from_coo(t4)

    def test_bad_orientation(self):
        t = figure1_tensor()
        with pytest.raises(ShapeError):
            SplattTensor.from_coo(t, output_mode=0, inner_mode=0)

    def test_invariant_bad_row_ptr(self):
        s = SplattTensor.from_coo(figure1_tensor())
        s.row_ptr[-1] += 1
        with pytest.raises(FormatError):
            s.check_invariants()

    def test_invariant_empty_fiber(self):
        s = SplattTensor.from_coo(figure1_tensor())
        s.fiber_ptr[1] = s.fiber_ptr[0]
        with pytest.raises(FormatError):
            s.check_invariants()

    def test_invariant_jidx_bounds(self):
        s = SplattTensor.from_coo(figure1_tensor())
        s.jidx[0] = 99
        with pytest.raises(ReproError):
            s.check_invariants()
