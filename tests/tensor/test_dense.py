"""Tests for dense helpers: matricization, Khatri-Rao, dense MTTKRP."""

import numpy as np
import pytest

from repro.tensor import dense_mttkrp, khatri_rao, matricize, tensor_norm
from repro.tensor.dense import fold
from repro.util import ShapeError


class TestMatricize:
    def test_shape(self, rng):
        x = rng.random((3, 4, 5))
        assert matricize(x, 0).shape == (3, 20)
        assert matricize(x, 1).shape == (4, 15)
        assert matricize(x, 2).shape == (5, 12)

    def test_fibers_are_columns(self, rng):
        x = rng.random((3, 4, 5))
        # Column 0 of the mode-0 unfolding is the fiber x[:, 0, 0].
        np.testing.assert_array_equal(matricize(x, 0)[:, 0], x[:, 0, 0])

    def test_fold_roundtrip(self, rng):
        x = rng.random((3, 4, 5, 2))
        for mode in range(4):
            np.testing.assert_array_equal(
                fold(matricize(x, mode), mode, x.shape), x
            )


class TestKhatriRao:
    def test_definition(self, rng):
        u = rng.random((3, 4))
        v = rng.random((5, 4))
        k = khatri_rao([u, v])
        assert k.shape == (15, 4)
        # out[i*J + j] = u[i] * v[j]  (second operand fastest).
        np.testing.assert_allclose(k[1 * 5 + 2], u[1] * v[2])

    def test_column_kron_structure(self, rng):
        u = rng.random((3, 2))
        v = rng.random((4, 2))
        k = khatri_rao([u, v])
        for r in range(2):
            np.testing.assert_allclose(k[:, r], np.kron(u[:, r], v[:, r]))

    def test_three_operands_associative(self, rng):
        a, b, c = rng.random((2, 3)), rng.random((4, 3)), rng.random((5, 3))
        np.testing.assert_allclose(
            khatri_rao([a, b, c]), khatri_rao([khatri_rao([a, b]), c])
        )

    def test_rank_mismatch(self, rng):
        with pytest.raises(ShapeError):
            khatri_rao([rng.random((3, 4)), rng.random((3, 5))])


class TestDenseMTTKRP:
    def test_matches_unfolding_formula(self, rng):
        x = rng.random((4, 5, 6))
        A, B, C = rng.random((4, 3)), rng.random((5, 3)), rng.random((6, 3))
        np.testing.assert_allclose(
            dense_mttkrp(x, [None, B, C], 0), matricize(x, 0) @ khatri_rao([C, B])
        )
        np.testing.assert_allclose(
            dense_mttkrp(x, [A, None, C], 1), matricize(x, 1) @ khatri_rao([C, A])
        )
        np.testing.assert_allclose(
            dense_mttkrp(x, [A, B, None], 2), matricize(x, 2) @ khatri_rao([B, A])
        )

    def test_order_4(self, rng):
        x = rng.random((3, 4, 5, 6))
        fs = [rng.random((n, 2)) for n in x.shape]
        got = dense_mttkrp(x, fs, 1)
        expected = matricize(x, 1) @ khatri_rao([fs[3], fs[2], fs[0]])
        np.testing.assert_allclose(got, expected)

    def test_factor_shape_checked(self, rng):
        x = rng.random((3, 4, 5))
        with pytest.raises(ShapeError):
            dense_mttkrp(x, [None, rng.random((99, 3)), rng.random((5, 3))], 0)

    def test_rank_mismatch_checked(self, rng):
        x = rng.random((3, 4, 5))
        with pytest.raises(ShapeError):
            dense_mttkrp(x, [None, rng.random((4, 3)), rng.random((5, 2))], 0)

    def test_wrong_factor_count(self, rng):
        x = rng.random((3, 4, 5))
        with pytest.raises(ShapeError):
            dense_mttkrp(x, [None, rng.random((4, 3))], 0)


class TestNorm:
    def test_frobenius(self):
        x = np.ones((2, 3, 4))
        assert tensor_norm(x) == pytest.approx(np.sqrt(24))
