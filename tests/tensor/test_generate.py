"""Tests for the synthetic tensor generators."""

import numpy as np
import pytest

from repro.tensor import (
    clustered_tensor,
    poisson_tensor,
    power_law_tensor,
    uniform_random_tensor,
)
from repro.util import ConfigError
from repro.util.errors import ReproError


class TestPoisson:
    def test_counts_are_positive_integers(self):
        t = poisson_tensor((20, 20, 20), 3000, seed=1)
        assert np.all(t.values >= 1)
        assert np.all(t.values == np.round(t.values))

    def test_total_events_conserved(self):
        t = poisson_tensor((20, 20, 20), 3000, seed=1)
        assert t.values.sum() == 3000

    def test_deterministic(self):
        a = poisson_tensor((10, 10, 10), 500, seed=5)
        b = poisson_tensor((10, 10, 10), 500, seed=5)
        assert a.equal(b)

    def test_seeds_differ(self):
        a = poisson_tensor((10, 10, 10), 500, seed=5)
        b = poisson_tensor((10, 10, 10), 500, seed=6)
        assert not a.equal(b)

    def test_clustering_beats_uniform(self):
        """Low-rank mixture data collapses to fewer distinct coordinates
        than uniform sampling with the same event count."""
        shape, n = (40, 40, 40), 5000
        p = poisson_tensor(shape, n, seed=2, gen_rank=4, concentration=0.05)
        u = uniform_random_tensor(shape, n, seed=2)
        assert p.nnz < u.nnz

    def test_zero_events(self):
        assert poisson_tensor((5, 5, 5), 0, seed=1).nnz == 0

    def test_bad_params(self):
        with pytest.raises(ReproError):
            poisson_tensor((5, 5), -1)
        with pytest.raises(ReproError):
            poisson_tensor((5, 5), 10, gen_rank=0)


class TestUniform:
    def test_shape_and_bounds(self):
        t = uniform_random_tensor((7, 8, 9), 200, seed=3)
        for m, extent in enumerate(t.shape):
            assert t.indices[:, m].min() >= 0
            assert t.indices[:, m].max() < extent

    def test_integer_values(self):
        t = uniform_random_tensor((10, 10, 10), 200, seed=3, integer_values=True)
        assert np.all(t.values == np.round(t.values))

    def test_nnz_close_to_target(self):
        # Dedup shrinks only on collisions; sparse space has few.
        t = uniform_random_tensor((100, 100, 100), 1000, seed=4)
        assert t.nnz >= 990


class TestClustered:
    def test_cluster_concentration(self):
        """Most nonzeros should fall in a small portion of the index space."""
        t = clustered_tensor(
            (200, 200, 200),
            4000,
            n_clusters=4,
            cluster_fraction=1.0,
            cluster_extent_fraction=0.05,
            seed=5,
        )
        # 4 boxes of (0.05 * 200)^3 = 1000 cells each cover <= 4000 of 8M
        # cells; all nonzeros land there.
        occupied = t.distinct_per_mode()
        assert all(d <= 4 * 10 for d in occupied)

    def test_background_spread(self):
        t = clustered_tensor(
            (200, 200, 200), 4000, cluster_fraction=0.0, seed=6
        )
        assert all(d > 100 for d in t.distinct_per_mode())

    def test_param_validation(self):
        with pytest.raises(ReproError):
            clustered_tensor((5, 5, 5), 10, cluster_fraction=1.5)
        with pytest.raises(ReproError):
            clustered_tensor((5, 5, 5), 10, n_clusters=0)


class TestPowerLaw:
    def test_skew(self):
        """The hottest index should capture far more than 1/extent mass."""
        t = power_law_tensor((500, 500, 500), 20000, alphas=1.3, seed=7)
        counts = t.slice_nnz(0)
        assert counts.max() > 10 * counts[counts > 0].mean()

    def test_per_mode_alphas(self):
        t = power_law_tensor((100, 100, 100), 5000, alphas=(2.0, 0.1, 1.0), seed=8)
        skew = [t.slice_nnz(m).max() for m in range(3)]
        assert skew[0] > skew[1]

    def test_alpha_count_mismatch(self):
        with pytest.raises(ConfigError):
            power_law_tensor((5, 5, 5), 10, alphas=(1.0, 1.0))
