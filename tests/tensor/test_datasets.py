"""Tests for the Table II dataset registry."""

import pytest

from repro.tensor import DATASETS, load_dataset
from repro.util import ConfigError


EXPECTED_NAMES = {
    "poisson1",
    "poisson2",
    "poisson3",
    "nell2",
    "netflix",
    "reddit",
    "amazon",
}


class TestRegistry:
    def test_all_table2_rows_present(self):
        assert set(DATASETS) == EXPECTED_NAMES

    def test_paper_stats_match_table2(self):
        assert DATASETS["poisson3"].paper_dims == (30_000, 30_000, 30_000)
        assert DATASETS["poisson3"].paper_nnz == 135_000_000
        assert DATASETS["netflix"].paper_dims == (480_000, 18_000, 80)
        assert DATASETS["amazon"].paper_nnz == 1_700_000_000

    def test_dim_ratios_preserved(self):
        """Stand-in dims scale every mode by (close to) the same factor."""
        for info in DATASETS.values():
            scales = [
                p / s for p, s in zip(info.paper_dims, info.standin_dims)
            ]
            # Netflix keeps its tiny time mode unscaled; other ratios agree
            # within 10%.  Poisson1 is unscaled entirely (all ratios 1).
            big = [s for s, p in zip(scales, info.paper_dims) if p > 1000]
            if not big:
                assert all(s == 1.0 for s in scales), info.name
                continue
            assert max(big) / min(big) < 1.1, info.name

    def test_machine_scale_consistent_with_dims(self):
        for info in DATASETS.values():
            longest = max(info.paper_dims)
            standin_longest = max(info.standin_dims)
            implied = standin_longest / longest
            assert implied == pytest.approx(info.machine_scale, rel=0.05), info.name

    def test_generators_valid(self):
        for info in DATASETS.values():
            assert info.kind in ("poisson", "clustered", "power_law")


class TestLoading:
    def test_load_small_override(self):
        t = load_dataset("poisson2", nnz=5000)
        assert t.shape == DATASETS["poisson2"].standin_dims
        assert 0 < t.nnz <= 5000

    def test_deterministic_default_seed(self):
        a = load_dataset("nell2", nnz=3000)
        b = load_dataset("nell2", nnz=3000)
        assert a.equal(b)

    def test_case_insensitive(self):
        t = load_dataset("NELL2", nnz=1000)
        assert t.shape == DATASETS["nell2"].standin_dims

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown dataset"):
            load_dataset("enron")

    def test_bad_nnz_rejected(self):
        with pytest.raises(ConfigError):
            load_dataset("nell2", nnz=0)
