"""Shared-memory collectives: numerics, byte accounting, crash cleanup.

Every test asserts against plain NumPy references computed in group
order — the same summation order :class:`repro.dist.comm.SimCluster`
uses — because the process backend's whole value is that its results are
*bitwise* those of the simulation.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dist.shmcomm import ShmCluster
from repro.util.errors import DistributionError

pytestmark = pytest.mark.parallel_exec


def _leftovers() -> list[str]:
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith("reprodist-")]
    except FileNotFoundError:  # non-Linux: no /dev/shm to scan
        return []


@pytest.fixture(autouse=True)
def no_leaked_segments():
    yield
    assert _leftovers() == [], "SharedMemory segments leaked by the test"


# ----------------------------------------------------------------------
# SPMD task functions (module level: they are pickled into the workers)
# ----------------------------------------------------------------------
def _allgather_task(comm, payload, out_name):
    got = comm.allgather(payload["group"], payload["mine"])
    return {"got": got}


def _reduce_scatter_task(comm, payload, out_name):
    chunk = comm.reduce_scatter(payload["group"], payload["mine"])
    return {"chunk": chunk}


def _allreduce_task(comm, payload, out_name):
    total = comm.allreduce(payload["group"], payload["mine"])
    return {"total": total}


def _crash_task(comm, payload, out_name):
    if comm.rank == payload["victim"]:
        raise ValueError("injected failure")
    comm.allgather(payload["group"], payload["mine"])
    return {}


def _repeat_task(comm, payload, out_name):
    for _ in range(payload["rounds"]):
        comm.allgather(payload["group"], payload["mine"])
        comm.barrier(payload["group"])
    return {}


def _buffers(n, rows, cols, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    return [
        np.ascontiguousarray(rng.standard_normal((rows, cols)), dtype=dtype)
        for _ in range(n)
    ]


class TestCollectives:
    def test_allgather_delivers_group_order(self):
        bufs = _buffers(2, 5, 3)
        group = [0, 1]
        with ShmCluster(2, 4096) as cluster:
            results, _ = cluster.run_spmd(
                _allgather_task,
                [{"group": group, "mine": bufs[r]} for r in range(2)],
            )
        for res in results:
            for want, got in zip(bufs, res["got"]):
                np.testing.assert_array_equal(want, got)

    def test_allgather_measured_equals_ledger(self):
        bufs = _buffers(3, 4, 2)
        group = [0, 1, 2]
        with ShmCluster(3, 4096) as cluster:
            results, _ = cluster.run_spmd(
                _allgather_task,
                [{"group": group, "mine": bufs[r]} for r in range(3)],
            )
        measured = sum(res["bytes_moved"] for res in results)
        records = [r for res in results for r in res["records"]]
        assert len(records) == 1  # the group leader records once
        assert measured == records[0].ledger_bytes()
        # (g-1) * sum(nbytes): each rank copies every peer's buffer.
        assert measured == 2 * sum(b.nbytes for b in bufs)

    def test_reduce_scatter_matches_group_order_sum(self):
        bufs = _buffers(2, 6, 4, seed=3)
        group = [0, 1]
        total = bufs[0].copy()
        total += bufs[1]
        with ShmCluster(2, 4096) as cluster:
            results, _ = cluster.run_spmd(
                _reduce_scatter_task,
                [{"group": group, "mine": bufs[r]} for r in range(2)],
            )
        bounds = (6 * np.arange(3)) // 2
        for res in results:
            lo, hi = int(bounds[res["rank"]]), int(bounds[res["rank"] + 1])
            np.testing.assert_array_equal(res["chunk"], total[lo:hi])
        measured = sum(res["bytes_moved"] for res in results)
        records = [r for res in results for r in res["records"]]
        assert measured == records[0].ledger_bytes() == bufs[0].nbytes

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_allreduce_matches_sum_everywhere(self, dtype):
        bufs = _buffers(2, 4, 4, dtype=dtype, seed=5)
        group = [0, 1]
        total = bufs[0].copy()
        total += bufs[1]
        with ShmCluster(2, 4096) as cluster:
            results, _ = cluster.run_spmd(
                _allreduce_task,
                [{"group": group, "mine": bufs[r]} for r in range(2)],
            )
        for res in results:
            assert res["total"].dtype == np.dtype(dtype)
            np.testing.assert_array_equal(res["total"], total)
        # 2 (g-1) nbytes: the simulation's allreduce charge, measured.
        measured = sum(res["bytes_moved"] for res in results)
        records = [r for res in results for r in res["records"]]
        assert measured == records[0].ledger_bytes() == 2 * bufs[0].nbytes

    def test_repeated_collectives_stay_aligned(self):
        # Regression: the barrier phase tag must never false-positive on
        # a peer racing ahead into its next barrier.
        bufs = _buffers(2, 2, 2)
        group = [0, 1]
        with ShmCluster(2, 4096) as cluster:
            results, _ = cluster.run_spmd(
                _repeat_task,
                [
                    {"group": group, "mine": bufs[r], "rounds": 40}
                    for r in range(2)
                ],
            )
        assert len(results) == 2


class TestCrashCleanup:
    def test_rank_failure_raises_and_unlinks(self):
        bufs = _buffers(2, 3, 2)
        group = [0, 1]
        cluster = ShmCluster(2, 4096)
        try:
            with pytest.raises(DistributionError, match="injected failure"):
                cluster.run_spmd(
                    _crash_task,
                    [
                        {"group": group, "mine": bufs[r], "victim": 1}
                        for r in range(2)
                    ],
                )
        finally:
            cluster.close()
        assert _leftovers() == []

    def test_cluster_usable_shape_errors(self):
        with pytest.raises(DistributionError):
            ShmCluster(0, 4096)
        with ShmCluster(2, 4096) as cluster:
            with pytest.raises(DistributionError, match="payloads"):
                cluster.run_spmd(_allgather_task, [{}])
        with pytest.raises(DistributionError, match="closed"):
            cluster.run_spmd(_allgather_task, [{}, {}])

    def test_close_is_idempotent(self):
        cluster = ShmCluster(2, 4096)
        cluster.close()
        cluster.close()
        assert _leftovers() == []
