"""The Ballard/Knight/Rouse MTTKRP communication lower bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import (
    ProcessGrid,
    distributed_mttkrp,
    medium_grain_decompose,
    attained_fraction,
    mttkrp_comm_lower_bound,
)
from repro.machine import power8_socket
from repro.tensor import poisson_tensor
from repro.util.errors import DistributionError
from repro.util.rng import resolve_rng


class TestBound:
    def test_single_rank_moves_nothing(self):
        assert mttkrp_comm_lower_bound((50, 50, 50), 10_000, 16, 1, 8) == 0.0

    def test_positive_when_nonzeros_dominate_ownership(self):
        # Dense-ish cube: far more nonzeros than owned factor rows.
        bound = mttkrp_comm_lower_bound((40, 40, 40), 400_000, 16, 8, 8)
        assert bound > 0.0

    def test_zero_when_ownership_covers_the_projection(self):
        # Hypersparse: each rank's owned factor rows exceed what its few
        # nonzeros can touch, so the projection bound collapses to zero.
        assert mttkrp_comm_lower_bound((10_000, 10_000, 10_000), 80, 8, 8, 8) == 0.0

    def test_scales_linearly_with_itemsize(self):
        b8 = mttkrp_comm_lower_bound((40, 40, 40), 400_000, 16, 8, 8)
        b4 = mttkrp_comm_lower_bound((40, 40, 40), 400_000, 16, 8, 4)
        assert b8 == pytest.approx(2 * b4)

    def test_invalid_rank_count(self):
        with pytest.raises(DistributionError):
            mttkrp_comm_lower_bound((4, 4, 4), 10, 2, 0, 8)


class TestAttainedFraction:
    def test_in_unit_interval_for_real_decomposition(self):
        tensor = poisson_tensor((24, 30, 27), 2500, seed=11)
        grid = ProcessGrid((2, 2, 1))
        decomp = medium_grain_decompose(tensor, grid, seed=5)
        rng = resolve_rng(7)
        factors = [
            np.ascontiguousarray(rng.standard_normal((n, 6))) for n in tensor.shape
        ]
        res = distributed_mttkrp(decomp, factors, 0, power8_socket())
        frac = attained_fraction(
            tensor.shape, tensor.nnz, 6, grid.n_ranks, 8, res.comm_bytes
        )
        assert 0.0 <= frac <= 1.0

    def test_exact_bound_is_one(self):
        bound = mttkrp_comm_lower_bound((40, 40, 40), 400_000, 16, 8, 8)
        assert attained_fraction((40, 40, 40), 400_000, 16, 8, 8, bound) == 1.0

    def test_zero_measured_with_zero_bound(self):
        assert attained_fraction((50, 50, 50), 10_000, 16, 1, 8, 0.0) == 1.0

    def test_beating_the_bound_is_an_error(self):
        bound = mttkrp_comm_lower_bound((40, 40, 40), 400_000, 16, 8, 8)
        with pytest.raises(DistributionError, match="lower bound"):
            attained_fraction((40, 40, 40), 400_000, 16, 8, 8, bound / 2)
