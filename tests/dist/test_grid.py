"""Tests for process grids."""

import pytest

from repro.dist import ProcessGrid
from repro.util.errors import ReproError


class TestGeometry:
    def test_sizes(self):
        g = ProcessGrid((2, 3, 4))
        assert g.group_size == 24
        assert g.n_ranks == 24
        assert not g.is_4d

    def test_4d_sizes(self):
        g = ProcessGrid((2, 3, 4), rank_groups=2)
        assert g.n_ranks == 48
        assert g.is_4d

    def test_describe_notation(self):
        assert ProcessGrid((4, 2, 8)).describe() == "4x2x8"
        assert ProcessGrid((2, 1, 4), 16).describe() == "2x1x4x16"

    def test_validation(self):
        with pytest.raises(ReproError):
            ProcessGrid((2, 3))
        with pytest.raises(ReproError):
            ProcessGrid((0, 1, 1))


class TestCoordinates:
    def test_roundtrip(self):
        g = ProcessGrid((2, 3, 4), rank_groups=2)
        for rank in range(g.n_ranks):
            a, b, c, layer = g.coords(rank)
            assert g.rank_of(a, b, c, layer) == rank

    def test_layers_are_contiguous(self):
        g = ProcessGrid((2, 2, 2), rank_groups=3)
        assert g.group_ranks(0) == list(range(0, 8))
        assert g.group_ranks(2) == list(range(16, 24))

    def test_out_of_range(self):
        g = ProcessGrid((2, 2, 2))
        with pytest.raises(ReproError):
            g.coords(8)
        with pytest.raises(ReproError):
            g.rank_of(2, 0, 0)


class TestGroupings:
    def test_slab_sizes(self):
        g = ProcessGrid((2, 3, 4))
        assert len(g.slab_ranks(0, 0)) == 12  # r*s
        assert len(g.slab_ranks(1, 1)) == 8  # q*s
        assert len(g.slab_ranks(2, 3)) == 6  # q*r

    def test_slabs_partition_the_group(self):
        g = ProcessGrid((2, 3, 4))
        for mode in range(3):
            seen = []
            for idx in range(g.dims[mode]):
                seen.extend(g.slab_ranks(mode, idx))
            assert sorted(seen) == list(range(24))

    def test_slab_membership_consistent_with_coords(self):
        g = ProcessGrid((2, 3, 4))
        for rank in g.slab_ranks(1, 2):
            assert g.coords(rank)[1] == 2

    def test_layer_peers(self):
        g = ProcessGrid((2, 2, 2), rank_groups=4)
        peers = g.layer_peers(1, 0, 1)
        assert len(peers) == 4
        assert all(g.coords(r)[:3] == (1, 0, 1) for r in peers)
