"""Tests for the coarse-grained distributed baseline."""

import numpy as np
import pytest

from repro.dist import (
    ProcessGrid,
    coarse_grain_decompose,
    coarse_grained_mttkrp,
    distributed_mttkrp,
    medium_grain_decompose,
)
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.tensor import poisson_tensor


@pytest.fixture(scope="module")
def problem():
    t = poisson_tensor((60, 50, 40), 8000, seed=91)
    rng = np.random.default_rng(92)
    factors = [rng.standard_normal((n, 16)) for n in t.shape]
    ref = get_kernel("splatt").mttkrp(t, factors, 0)
    return t, factors, ref


MACHINE = power8_socket()


class TestDecomposition:
    def test_slabs_cover(self, problem):
        t, _, _ = problem
        dec = coarse_grain_decompose(t, 4, mode=0)
        assert sum(dec.nnz_per_process()) == t.nnz
        assert dec.boundaries[0] == 0 and dec.boundaries[-1] == t.shape[0]

    def test_balanced(self, problem):
        t, _, _ = problem
        dec = coarse_grain_decompose(t, 4, mode=0)
        loads = dec.nnz_per_process()
        assert max(loads) / (sum(loads) / 4) < 1.5


class TestExactness:
    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_matches_shared_memory(self, problem, p):
        t, factors, ref = problem
        dec = coarse_grain_decompose(t, p, mode=0)
        res = coarse_grained_mttkrp(dec, list(factors), MACHINE)
        np.testing.assert_allclose(res.output, ref, rtol=1e-10, atol=1e-12)

    def test_blocked_local_kernel(self, problem):
        t, factors, ref = problem
        dec = coarse_grain_decompose(t, 3, mode=0)
        res = coarse_grained_mttkrp(
            dec, list(factors), MACHINE, local_block_counts=(2, 2, 2)
        )
        np.testing.assert_allclose(res.output, ref, rtol=1e-10, atol=1e-12)


class TestVersusMediumGrained:
    def test_coarse_replication_volume_constant(self, problem):
        """The replication allgather moves ``(p-1)/p`` of the full factor
        to each of ``p`` ranks, i.e. normalized volume/(p-1) is exactly
        the factor's size regardless of p — coarse-grained's scaling sin."""
        t, factors, _ = problem
        rank = factors[0].shape[1]
        factor_bytes = t.shape[0] * rank * 8
        for p in (2, 4, 8):
            dec = coarse_grain_decompose(t, p, mode=0)
            res = coarse_grained_mttkrp(dec, list(factors), MACHINE)
            assert res.comm_bytes / (p - 1) == pytest.approx(factor_bytes)

    def test_medium_grained_wins_at_scale(self):
        """Past the crossover process count, medium-grained moves fewer
        total bytes than coarse-grained — the motivation for the
        decomposition the paper builds on."""
        t = poisson_tensor((150, 130, 120), 20_000, seed=93)
        rng = np.random.default_rng(94)
        factors = [rng.standard_normal((n, 16)) for n in t.shape]
        coarse = coarse_grained_mttkrp(
            coarse_grain_decompose(t, 27, mode=0), list(factors), MACHINE
        )
        medium = distributed_mttkrp(
            medium_grain_decompose(t, ProcessGrid((3, 3, 3)), seed=1),
            factors,
            0,
            MACHINE,
        )
        assert medium.comm_bytes < coarse.comm_bytes
        # And both remain numerically exact.
        ref = get_kernel("splatt").mttkrp(t, factors, 0)
        np.testing.assert_allclose(coarse.output, ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(medium.output, ref, rtol=1e-10, atol=1e-12)
