"""Tests for distributed CP-ALS."""

import numpy as np
import pytest

from repro.blocking import RankBlocking
from repro.cpd import cp_als, init_factors
from repro.dist import ProcessGrid, distributed_cp_als
from repro.machine import power8_socket
from repro.tensor import poisson_tensor


@pytest.fixture(scope="module")
def problem():
    tensor = poisson_tensor((24, 30, 26), 3000, seed=17)
    init = init_factors(tensor, 4, method="random", seed=5)
    return tensor, init


MACHINE = power8_socket()


class TestEquivalence:
    def test_same_trajectory_as_shared_memory(self, problem):
        """Distributed and shared-memory ALS must walk the same fits."""
        tensor, init = problem
        shared = cp_als(
            tensor, 4, n_iters=4, tol=0.0, init=[f.copy() for f in init]
        )
        dist = distributed_cp_als(
            tensor,
            4,
            ProcessGrid((2, 2, 1)),
            MACHINE,
            n_iters=4,
            tol=0.0,
            init=[f.copy() for f in init],
        )
        np.testing.assert_allclose(dist.fits, shared.fits, rtol=1e-8)

    def test_4d_same_trajectory(self, problem):
        tensor, init = problem
        shared = cp_als(
            tensor, 4, n_iters=3, tol=0.0, init=[f.copy() for f in init]
        )
        dist = distributed_cp_als(
            tensor,
            4,
            ProcessGrid((2, 1, 1)),
            MACHINE,
            n_iters=3,
            tol=0.0,
            rank_groups=2,
            init=[f.copy() for f in init],
        )
        np.testing.assert_allclose(dist.fits, shared.fits, rtol=1e-8)

    def test_blocked_local_kernel_same_trajectory(self, problem):
        tensor, init = problem
        shared = cp_als(
            tensor, 4, n_iters=3, tol=0.0, init=[f.copy() for f in init]
        )
        dist = distributed_cp_als(
            tensor,
            4,
            ProcessGrid((2, 1, 2)),
            MACHINE,
            n_iters=3,
            tol=0.0,
            init=[f.copy() for f in init],
            local_block_counts=(2, 2, 2),
            local_rank_blocking=RankBlocking(n_blocks=2),
        )
        np.testing.assert_allclose(dist.fits, shared.fits, rtol=1e-8)


class TestAccounting:
    def test_time_and_bytes_accumulate(self, problem):
        tensor, init = problem
        dist = distributed_cp_als(
            tensor,
            4,
            ProcessGrid((2, 2, 1)),
            MACHINE,
            n_iters=2,
            tol=0.0,
            init=[f.copy() for f in init],
        )
        assert dist.total_time > 0
        assert dist.comm_bytes > 0

    def test_more_iterations_cost_more(self, problem):
        tensor, init = problem
        one = distributed_cp_als(
            tensor, 4, ProcessGrid((2, 1, 1)), MACHINE,
            n_iters=1, tol=0.0, init=[f.copy() for f in init],
        )
        three = distributed_cp_als(
            tensor, 4, ProcessGrid((2, 1, 1)), MACHINE,
            n_iters=3, tol=0.0, init=[f.copy() for f in init],
        )
        assert three.total_time > one.total_time
        assert three.comm_bytes > one.comm_bytes

    def test_convergence_stops_early(self, problem):
        tensor, init = problem
        res = distributed_cp_als(
            tensor, 4, ProcessGrid((2, 1, 1)), MACHINE,
            n_iters=50, tol=1e-2, init=[f.copy() for f in init],
        )
        assert res.converged
        assert res.n_iters < 50
