"""Tests for the medium-grained decomposition."""

import numpy as np
import pytest

from repro.dist import ProcessGrid, medium_grain_decompose
from repro.dist.mediumgrain import greedy_slice_partition
from repro.tensor import power_law_tensor, uniform_random_tensor
from repro.util.errors import DistributionError


@pytest.fixture
def tensor():
    return uniform_random_tensor((40, 60, 50), 5000, seed=21)


class TestGreedyPartition:
    def test_boundaries_valid(self):
        counts = np.array([5, 1, 1, 1, 8, 1, 1, 2])
        b = greedy_slice_partition(counts, 3)
        assert b[0] == 0 and b[-1] == 8
        assert np.all(np.diff(b) >= 1)

    def test_balances_uniform(self):
        counts = np.ones(100, dtype=int)
        b = greedy_slice_partition(counts, 4)
        np.testing.assert_array_equal(np.diff(b), [25, 25, 25, 25])

    def test_respects_heavy_slices(self):
        counts = np.array([100, 1, 1, 1])
        b = greedy_slice_partition(counts, 2)
        # The heavy slice alone fills the first chunk.
        assert b[1] == 1

    def test_too_many_chunks(self):
        with pytest.raises(DistributionError):
            greedy_slice_partition(np.ones(3, dtype=int), 4)

    def test_every_chunk_nonempty(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 50, size=37)
        b = greedy_slice_partition(counts, 8)
        assert np.all(np.diff(b) >= 1)


class TestDecomposition:
    def test_blocks_cover_all_nonzeros(self, tensor):
        dec = medium_grain_decompose(tensor, ProcessGrid((2, 3, 2)), seed=3)
        total = sum(b.tensor.nnz for b in dec.blocks.values())
        assert total == tensor.nnz
        assert len(dec.blocks) == 12

    def test_blocks_respect_bounds(self, tensor):
        dec = medium_grain_decompose(tensor, ProcessGrid((2, 2, 2)), seed=3)
        for block in dec.blocks.values():
            for m, (lo, hi) in enumerate(block.bounds):
                if block.tensor.nnz:
                    col = block.tensor.indices[:, m]
                    assert col.min() >= lo and col.max() < hi

    def test_bounds_tile_index_space(self, tensor):
        dec = medium_grain_decompose(tensor, ProcessGrid((2, 3, 2)), seed=3)
        for mode in range(3):
            b = dec.boundaries[mode]
            assert b[0] == 0 and b[-1] == tensor.shape[mode]
            assert np.all(np.diff(b) >= 1)

    def test_mode_perm_override(self, tensor):
        dec = medium_grain_decompose(
            tensor, ProcessGrid((4, 1, 1)), seed=3, mode_perm=(1, 0, 2)
        )
        assert dec.mode_of_axis == (1, 0, 2)
        # Axis 0 (4 chunks) partitions mode 1.
        assert len(dec.boundaries[1]) == 5
        assert len(dec.boundaries[0]) == 2

    def test_bad_perm_rejected(self, tensor):
        with pytest.raises(DistributionError):
            medium_grain_decompose(
                tensor, ProcessGrid((2, 2, 1)), mode_perm=(0, 0, 1)
            )

    def test_balance_on_skewed_data(self):
        """The greedy partition keeps imbalance moderate even on
        power-law slice histograms."""
        t = power_law_tensor((200, 100, 150), 20_000, alphas=1.1, seed=9)
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 2)), seed=3)
        assert dec.imbalance() < 3.0

    def test_deterministic(self, tensor):
        a = medium_grain_decompose(tensor, ProcessGrid((2, 2, 2)), seed=5)
        b = medium_grain_decompose(tensor, ProcessGrid((2, 2, 2)), seed=5)
        assert a.mode_of_axis == b.mode_of_axis
        for coords in a.blocks:
            assert a.blocks[coords].tensor.equal(b.blocks[coords].tensor)

    def test_empty_blocks_materialized(self):
        t = uniform_random_tensor((4, 4, 4), 3, seed=1)
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 2)), seed=1)
        assert len(dec.blocks) == 8

    def test_mode_chunk_lookup(self, tensor):
        dec = medium_grain_decompose(tensor, ProcessGrid((2, 3, 2)), seed=3)
        for mode in range(3):
            axis = dec.axis_of_mode(mode)
            lo, hi = dec.mode_chunk(mode, 0)
            assert (lo, hi) == (
                int(dec.boundaries[mode][0]),
                int(dec.boundaries[mode][1]),
            )
