"""Process-backend distributed MTTKRP/ALS: bitwise parity with the sim.

The contract under test: ``backend="process"`` reproduces the sim
backend *bitwise* (same group-order summation), measured communication
bytes equal the ``CommLedger`` formula accounting, float32 stays float32
end-to-end, and both backends track serial execution to float-precision
tolerance (block partial sums reorder additions, so bitwise-vs-serial is
not a meaningful target).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cpd.als import cp_als
from repro.dist import (
    ProcessGrid,
    SimCluster,
    distributed_cp_als,
    distributed_mttkrp,
    medium_grain_decompose,
)
from repro.dist.costmodel import infiniband_edr
from repro.kernels.base import get_kernel
from repro.machine import power8_socket
from repro.tensor import poisson_tensor
from repro.tensor.coo import COOTensor
from repro.util.errors import DistributionError
from repro.util.rng import resolve_rng

pytestmark = pytest.mark.parallel_exec

MACHINE = power8_socket()


@pytest.fixture(autouse=True)
def no_leaked_segments():
    yield
    leftovers = [
        f for f in os.listdir("/dev/shm") if f.startswith("reprodist-")
    ] if os.path.isdir("/dev/shm") else []
    assert leftovers == []


def _tensor(dtype):
    t = poisson_tensor((24, 30, 27), 2500, seed=11)
    return COOTensor(t.shape, t.indices, t.values.astype(dtype), validate=False)


def _factors(tensor, rank, dtype, seed=7):
    rng = resolve_rng(seed)
    return [
        np.ascontiguousarray(rng.standard_normal((n, rank)), dtype=dtype)
        for n in tensor.shape
    ]


def _run_both(tensor, dims, rank_groups, mode, rank=6):
    grid = ProcessGrid(dims)
    decomp = medium_grain_decompose(tensor, grid, seed=5)
    factors = _factors(tensor, rank, tensor.values.dtype)
    full = ProcessGrid(dims, rank_groups)
    sim = distributed_mttkrp(
        decomp,
        factors,
        mode,
        MACHINE,
        SimCluster(full.n_ranks, infiniband_edr()),
        rank_groups=rank_groups,
    )
    proc = distributed_mttkrp(
        decomp, factors, mode, MACHINE, rank_groups=rank_groups, backend="process"
    )
    return sim, proc, factors


class TestMTTKRPParity:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_float64_bitwise_and_bytes(self, mode):
        tensor = _tensor(np.float64)
        sim, proc, factors = _run_both(tensor, (2, 2, 1), 1, mode)
        assert proc.backend == "process"
        assert proc.output.dtype == np.float64
        np.testing.assert_array_equal(sim.output, proc.output)
        assert sim.comm_bytes == proc.comm_bytes == proc.measured_comm_bytes
        # Both backends track the serial kernel to float64 tolerance.
        ref = get_kernel("splatt").mttkrp(tensor, factors, mode)
        np.testing.assert_allclose(proc.output, ref, rtol=1e-10, atol=1e-12)

    def test_float32_stays_float32(self):
        tensor = _tensor(np.float32)
        sim, proc, factors = _run_both(tensor, (2, 2, 1), 1, 0)
        assert sim.output.dtype == np.float32
        assert proc.output.dtype == np.float32
        np.testing.assert_array_equal(sim.output, proc.output)
        assert sim.comm_bytes == proc.comm_bytes == proc.measured_comm_bytes
        ref = get_kernel("splatt").mttkrp(tensor, factors, 0)
        np.testing.assert_allclose(proc.output, ref, rtol=2e-4, atol=1e-5)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_rank_extended_4d_bitwise(self, dtype):
        tensor = _tensor(dtype)
        sim, proc, _ = _run_both(tensor, (2, 1, 1), 2, 0)
        assert proc.output.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(sim.output, proc.output)
        assert sim.comm_bytes == proc.comm_bytes == proc.measured_comm_bytes

    def test_measured_time_reported(self):
        tensor = _tensor(np.float64)
        _, proc, _ = _run_both(tensor, (2, 1, 1), 1, 0)
        assert proc.comm_seconds is not None
        assert proc.comm_seconds.shape == (2,)
        assert proc.total_time > 0.0

    def test_bad_backend_rejected(self):
        tensor = _tensor(np.float64)
        grid = ProcessGrid((2, 1, 1))
        decomp = medium_grain_decompose(tensor, grid, seed=5)
        factors = _factors(tensor, 6, np.float64)
        with pytest.raises(DistributionError, match="backend"):
            distributed_mttkrp(
                decomp, factors, 0, MACHINE, backend="mpi"
            )


class TestObservability:
    def test_spans_and_counters_emitted(self):
        from repro.obs import Tracer, use_tracer

        tensor = _tensor(np.float64)
        tracer = Tracer()
        with use_tracer(tracer):
            _, proc, _ = _run_both(tensor, (2, 1, 1), 1, 0)
        comm_spans = tracer.spans_named("dist.comm")
        compute_spans = tracer.spans_named("dist.compute")
        assert len(comm_spans) == len(compute_spans) == 2
        assert {s.meta["grid"] for s in comm_spans} == {"2x1x1"}
        measured = sum(s.meta["bytes"] for s in comm_spans)
        assert measured == proc.measured_comm_bytes
        assert tracer.counters["dist.comm_bytes"] == proc.measured_comm_bytes
        assert tracer.counters["dist.ranks"] == 2
        assert tracer.counters["dist.collectives"] > 0


class TestALSParity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_process_matches_sim_bitwise(self, dtype):
        tensor = _tensor(dtype)
        grid = ProcessGrid((2, 2, 1))
        sim = distributed_cp_als(tensor, 6, grid, MACHINE, n_iters=2, seed=1)
        proc = distributed_cp_als(
            tensor, 6, grid, MACHINE, n_iters=2, seed=1, backend="process"
        )
        assert proc.backend == "process"
        for a, b in zip(sim.model.factors, proc.model.factors):
            assert a.dtype == np.dtype(dtype) and b.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(sim.model.weights, proc.model.weights)
        assert sim.fits == proc.fits
        assert proc.measured_comm_bytes == proc.comm_bytes == sim.comm_bytes

    def test_fit_trajectory_tracks_serial(self):
        tensor = _tensor(np.float64)
        grid = ProcessGrid((2, 1, 1))
        proc = distributed_cp_als(
            tensor, 6, grid, MACHINE, n_iters=2, seed=1, backend="process"
        )
        serial = cp_als(tensor, 6, n_iters=2, seed=1)
        np.testing.assert_allclose(proc.fits, serial.fits, rtol=1e-8)
