"""Tests for grid selection and the strong-scaling driver."""

import pytest

from repro.dist import choose_grid, choose_rank_groups, strong_scaling
from repro.dist.driver import network_for_dataset
from repro.machine import power8_socket
from repro.tensor import poisson_tensor
from repro.tensor.datasets import DATASETS


class TestChooseGrid:
    def test_covers_processes(self):
        for p in (1, 2, 6, 8, 12, 64, 128):
            q, r, s = choose_grid(p, (100, 100, 100))
            assert q * r * s == p

    def test_long_mode_gets_large_factor(self):
        """Netflix-like shapes produce the paper's 64x2x1-style grids."""
        dims = choose_grid(128, (480_000, 18_000, 80))
        assert dims[0] == 64
        assert dims[2] == 1

    def test_cubic_tensor_gets_balanced_grid(self):
        dims = choose_grid(64, (1000, 1000, 1000))
        assert max(dims) / min(dims) <= 4

    def test_single_process(self):
        assert choose_grid(1, (5, 5, 5)) == (1, 1, 1)


class TestChooseRankGroups:
    def test_divisors_only(self):
        assert choose_rank_groups(12, 512) == [1, 2, 3, 4, 6, 12]

    def test_register_block_floor(self):
        # rank 32 allows at most 2 groups of 16 columns.
        assert choose_rank_groups(8, 32) == [1, 2]

    def test_rank_16_forbids_splitting(self):
        assert choose_rank_groups(64, 16) == [1]


class TestNetworkForDataset:
    def test_scales_latency_down(self):
        info = DATASETS["nell2"]
        net = network_for_dataset(info)
        from repro.dist import infiniband_edr

        assert net.alpha < infiniband_edr().alpha


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def points(self):
        tensor = poisson_tensor((60, 80, 70), 12_000, seed=33)
        machine = power8_socket().scaled(1.0 / 64.0)
        # Scale the network like the benchmark harness does: the test
        # tensor is ~1e-4 of a paper-scale problem.
        from repro.dist import infiniband_edr

        network = infiniband_edr().scaled(time_factor=1e-4, volume_factor=1e-2)
        return strong_scaling(
            tensor, 64, (1, 2, 4), machine, seed=1, network=network
        )

    def test_one_point_per_node_count(self, points):
        assert [p.nodes for p in points] == [1, 2, 4]
        assert [p.n_ranks for p in points] == [2, 4, 8]

    def test_ours_never_slower(self, points):
        """Table III: 'our blocking implementation ... always outperforms
        the baseline SPLATT implementations' (up to model noise)."""
        for p in points:
            assert p.best_ours <= p.splatt_time * 1.02

    def test_strong_scaling_monotone(self, points):
        times = [p.splatt_time for p in points]
        assert times == sorted(times, reverse=True)

    def test_grid_labels_well_formed(self, points):
        for p in points:
            parts = p.grid_3d.split("x")
            assert len(parts) == 3
            assert int(parts[0]) * int(parts[1]) * int(parts[2]) == p.n_ranks

    def test_speedup_positive(self, points):
        for p in points:
            assert p.speedup > 0
