"""Distributed MTTKRP correctness and accounting tests."""

import numpy as np
import pytest

from repro.blocking import RankBlocking
from repro.dist import (
    ProcessGrid,
    SimCluster,
    distributed_mttkrp,
    medium_grain_decompose,
)
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.tensor import clustered_tensor, poisson_tensor


@pytest.fixture(scope="module")
def problem():
    t = poisson_tensor((40, 60, 50), 6000, seed=11)
    rng = np.random.default_rng(3)
    factors = [rng.standard_normal((n, 32)) for n in t.shape]
    refs = [get_kernel("splatt").mttkrp(t, factors, m) for m in range(3)]
    return t, factors, refs


MACHINE = power8_socket()


class TestNumericalExactness:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 2), (4, 1, 2), (1, 3, 1)])
    def test_3d_matches_shared_memory(self, problem, dims):
        t, factors, refs = problem
        dec = medium_grain_decompose(t, ProcessGrid(dims), seed=7)
        res = distributed_mttkrp(dec, factors, 0, MACHINE)
        np.testing.assert_allclose(res.output, refs[0], rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_all_modes(self, problem, mode):
        t, factors, refs = problem
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=7)
        res = distributed_mttkrp(dec, factors, mode, MACHINE)
        np.testing.assert_allclose(res.output, refs[mode], rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("t_groups", [2, 4])
    def test_4d_matches_shared_memory(self, problem, t_groups):
        t, factors, refs = problem
        dec = medium_grain_decompose(t, ProcessGrid((2, 1, 2)), seed=7)
        res = distributed_mttkrp(
            dec, factors, 0, MACHINE, rank_groups=t_groups
        )
        np.testing.assert_allclose(res.output, refs[0], rtol=1e-10, atol=1e-12)

    def test_blocked_local_kernel_exact(self, problem):
        t, factors, refs = problem
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=7)
        res = distributed_mttkrp(
            dec,
            factors,
            0,
            MACHINE,
            local_block_counts=(2, 4, 2),
            local_rank_blocking=RankBlocking(n_blocks=2),
        )
        np.testing.assert_allclose(res.output, refs[0], rtol=1e-10, atol=1e-12)

    def test_clustered_data(self):
        t = clustered_tensor((50, 50, 50), 4000, seed=13)
        rng = np.random.default_rng(14)
        factors = [rng.standard_normal((n, 8)) for n in t.shape]
        ref = get_kernel("splatt").mttkrp(t, factors, 0)
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 2)), seed=15)
        res = distributed_mttkrp(dec, factors, 0, MACHINE, rank_groups=2)
        np.testing.assert_allclose(res.output, ref, rtol=1e-10, atol=1e-12)


class TestAccounting:
    def test_single_process_no_comm_volume(self, problem):
        t, factors, _ = problem
        dec = medium_grain_decompose(t, ProcessGrid((1, 1, 1)), seed=7)
        res = distributed_mttkrp(dec, factors, 0, MACHINE)
        assert res.comm_bytes == 0.0

    def test_comm_volume_grows_with_processes(self, problem):
        t, factors, _ = problem
        vols = []
        for dims in ((1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)):
            dec = medium_grain_decompose(t, ProcessGrid(dims), seed=7)
            res = distributed_mttkrp(dec, factors, 0, MACHINE)
            vols.append(res.comm_bytes)
        assert vols == sorted(vols)

    def test_compute_shrinks_with_processes(self, problem):
        t, factors, _ = problem
        dec1 = medium_grain_decompose(t, ProcessGrid((1, 1, 1)), seed=7)
        dec8 = medium_grain_decompose(t, ProcessGrid((2, 2, 2)), seed=7)
        one = distributed_mttkrp(dec1, factors, 0, MACHINE)
        eight = distributed_mttkrp(dec8, factors, 0, MACHINE)
        assert eight.max_compute_time < one.max_compute_time

    def test_4d_reduces_comm_vs_3d_at_same_p(self, problem):
        """The paper's core claim: rank groups keep more nonzeros per
        process without adding communication, beyond one allgather."""
        t, factors, _ = problem
        p = 8
        dec3 = medium_grain_decompose(t, ProcessGrid((2, 2, 2)), seed=7)
        res3 = distributed_mttkrp(dec3, factors, 0, MACHINE)
        dec4 = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=7)
        res4 = distributed_mttkrp(dec4, factors, 0, MACHINE, rank_groups=2)
        assert res4.comm_bytes < res3.comm_bytes

    def test_grid_label(self, problem):
        t, factors, _ = problem
        dec = medium_grain_decompose(t, ProcessGrid((2, 1, 2)), seed=7)
        res = distributed_mttkrp(dec, factors, 0, MACHINE, rank_groups=2)
        assert res.grid_label == "2x1x2x2"

    def test_total_time_covers_compute(self, problem):
        t, factors, _ = problem
        dec = medium_grain_decompose(t, ProcessGrid((2, 2, 1)), seed=7)
        res = distributed_mttkrp(dec, factors, 0, MACHINE)
        assert res.total_time >= res.max_compute_time
