"""Tests for the simulated MPI collectives."""

import numpy as np
import pytest

from repro.dist import SimCluster
from repro.util.errors import DistributionError


@pytest.fixture
def cluster():
    return SimCluster(8)


class TestAllgather:
    def test_everyone_gets_everything(self, cluster):
        bufs = [np.full(3, float(r)) for r in range(4)]
        out = cluster.allgather([0, 1, 2, 3], bufs)
        assert len(out) == 4
        for per_rank in out:
            np.testing.assert_array_equal(
                np.concatenate(per_rank), [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]
            )

    def test_ledger_records(self, cluster):
        cluster.allgather([0, 1], [np.zeros(10), np.zeros(10)])
        assert len(cluster.ledger.records) == 1
        assert cluster.ledger.records[0].op == "allgather"
        assert cluster.ledger.total_bytes > 0

    def test_group_validation(self, cluster):
        with pytest.raises(DistributionError):
            cluster.allgather([0, 0], [np.zeros(1), np.zeros(1)])
        with pytest.raises(DistributionError):
            cluster.allgather([0, 99], [np.zeros(1), np.zeros(1)])
        with pytest.raises(DistributionError):
            cluster.allgather([0, 1], [np.zeros(1)])


class TestReduceScatter:
    def test_sum_and_scatter(self, cluster):
        bufs = [np.ones((4, 2)) * (r + 1) for r in range(2)]
        chunks = cluster.reduce_scatter([2, 5], bufs)
        assert len(chunks) == 2
        np.testing.assert_array_equal(chunks[0], np.full((2, 2), 3.0))
        np.testing.assert_array_equal(chunks[1], np.full((2, 2), 3.0))

    def test_uneven_rows(self, cluster):
        bufs = [np.arange(5.0).reshape(5, 1)] * 3
        chunks = cluster.reduce_scatter([0, 1, 2], bufs)
        assert sum(c.shape[0] for c in chunks) == 5
        np.testing.assert_array_equal(np.concatenate(chunks).ravel(), 3 * np.arange(5.0))

    def test_shape_mismatch(self, cluster):
        with pytest.raises(DistributionError):
            cluster.reduce_scatter([0, 1], [np.zeros(3), np.zeros(4)])


class TestAllreduce:
    def test_sum_everywhere(self, cluster):
        bufs = [np.full(3, float(r)) for r in range(3)]
        out = cluster.allreduce([0, 1, 2], bufs)
        for o in out:
            np.testing.assert_array_equal(o, [3.0, 3.0, 3.0])

    def test_input_not_mutated(self, cluster):
        a = np.ones(2)
        cluster.allreduce([0, 1], [a, np.ones(2)])
        np.testing.assert_array_equal(a, [1.0, 1.0])


class TestLedger:
    def test_rank_time_synchronizes_groups(self, cluster):
        """A collective finishes at the latest participant's arrival."""
        cluster.ledger.advance(0, 5.0)
        cluster.allgather([0, 1], [np.zeros(1), np.zeros(1)])
        # Rank 1 waited for rank 0.
        assert cluster.ledger.rank_time[1] >= 5.0
        assert cluster.ledger.makespan >= 5.0

    def test_makespan_is_max(self, cluster):
        cluster.ledger.advance(3, 2.0)
        cluster.ledger.advance(5, 7.0)
        assert cluster.ledger.makespan == pytest.approx(7.0)

    def test_barrier_costs_latency_only(self, cluster):
        cluster.barrier([0, 1, 2, 3])
        rec = cluster.ledger.records[-1]
        assert rec.bytes_moved == 0.0
        assert rec.time > 0.0


class TestSplit:
    def test_groups_by_color(self):
        groups = SimCluster.split([0, 1, 2, 3, 4, 5], [0, 1, 0, 1, 0, 1])
        assert groups == {0: [0, 2, 4], 1: [1, 3, 5]}

    def test_length_mismatch(self):
        with pytest.raises(DistributionError):
            SimCluster.split([0, 1], [0])
