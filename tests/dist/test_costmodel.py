"""Tests for the alpha-beta network model."""

import pytest

from repro.dist import NetworkModel, infiniband_edr
from repro.util.errors import ReproError


@pytest.fixture
def net():
    return NetworkModel("test", alpha=1e-6, beta=1e9)


class TestPrimitives:
    def test_p2p(self, net):
        assert net.p2p(1e6) == pytest.approx(1e-6 + 1e-3)

    def test_allgather_single_rank_free(self, net):
        assert net.allgather(1, 1e6) == 0.0

    def test_allgather_ring_volume(self, net):
        # p=4, 1 MB per rank: each rank receives 3 MB over 3 steps.
        t = net.allgather(4, 1e6)
        assert t == pytest.approx(3e-6 + 3e6 / 1e9)

    def test_reduce_scatter_volume(self, net):
        t = net.reduce_scatter(4, 4e6)
        assert t == pytest.approx(3e-6 + 3e6 / 1e9)

    def test_allreduce_is_rs_plus_ag(self, net):
        t = net.allreduce(8, 1e6)
        assert t == pytest.approx(
            net.reduce_scatter(8, 1e6) + net.allgather(8, 1e6 / 8)
        )

    def test_barrier_log_latency(self, net):
        assert net.barrier(8) == pytest.approx(3e-6)
        assert net.barrier(1) == 0.0

    def test_cost_grows_with_ranks(self, net):
        costs = [net.allgather(p, 1e6) for p in (2, 4, 8, 16)]
        assert costs == sorted(costs)


class TestScaling:
    def test_scaled_preserves_balance(self, net):
        """Latency scales with compute time; the bandwidth term scales
        with volume/time."""
        s = net.scaled(time_factor=1e-3, volume_factor=1e-2)
        assert s.alpha == pytest.approx(net.alpha * 1e-3)
        # A message 100x smaller should take 1000x less bandwidth time:
        t_orig = 1e6 / net.beta
        t_scaled = 1e4 / s.beta
        assert t_scaled == pytest.approx(t_orig * 1e-3)

    def test_bad_factors(self, net):
        with pytest.raises(ReproError):
            net.scaled(0, 1)

    def test_validation(self):
        with pytest.raises(ReproError):
            NetworkModel("x", alpha=-1, beta=1)
        with pytest.raises(ReproError):
            NetworkModel("x", alpha=0, beta=0)

    def test_infiniband_defaults(self):
        ib = infiniband_edr()
        assert ib.alpha > 0 and ib.beta > 1e9
