#!/usr/bin/env python
"""Quickstart: sparse tensors, MTTKRP kernels, and a CP decomposition.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cpd import cp_als
from repro.kernels import get_kernel, reference_mttkrp
from repro.tensor import COOTensor, SplattTensor, poisson_tensor
from repro.util import format_bytes

# ----------------------------------------------------------------------
# 1. Build a sparse count tensor (Poisson mixture, like the paper's
#    synthetic data sets).
# ----------------------------------------------------------------------
tensor = poisson_tensor((60, 80, 70), 20_000, seed=42)
print(f"tensor: {tensor}  density={tensor.density:.2e}")

# ----------------------------------------------------------------------
# 2. Compress into the SPLATT fiber format (Figure 1b) and compare
#    storage against coordinate format (Section III-C).
# ----------------------------------------------------------------------
splatt = SplattTensor.from_coo(tensor, output_mode=0)
print(
    f"SPLATT: {splatt.n_fibers} fibers "
    f"({splatt.nnz / splatt.n_fibers:.2f} nonzeros each), "
    f"storage {format_bytes(splatt.memory_bytes())} vs "
    f"COO {format_bytes(tensor.memory_bytes())}"
)

# ----------------------------------------------------------------------
# 3. Run the mode-0 MTTKRP with several kernels and check they agree.
# ----------------------------------------------------------------------
rank = 16
rng = np.random.default_rng(0)
factors = [rng.standard_normal((n, rank)) for n in tensor.shape]

reference = reference_mttkrp(tensor, factors, 0)
for name, params in [
    ("coo", {}),
    ("splatt", {}),
    ("mb", {"block_counts": (1, 4, 2)}),
    ("rankb", {"n_rank_blocks": 2}),
    ("mb+rankb", {"block_counts": (1, 4, 2), "n_rank_blocks": 2}),
]:
    out = get_kernel(name).mttkrp(tensor, factors, 0, **params)
    err = np.max(np.abs(out - reference))
    print(f"kernel {name:9s}: max |error| vs dense reference = {err:.2e}")

# ----------------------------------------------------------------------
# 4. The application: a rank-8 CP decomposition via ALS.  The kernel's
#    plan is prepared once per mode and reused across all iterations.
# ----------------------------------------------------------------------
result = cp_als(tensor, rank=8, n_iters=25, tol=1e-5, kernel="splatt", seed=1)
print(
    f"CP-ALS: fit={result.final_fit:.4f} after {result.n_iters} iterations "
    f"(converged={result.converged})"
)
print(f"model: {result.model}")
