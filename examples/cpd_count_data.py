#!/usr/bin/env python
"""End-to-end CP decomposition of count data with a blocked kernel.

The motivating workload of the paper's introduction: factor-analyzing a
multi-way count tensor (network traffic / social interactions style).
We plant a ground-truth low-rank structure, decompose with CP-ALS driven
by the MB+RankB kernel, and inspect what the model recovered.

Run:  python examples/cpd_count_data.py
"""

import numpy as np

from repro.cpd import KruskalTensor, cp_als
from repro.tensor import COOTensor
from repro.util import format_table

# ----------------------------------------------------------------------
# Plant a rank-4 "communication patterns" tensor: sources x targets x
# hours, four latent behaviours with distinct daily profiles.
# ----------------------------------------------------------------------
rng = np.random.default_rng(7)
n_src, n_dst, n_hours, true_rank = 80, 90, 24, 4

src_load = rng.dirichlet(np.full(n_src, 0.08), size=true_rank).T
dst_load = rng.dirichlet(np.full(n_dst, 0.08), size=true_rank).T
hour_profiles = np.zeros((n_hours, true_rank))
for r, peak in enumerate((3, 9, 14, 21)):  # night, morning, lunch, evening
    hour_profiles[:, r] = np.exp(-0.5 * ((np.arange(n_hours) - peak) / 2.5) ** 2)
hour_profiles /= hour_profiles.sum(axis=0)

rates = np.full(true_rank, 60_000.0)
truth = KruskalTensor(rates, [src_load, dst_load, hour_profiles])

# Sample event counts from the model (Poisson thinning via multinomial).
events_per_component = rng.multinomial(240_000, rates / rates.sum())
coords = []
for r, n_events in enumerate(events_per_component):
    i = rng.choice(n_src, size=n_events, p=src_load[:, r])
    j = rng.choice(n_dst, size=n_events, p=dst_load[:, r])
    k = rng.choice(n_hours, size=n_events, p=hour_profiles[:, r])
    coords.append(np.stack([i, j, k], axis=1))
tensor = COOTensor(
    (n_src, n_dst, n_hours),
    np.concatenate(coords),
    np.ones(sum(events_per_component)),
).deduplicate()
print(f"observed tensor: {tensor} (counts, density {tensor.density:.3f})")

# ----------------------------------------------------------------------
# Decompose with the combined blocked kernel.
# ----------------------------------------------------------------------
result = cp_als(
    tensor,
    rank=true_rank,
    n_iters=60,
    tol=1e-6,
    kernel="mb+rankb",
    kernel_params={"block_counts": (2, 2, 1), "n_rank_blocks": 1},
    init="hosvd",
    seed=1,
)
print(
    f"CP-ALS (mb+rankb kernel): fit={result.final_fit:.4f} in "
    f"{result.n_iters} iterations\n"
)

# ----------------------------------------------------------------------
# Interpret: each recovered component's peak hour should match a planted
# behaviour.
# ----------------------------------------------------------------------
model = result.model.normalize()
order = np.argsort(-model.weights)
rows = []
for rank_pos, r in enumerate(order):
    hour_col = np.abs(model.factors[2][:, r])
    peak = int(np.argmax(hour_col))
    top_src = int(np.argmax(np.abs(model.factors[0][:, r])))
    rows.append(
        [
            rank_pos + 1,
            f"{model.weights[r]:.3g}",
            f"{peak:02d}:00",
            top_src,
            f"{hour_col[peak] / hour_col.sum():.2f}",
        ]
    )
print(
    format_table(
        ["component", "weight", "peak hour", "top source", "peak share"],
        rows,
        title="recovered components (planted peaks: 03:00, 09:00, 14:00, 21:00)",
    )
)
recovered_peaks = sorted(int(row[2][:2]) for row in rows)
print(f"\nplanted peaks: [3, 9, 14, 21]  recovered: {recovered_peaks}")
