#!/usr/bin/env python
"""Higher-order (4-mode) MTTKRP with blocked CSF kernels.

The paper evaluates 3-mode tensors but notes its methodology "can
trivially be extended to higher-order data"; this example exercises that
extension: a 4-mode tensor (user x item x word x week, an Amazon-review
shape), the general CSF kernel, its blocked variant, the machine model
on both, and a 4-mode CP decomposition.

Run:  python examples/higher_order.py
"""

import numpy as np

from repro.cpd import cp_als
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.perf import predict_time
from repro.tensor import CSFTensor, clustered_tensor

# A 4-mode clustered tensor: reviews have dense (user-group, item-group)
# sub-structure.
tensor = clustered_tensor(
    (300, 250, 400, 52), 60_000, n_clusters=24, seed=11
)
print(f"tensor: {tensor}")

csf = CSFTensor.from_coo(tensor, mode_order=(0, 3, 1, 2))
print(f"CSF tree nodes per level: {csf.nodes_per_level()}")

# ----------------------------------------------------------------------
# MTTKRP with the plain and blocked CSF kernels.  (The tensor is too
# large to densify, so the agreement check is kernel-vs-kernel; the test
# suite covers both against the dense reference at smaller sizes.)
# ----------------------------------------------------------------------
rank = 24
rng = np.random.default_rng(1)
factors = [rng.standard_normal((n, rank)) for n in tensor.shape]

plain = get_kernel("csf").mttkrp(tensor, factors, 0)
blocked = get_kernel("csf-blocked").mttkrp(
    tensor, factors, 0, block_counts=(1, 2, 4, 1), n_rank_blocks=2
)
print(f"blocked vs plain CSF max |diff|: {np.max(np.abs(blocked - plain)):.2e}")

# ----------------------------------------------------------------------
# The machine model works on 4-mode plans too.
# ----------------------------------------------------------------------
machine = power8_socket().scaled(1.0 / 64.0)
base_plan = get_kernel("csf").prepare(tensor, 0)
blocked_plan = get_kernel("csf-blocked").prepare(
    tensor, 0, block_counts=(1, 2, 4, 1), n_rank_blocks=2
)
for label, plan in (("baseline csf", base_plan), ("blocked csf", blocked_plan)):
    tb = predict_time(plan, 256, machine)
    print(
        f"{label:13s}: modeled {tb.total * 1e3:7.3f} ms "
        f"(B traffic {tb.b_time * 1e3:6.3f} ms, loads {tb.load_time * 1e3:6.3f} ms)"
    )

# ----------------------------------------------------------------------
# 4-mode CP decomposition through the CSF kernel.
# ----------------------------------------------------------------------
result = cp_als(tensor, rank=6, n_iters=15, kernel="csf", seed=2)
print(f"\n4-mode CP-ALS: fit={result.final_fit:.4f} in {result.n_iters} iters")
