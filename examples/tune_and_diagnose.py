#!/usr/bin/env python
"""Diagnose a tensor and autotune its MTTKRP — the workflow the paper's
conclusion sketches as future work.

1. structural analysis (:func:`repro.tensor.analyze`);
2. performance diagnosis of the baseline kernel
   (:func:`repro.perf.performance_report`);
3. autotuning with a persistent cache (:mod:`repro.tune`) — run the
   script twice to see the cache hit.

Run:  python examples/tune_and_diagnose.py [dataset]
"""

import os
import sys

from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.perf import performance_report
from repro.tensor import analyze, load_dataset
from repro.tensor.datasets import DATASETS
from repro.tune import Tuner, TuningCache

dataset = sys.argv[1] if len(sys.argv) > 1 else "poisson3"
tensor = load_dataset(dataset)
machine = power8_socket().scaled(DATASETS[dataset].machine_scale)

# ----------------------------------------------------------------------
# 1. What does the tensor look like?
# ----------------------------------------------------------------------
print("=== structure ===")
print(analyze(tensor).render())

# ----------------------------------------------------------------------
# 2. How does the baseline kernel behave on it?
# ----------------------------------------------------------------------
print("\n=== baseline diagnosis (R=512) ===")
plan = get_kernel("splatt").prepare(tensor, 0)
print(performance_report(plan, 512, machine).render())

# ----------------------------------------------------------------------
# 3. Autotune, with a cache persisted next to this script.
# ----------------------------------------------------------------------
cache_path = os.path.join(os.path.dirname(__file__), ".tuning_cache.json")
cache = TuningCache.load(cache_path) if os.path.exists(cache_path) else TuningCache()
tuner = Tuner(tensor, 0, machine, cache=cache)

print("\n=== autotuning ===")
for rank in (128, 512):
    cfg = tuner.get_or_tune(rank)
    source = "cache" if cfg.from_cache else f"{cfg.strategy} search ({cfg.n_evaluations} evals)"
    grid = "x".join(map(str, cfg.block_counts)) if cfg.block_counts else "-"
    strips = (
        f"{cfg.rank_blocking.resolve_block_cols(rank)}-col strips"
        if cfg.rank_blocking
        else "no strips"
    )
    print(
        f"R={rank:4d}: {cfg.speedup:.2f}x over SPLATT  "
        f"[MB {grid}, {strips}]  via {source}"
    )
cache.save(cache_path)
print(f"\ntuning cache saved to {cache_path} ({len(cache)} entries)")

# ----------------------------------------------------------------------
# 4. Diagnose the tuned configuration.
# ----------------------------------------------------------------------
cfg = tuner.get_or_tune(512)
tuned_plan = tuner.planner.plan_for(cfg.block_counts, cfg.rank_blocking)
print("\n=== tuned diagnosis (R=512) ===")
print(performance_report(tuned_plan, 512, machine).render())
