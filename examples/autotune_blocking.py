#!/usr/bin/env python
"""Autotuning blocking configurations with the Section V-C heuristic.

For a chosen data set, sweeps the decomposition rank and reports the
block sizes the greedy search picks and the modeled speedup over
baseline SPLATT — a miniature of the paper's Figure 6 pipeline, and the
"well designed autotuning framework" its conclusion calls for.

Run:  python examples/autotune_blocking.py [dataset]
"""

import sys

from repro.blocking import select_blocking
from repro.machine import power8_socket
from repro.perf import ConfigPlanner
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS
from repro.util import format_seconds, format_table

dataset = sys.argv[1] if len(sys.argv) > 1 else "poisson2"
tensor = load_dataset(dataset)
machine = power8_socket().scaled(DATASETS[dataset].machine_scale)
print(f"dataset: {dataset} -> {tensor}")
print(f"machine: {machine.describe()}\n")

planner = ConfigPlanner(tensor, mode=0)
rows = []
for rank in (16, 32, 64, 128, 256, 512):
    evaluate = planner.evaluator(rank, machine)
    baseline = evaluate(None, None)
    choice = select_blocking(tensor, 0, rank, evaluate)
    grid = (
        "x".join(str(c) for c in choice.block_counts)
        if choice.block_counts
        else "-"
    )
    strips = (
        f"{choice.rank_blocking.block_cols} cols"
        if choice.rank_blocking
        else "-"
    )
    rows.append(
        [
            rank,
            format_seconds(baseline),
            format_seconds(choice.cost),
            f"{baseline / choice.cost:.2f}x",
            grid,
            strips,
            choice.n_evaluations,
        ]
    )

print(
    format_table(
        ["rank", "SPLATT", "tuned", "speedup", "MB grid", "rank strip", "evals"],
        rows,
        title="Section V-C heuristic choices (modeled times)",
    )
)
