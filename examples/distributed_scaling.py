#!/usr/bin/env python
"""Distributed MTTKRP strong scaling (Table III in miniature).

Runs the simulated cluster on a data-set stand-in: distributed SPLATT
versus our blocked 3D and rank-extended 4D configurations, verifying the
distributed result numerically against the shared-memory kernel along
the way.

Run:  python examples/distributed_scaling.py [dataset] [rank]
"""

import sys

import numpy as np

from repro.dist import (
    ProcessGrid,
    distributed_mttkrp,
    medium_grain_decompose,
    network_for_dataset,
    strong_scaling,
)
from repro.kernels import get_kernel
from repro.machine import power8_socket
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS
from repro.util import format_seconds, format_table

dataset = sys.argv[1] if len(sys.argv) > 1 else "nell2"
rank = int(sys.argv[2]) if len(sys.argv) > 2 else 128

info = DATASETS[dataset]
tensor = load_dataset(dataset)
machine = power8_socket().scaled(info.machine_scale)
network = network_for_dataset(info)
print(f"dataset: {dataset} -> {tensor}, rank {rank}")

# ----------------------------------------------------------------------
# First: one distributed run, checked against the shared-memory kernel.
# ----------------------------------------------------------------------
rng = np.random.default_rng(0)
factors = [rng.standard_normal((n, rank)) for n in tensor.shape]
decomp = medium_grain_decompose(tensor, ProcessGrid((2, 2, 2)), seed=0)
dist = distributed_mttkrp(decomp, factors, 0, machine, rank_groups=2)
reference = get_kernel("splatt").mttkrp(tensor, factors, 0)
err = np.max(np.abs(dist.output - reference))
print(
    f"4D run on {dist.grid_label}: max |error| vs shared memory = {err:.2e}, "
    f"imbalance = {decomp.imbalance():.2f}, "
    f"comm volume = {dist.comm_bytes / 2**20:.1f} MiB\n"
)

# ----------------------------------------------------------------------
# Then the Table III sweep.
# ----------------------------------------------------------------------
points = strong_scaling(
    tensor, rank, (1, 2, 4, 8, 16, 32, 64), machine, network=network
)
rows = [
    [
        p.nodes,
        format_seconds(p.splatt_time),
        p.grid_3d,
        format_seconds(p.time_3d),
        p.grid_4d,
        format_seconds(p.time_4d),
        f"{p.speedup:.2f}x",
    ]
    for p in points
]
print(
    format_table(
        ["nodes", "SPLATT", "3D grid", "3D time", "4D grid", "4D time", "speedup"],
        rows,
        title=f"Table III ({dataset}, R={rank}): strong scaling",
    )
)
