#!/usr/bin/env python
"""Roofline analysis of sparse MTTKRP (Section IV-A / Figure 2).

Prints the Equation 3 arithmetic-intensity grid, the POWER8 roofline
bound, and the memory-bound verdict for a real tensor measured through
the machine model.

Run:  python examples/roofline_analysis.py
"""

from repro.bench import experiment_fig2, render_series
from repro.kernels import get_kernel
from repro.machine import estimate_traffic, power8_socket
from repro.perf import (
    arithmetic_intensity,
    attainable_gflops,
    is_memory_bound,
    predict_time,
)
from repro.tensor import load_dataset
from repro.tensor.datasets import DATASETS

machine = power8_socket()
print(machine.describe())
print(f"system balance: {machine.system_balance:.1f} flops/byte\n")

# ----------------------------------------------------------------------
# Figure 2: intensity vs rank for a grid of cache hit rates.
# ----------------------------------------------------------------------
data = experiment_fig2()
print(render_series(data["x_label"], data["x_values"], data["series"],
                    title="Figure 2: arithmetic intensity of SPLATT MTTKRP"))

# ----------------------------------------------------------------------
# Roofline bound at a few operating points.
# ----------------------------------------------------------------------
print("\nroofline attainable performance:")
for rank in (16, 128, 1024):
    for alpha in (0.8, 0.95, 1.0):
        ai = arithmetic_intensity(rank, alpha)
        bound = attainable_gflops(machine, ai)
        verdict = "memory-bound" if is_memory_bound(machine, rank, alpha) else "compute-bound"
        print(
            f"  R={rank:5d} alpha={alpha:4.2f}: I={ai:6.2f} flops/B -> "
            f"{bound:7.1f} Gflop/s ({verdict})"
        )

# ----------------------------------------------------------------------
# A measured alpha for a real stand-in, through the traffic model.
# ----------------------------------------------------------------------
name = "poisson3"
tensor = load_dataset(name)
scaled = machine.scaled(DATASETS[name].machine_scale)
plan = get_kernel("splatt").prepare(tensor, 0)
for rank in (32, 256):
    traffic = estimate_traffic(plan, rank, scaled)
    tb = predict_time(plan, rank, scaled)
    print(
        f"\n{name} @ R={rank}: modeled alpha={traffic.factor_alpha:.3f} "
        f"(B alone: {traffic.b.alpha:.3f}), "
        f"memory time {tb.memory_time * 1e3:.2f} ms vs "
        f"flop time {tb.flop_time * 1e3:.2f} ms"
    )
    print(f"  -> intensity at that alpha: "
          f"{arithmetic_intensity(rank, traffic.factor_alpha):.2f} flops/byte; "
          f"{'memory' if is_memory_bound(scaled, rank, traffic.factor_alpha) else 'compute'}-bound")
