"""Wire protocol and job specification for :mod:`repro.serve`.

Frames are newline-delimited JSON (NDJSON): one UTF-8 JSON object per
line, at most :data:`MAX_FRAME_BYTES` bytes including the terminator.
The format is deliberately boring — it can be driven from a shell with
``nc`` and a here-doc — and every request/response pair is correlated by
the client-chosen ``id`` field so responses may arrive out of submission
order on a pipelined connection.

Requests
--------
``{"op": "ping", "id": ...}``
    Liveness probe; answers immediately.
``{"op": "submit", "id": ..., "job": {...}, "deadline_ms": ..., "priority": ..., "job_id": ...}``
    Enqueue one MTTKRP job (see :class:`JobSpec`); the response is sent
    when the job completes, fails, expires, or is cancelled.  The
    optional client-chosen ``job_id`` names the job up front so another
    connection can ``cancel`` it before the response arrives.
``{"op": "cancel", "id": ..., "job_id": ...}``
    Request cancellation of a previously submitted job.
``{"op": "stats", "id": ...}``
    Counters, queue depth, warm-cache stats, latency percentiles.
``{"op": "drain", "id": ...}``
    Graceful shutdown: stop admitting, finish queued + in-flight jobs,
    then answer with the drain report.

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error":
{"code": ..., "message": ...}}``; :data:`ERROR_CODES` is the closed set
of codes, and ``queue_full`` rejections carry ``retry_after_ms``.

Tensors are named by *reference*, never shipped densely: a job points at
a registry dataset, a synthetic-generator recipe, or (for tests) a small
inline COO payload.  Two jobs with the same reference are guaranteed the
same tensor, which is what makes signature batching and warm-config
reuse sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.kernels import KERNELS
from repro.tensor.coo import COOTensor
from repro.tensor.datasets import DATASETS
from repro.tensor.generate import (
    clustered_tensor,
    poisson_tensor,
    power_law_tensor,
    uniform_random_tensor,
)
from repro.util.errors import ServeError

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "JobSpec",
    "ProtocolError",
    "TensorRef",
    "decode_frame",
    "encode_frame",
    "error_response",
    "factors_for_spec",
    "ok_response",
    "result_sha256",
]

#: Default per-frame byte budget (requests name tensors by reference, so
#: a legitimate frame is a few hundred bytes; inline test tensors may
#: reach kilobytes — a megabyte line is a protocol violation).
MAX_FRAME_BYTES = 1 << 20

#: The closed set of machine-readable error codes.
ERROR_CODES = frozenset(
    {
        "malformed",  # not a JSON object
        "oversized",  # frame exceeded MAX_FRAME_BYTES
        "unknown_op",  # op not in the table above
        "invalid_job",  # job spec failed validation
        "queue_full",  # admission queue at capacity (carries retry_after_ms)
        "deadline_expired",  # job deadline passed before completion
        "cancelled",  # job cancelled on request
        "shutting_down",  # server draining; no new admissions
        "internal",  # unexpected failure while running the job
    }
)

#: Value dtypes the service accepts (the stack's supported precisions).
_DTYPES = ("float32", "float64")

#: Synthetic generator recipes a job may reference.
_GENERATORS = {
    "poisson": poisson_tensor,
    "uniform": uniform_random_tensor,
    "clustered": clustered_tensor,
    "power_law": power_law_tensor,
}

#: Upper bound on synthetic/inline tensor size — a request is a unit of
#: serving work, not a batch import.
_MAX_REQUEST_NNZ = 5_000_000

#: Which tuned-configuration fields each kernel's ``prepare`` accepts.
TUNABLE_KERNELS: dict[str, tuple[str, ...]] = {
    "mb": ("block_counts",),
    "csf-blocked": ("block_counts", "rank_blocking"),
    "mb+rankb": ("block_counts", "rank_blocking"),
    "rankb": ("rank_blocking",),
}


class ProtocolError(ServeError):
    """A request violated the wire protocol or the job-spec schema."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# framing
def encode_frame(obj: dict) -> bytes:
    """Serialize one frame (compact JSON + newline)."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one frame; raises ``ProtocolError('malformed')``."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed", f"frame is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError(
            "malformed", f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def ok_response(req_id: object, op: str, **fields: Any) -> dict:
    resp: dict = {"ok": True, "op": op, "id": req_id}
    resp.update(fields)
    return resp


def error_response(
    req_id: object, op: str, code: str, message: str, **fields: Any
) -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    resp: dict = {
        "ok": False,
        "op": op,
        "id": req_id,
        "error": {"code": code, "message": message},
    }
    resp.update(fields)
    return resp


# ----------------------------------------------------------------------
# tensor references
def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError("invalid_job", message)


@dataclass(frozen=True)
class TensorRef:
    """A by-reference description of a job's tensor.

    ``kind`` is ``"dataset"`` (Table II registry stand-in), ``"synthetic"``
    (a generator recipe), or ``"inline"`` (explicit COO, for tests).  Two
    equal refs build bit-identical tensors, so the ref doubles as the
    tensor-cache key and a component of the batching key.
    """

    kind: str
    dtype: str = "float64"
    #: dataset: registry name; synthetic: generator name.
    name: str = ""
    seed: int = 0
    #: synthetic only.
    dims: "tuple[int, ...]" = ()
    nnz: int = 0
    #: inline only (tuples keep the ref hashable).
    shape: "tuple[int, ...]" = ()
    coords: "tuple[tuple[int, ...], ...]" = ()
    values: "tuple[float, ...]" = ()

    @classmethod
    def from_payload(cls, d: dict) -> "TensorRef":
        _require(isinstance(d, dict), "tensor must be a JSON object")
        dtype = str(d.get("dtype", "float64"))
        _require(
            dtype in _DTYPES, f"tensor dtype must be one of {_DTYPES}, got {dtype!r}"
        )
        if "dataset" in d:
            name = str(d["dataset"])
            _require(
                name in DATASETS,
                f"unknown dataset {name!r}; known: {sorted(DATASETS)}",
            )
            return cls(
                kind="dataset", dtype=dtype, name=name, seed=int(d.get("seed", 0))
            )
        if "synthetic" in d:
            name = str(d["synthetic"])
            _require(
                name in _GENERATORS,
                f"unknown generator {name!r}; known: {sorted(_GENERATORS)}",
            )
            dims = d.get("dims")
            _require(
                isinstance(dims, (list, tuple)) and len(dims) >= 2,
                "synthetic tensor needs dims: [I0, I1, ...]",
            )
            dims = tuple(int(x) for x in dims)
            _require(all(x > 0 for x in dims), "dims must be positive")
            nnz = int(d.get("nnz", 0))
            _require(
                0 < nnz <= _MAX_REQUEST_NNZ,
                f"nnz must be in (0, {_MAX_REQUEST_NNZ}], got {nnz}",
            )
            return cls(
                kind="synthetic",
                dtype=dtype,
                name=name,
                seed=int(d.get("seed", 0)),
                dims=dims,
                nnz=nnz,
            )
        if "shape" in d:
            shape = tuple(int(x) for x in d["shape"])
            _require(
                len(shape) >= 2 and all(x > 0 for x in shape),
                "inline shape must be >= 2 positive mode lengths",
            )
            coords = d.get("coords")
            values = d.get("values")
            _require(
                isinstance(coords, (list, tuple))
                and isinstance(values, (list, tuple))
                and len(coords) == len(values),
                "inline tensor needs coords and values of equal length",
            )
            _require(
                0 < len(values) <= _MAX_REQUEST_NNZ,
                f"inline nnz must be in (0, {_MAX_REQUEST_NNZ}]",
            )
            try:
                coords_t = tuple(
                    tuple(int(i) for i in row) for row in coords
                )
                values_t = tuple(float(v) for v in values)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    "invalid_job", f"inline coords/values not numeric: {exc}"
                )
            _require(
                all(len(row) == len(shape) for row in coords_t),
                "every inline coordinate needs one index per mode",
            )
            return cls(
                kind="inline",
                dtype=dtype,
                shape=shape,
                coords=coords_t,
                values=values_t,
            )
        raise ProtocolError(
            "invalid_job",
            "tensor must name one of: dataset, synthetic, shape (inline)",
        )

    def build(self) -> COOTensor:
        """Materialize the tensor (deterministic for an equal ref)."""
        if self.kind == "dataset":
            t = DATASETS[self.name].build(seed=self.seed)
        elif self.kind == "synthetic":
            t = _GENERATORS[self.name](self.dims, self.nnz, seed=self.seed)
        else:
            t = COOTensor(
                self.shape,
                np.asarray(self.coords, dtype=np.int64),
                np.asarray(self.values, dtype=np.float64),
            )
            t = t.deduplicate()
        if t.values.dtype != np.dtype(self.dtype):
            t = COOTensor(
                t.shape, t.indices, t.values.astype(np.dtype(self.dtype))
            )
        return t

    def key(self) -> str:
        """Stable identity string (tensor-cache + batching key component)."""
        if self.kind == "inline":
            h = hashlib.sha256()
            h.update(repr(self.shape).encode())
            h.update(np.asarray(self.coords, dtype=np.int64).tobytes())
            h.update(np.asarray(self.values, dtype=np.float64).tobytes())
            return f"inline:{h.hexdigest()[:16]}:{self.dtype}"
        return f"{self.kind}:{self.name}:{self.seed}:{self.dtype}"

    def to_payload(self) -> dict:
        if self.kind == "dataset":
            return {"dataset": self.name, "seed": self.seed, "dtype": self.dtype}
        if self.kind == "synthetic":
            return {
                "synthetic": self.name,
                "dims": list(self.dims),
                "nnz": self.nnz,
                "seed": self.seed,
                "dtype": self.dtype,
            }
        return {
            "shape": list(self.shape),
            "coords": [list(r) for r in self.coords],
            "values": list(self.values),
            "dtype": self.dtype,
        }


# ----------------------------------------------------------------------
# job specification
@dataclass(frozen=True)
class JobSpec:
    """One validated MTTKRP job: tensor reference + execution request."""

    tensor: TensorRef
    mode: int = 0
    rank: int = 8
    kernel: str = "mb"
    #: Consult the warm config cache / tuner for blocking parameters.
    tune: bool = True
    #: Seed for the deterministic factor matrices (the factor contract is
    #: :func:`factors_for_spec`, shared by server and verifying clients).
    factors_seed: int = 0
    #: Extra literal kernel params (e.g. explicit block_counts when
    #: ``tune`` is off); values pass through to ``Kernel.prepare``.
    params: "tuple[tuple[str, Any], ...]" = field(default_factory=tuple)

    @classmethod
    def from_payload(cls, d: object) -> "JobSpec":
        _require(isinstance(d, dict), "job must be a JSON object")
        assert isinstance(d, dict)
        unknown = set(d) - {
            "tensor",
            "mode",
            "rank",
            "kernel",
            "tune",
            "factors_seed",
            "params",
        }
        _require(not unknown, f"unknown job fields: {sorted(unknown)}")
        _require("tensor" in d, "job needs a tensor reference")
        tensor = TensorRef.from_payload(d["tensor"])
        mode = int(d.get("mode", 0))
        _require(mode >= 0, f"mode must be >= 0, got {mode}")
        rank = int(d.get("rank", 8))
        _require(1 <= rank <= 512, f"rank must be in [1, 512], got {rank}")
        kernel = str(d.get("kernel", "mb"))
        _require(
            kernel in KERNELS,
            f"unknown kernel {kernel!r}; known: {sorted(KERNELS)}",
        )
        tune = bool(d.get("tune", True))
        if tune:
            _require(
                kernel in TUNABLE_KERNELS,
                f"kernel {kernel!r} takes no tuned blocking parameters; "
                f"set tune=false or use one of {sorted(TUNABLE_KERNELS)}",
            )
        params = d.get("params", {})
        _require(isinstance(params, dict), "params must be a JSON object")
        norm: list[tuple[str, Any]] = []
        for k, v in sorted(params.items()):
            if isinstance(v, list):
                v = tuple(v)
            norm.append((str(k), v))
        return cls(
            tensor=tensor,
            mode=mode,
            rank=rank,
            kernel=kernel,
            tune=tune,
            factors_seed=int(d.get("factors_seed", 0)),
            params=tuple(norm),
        )

    def batch_key(self) -> tuple:
        """Jobs with equal batch keys share tensor build, tuning, and the
        prepared parallel plan — only their factor matrices differ."""
        return (
            self.tensor.key(),
            self.mode,
            self.rank,
            self.kernel,
            self.tune,
            self.params,
        )

    def to_payload(self) -> dict:
        return {
            "tensor": self.tensor.to_payload(),
            "mode": self.mode,
            "rank": self.rank,
            "kernel": self.kernel,
            "tune": self.tune,
            "factors_seed": self.factors_seed,
            "params": {k: list(v) if isinstance(v, tuple) else v
                       for k, v in self.params},
        }


def factors_for_spec(
    shape: "tuple[int, ...]", rank: int, seed: int, dtype: str
) -> "list[np.ndarray]":
    """The factor-matrix contract: both the server and any verifying
    client derive the dense factors from ``factors_seed`` this way, so a
    response checksum can be checked against a local re-execution."""
    rng = np.random.default_rng(int(seed))
    target = np.dtype(dtype)
    return [
        rng.standard_normal((int(n), int(rank))).astype(target)
        for n in shape
    ]


def result_sha256(array: np.ndarray) -> str:
    """Checksum of a result's exact bytes (C-order) — the bitwise-identity
    token carried in submit responses."""
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()
