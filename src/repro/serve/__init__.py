"""Long-running decomposition service over the tuned execution stack.

``repro.serve`` composes the pieces the earlier layers built — verified
parallel plans, the dtype-aware tuning cache, the shared-memory
executor, ``repro.obs`` tracing — into an asyncio service that accepts
MTTKRP jobs over a newline-delimited-JSON socket (or in process),
admission-controls them in a bounded priority queue, coalesces
same-signature jobs into batches that share tensor build + tuning +
plan preparation, and executes on one shared worker pool with
per-request deadlines, cooperative cancellation, and graceful drain.

The design rhymes with the paper's thesis: blocking amortizes memory
traffic across nonzeros; serving amortizes setup (CSF build, tuning,
plan verification) across requests.  See ``docs/serving.md``.
"""

from repro.serve.client import ServeClient, SocketClient
from repro.serve.job import Job, JobState
from repro.serve.loadgen import (
    LoadReport,
    LoadSpec,
    default_job_mix,
    run_open_loop,
)
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    JobSpec,
    ProtocolError,
    TensorRef,
    decode_frame,
    encode_frame,
    factors_for_spec,
    result_sha256,
)
from repro.serve.queue import AdmissionQueue, QueueFullError
from repro.serve.server import (
    ServeConfig,
    ServeHandle,
    ServeServer,
    start_in_thread,
)
from repro.serve.warmcache import WarmConfigCache

__all__ = [
    "AdmissionQueue",
    "ERROR_CODES",
    "Job",
    "JobSpec",
    "JobState",
    "LoadReport",
    "LoadSpec",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueueFullError",
    "ServeClient",
    "ServeConfig",
    "ServeHandle",
    "ServeServer",
    "SocketClient",
    "TensorRef",
    "WarmConfigCache",
    "decode_frame",
    "default_job_mix",
    "encode_frame",
    "factors_for_spec",
    "result_sha256",
    "run_open_loop",
    "start_in_thread",
]
