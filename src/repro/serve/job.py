"""Job lifecycle for :mod:`repro.serve`.

A job moves ``QUEUED → RUNNING → COMPLETED`` on the happy path and can
terminate in ``FAILED``, ``EXPIRED`` (deadline), or ``CANCELLED``.  All
transitions go through one lock so concurrent actors — the asyncio loop
handling a ``cancel`` frame, the dispatcher dropping an expired entry,
the runner thread finishing the execution — resolve races
deterministically: whichever transition takes the lock first wins, and
the loser observes a terminal state instead of clobbering it.

Completion is published through a ``concurrent.futures.Future`` so both
worlds can wait on it: runner threads set it, protocol coroutines
``await asyncio.wrap_future(...)`` it.
"""

from __future__ import annotations

import enum
import threading
import time
from concurrent.futures import Future
from typing import Callable

from repro.exec import CancellationToken
from repro.serve.protocol import JobSpec

__all__ = ["Job", "JobState"]


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    EXPIRED = "expired"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self not in (JobState.QUEUED, JobState.RUNNING)


class Job:
    """One admitted request and its synchronization state."""

    __slots__ = (
        "job_id",
        "spec",
        "priority",
        "enqueued_at",
        "deadline_at",
        "token",
        "future",
        "started_at",
        "finished_at",
        "_state",
        "_lock",
        "_deadline_tripped",
    )

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        *,
        priority: int = 0,
        deadline_s: "float | None" = None,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.priority = int(priority)
        self.enqueued_at = time.monotonic()
        #: Absolute monotonic deadline (None = no deadline).
        self.deadline_at = (
            None if deadline_s is None else self.enqueued_at + float(deadline_s)
        )
        self.token = CancellationToken()
        #: Resolves to the terminal response payload (a dict).
        self.future: Future = Future()
        self.started_at: "float | None" = None
        self.finished_at: "float | None" = None
        self._state = JobState.QUEUED
        self._lock = threading.Lock()
        self._deadline_tripped = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> JobState:
        return self._state

    def expired(self, now: "float | None" = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline_at

    def deadline_remaining(self) -> "float | None":
        """Seconds until the deadline (None when unbounded)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.monotonic()

    # -- transitions ---------------------------------------------------
    def try_start(self) -> bool:
        """QUEUED → RUNNING; False when a cancel/expiry already won."""
        with self._lock:
            if self._state is not JobState.QUEUED:
                return False
            self._state = JobState.RUNNING
            self.started_at = time.monotonic()
            return True

    def try_finish(
        self,
        state: JobState,
        payload: dict,
        *,
        before_resolve: "Callable[[], None] | None" = None,
    ) -> bool:
        """Transition to a terminal state and resolve the future; False
        when another actor already terminated the job.

        ``before_resolve`` runs after the transition wins but before the
        future fires — bookkeeping hooked there (stats counters) is
        guaranteed visible to whoever was awaiting the result.
        """
        if not state.terminal:
            raise ValueError(f"{state} is not terminal")
        with self._lock:
            if self._state.terminal:
                return False
            self._state = state
            self.finished_at = time.monotonic()
        if before_resolve is not None:
            before_resolve()
        # Resolve outside the lock; Future.set_result is itself atomic.
        self.future.set_result(payload)
        return True

    def try_cancel(
        self,
        payload: dict,
        *,
        before_resolve: "Callable[[], None] | None" = None,
    ) -> "tuple[bool, JobState]":
        """Request cancellation; returns ``(accepted, state_observed)``.

        A QUEUED job terminates right here — state flips to CANCELLED
        under the lock and ``payload`` resolves its future; the
        dispatcher's later ``try_start`` sees the terminal state and
        skips the entry.  A RUNNING job gets a cooperative token cancel,
        which takes effect only if the execution still has unstarted
        tasks (kernels are uninterruptible once launched) — completion
        and cancellation race, and whichever calls ``try_finish`` first
        wins.  A terminal job is past cancelling: ``accepted`` is False.
        """
        with self._lock:
            state = self._state
            if state.terminal:
                return False, state
            self.token.cancel()
            if state is JobState.QUEUED:
                self._state = JobState.CANCELLED
                self.finished_at = time.monotonic()
        if state is JobState.QUEUED:
            if before_resolve is not None:
                before_resolve()
            self.future.set_result(payload)
        return True, state

    def trip_deadline(self) -> None:
        """Deadline timer callback: cancel cooperatively, remembering the
        cause so the terminal state reads EXPIRED, not CANCELLED."""
        with self._lock:
            if self._state.terminal:
                return
            self._deadline_tripped = True
            self.token.cancel()

    @property
    def deadline_tripped(self) -> bool:
        return self._deadline_tripped

    # ------------------------------------------------------------------
    def queue_wait_s(self) -> float:
        start = self.started_at if self.started_at is not None else time.monotonic()
        return max(0.0, start - self.enqueued_at)

    def total_latency_s(self) -> float:
        end = self.finished_at if self.finished_at is not None else time.monotonic()
        return max(0.0, end - self.enqueued_at)

    def __repr__(self) -> str:
        return f"<Job {self.job_id} {self._state.value} prio={self.priority}>"
