"""The :mod:`repro.serve` server: admission, batching, execution, drain.

Architecture (three worlds, one job object):

* the **asyncio event loop** owns protocol I/O and admission — it
  parses frames, validates job specs, offers jobs to the
  :class:`~repro.serve.queue.AdmissionQueue`, and awaits each job's
  future to write the response;
* a **dispatcher thread** blocks on the queue, coalesces same-signature
  jobs into batches, and hands batches to a small runner pool;
* **runner threads** execute a batch body: build (or reuse) the tensor,
  consult the :class:`~repro.serve.warmcache.WarmConfigCache` through
  the tuner, prepare one parallel plan, then execute every job's MTTKRP
  on the shared :class:`~repro.exec.WorkerPool` with per-job
  cancellation tokens and deadline timers.

The split keeps the event loop non-blocking (admission is O(1)), lets
batches overlap (``n_runners`` of them), and bounds every resource: the
queue (``queue_limit``), the warm cache (LRU + TTL), the tensor cache
(small LRU), and the worker pool (fixed size).

Graceful drain: stop admitting (``shutting_down`` rejections), let the
dispatcher empty the queue, join in-flight batches, then shut the pool
down.  Every admitted job's future resolves before drain returns — no
request is dropped on the floor.
"""

from __future__ import annotations

import asyncio
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any

from repro.exec import ParallelExecutor, WorkerPool
from repro.machine import MachineSpec, power8, power8_socket
from repro.obs import LatencyHistogram, current_tracer
from repro.serve.job import Job, JobState
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    TUNABLE_KERNELS,
    JobSpec,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    factors_for_spec,
    ok_response,
    result_sha256,
)
from repro.serve.queue import AdmissionQueue, QueueFullError
from repro.serve.warmcache import WarmConfigCache
from repro.util.errors import CancelledError, ConfigError, ServeError

__all__ = ["ServeConfig", "ServeServer", "ServeHandle", "start_in_thread"]

_MACHINES = {"power8": power8, "power8_socket": power8_socket}


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one server instance (all bounded by construction)."""

    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral); ``None`` disables the socket listener
    #: entirely — in-process clients drive :meth:`ServeServer.handle`.
    port: "int | None" = 0
    #: Admission queue capacity.
    queue_limit: int = 64
    #: Threads in the shared MTTKRP worker pool.
    n_workers: int = 2
    #: Concurrently running batches.
    n_runners: int = 2
    #: Max jobs coalesced into one batch.
    max_batch: int = 8
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Deadline applied when a submit names none (None = unbounded).
    default_deadline_ms: "float | None" = None
    #: Warm config cache bounds.
    warm_entries: int = 128
    warm_ttl_s: "float | None" = None
    warm_admit_after: int = 1
    #: Built tensors kept resident (a tensor is shared by every job with
    #: an equal reference, so a handful covers a steady workload).
    tensor_cache_entries: int = 8
    #: Machine model used for tuning decisions.
    machine: str = "power8"

    def machine_spec(self) -> MachineSpec:
        try:
            return _MACHINES[self.machine]()
        except KeyError:
            raise ConfigError(
                f"unknown machine {self.machine!r}; known: {sorted(_MACHINES)}"
            )


class _Stats:
    """Thread-safe serve counters + the request latency histogram."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: "dict[str, int]" = {}
        self.latency = LatencyHistogram()

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count(f"serve.{name}", n)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict:
        with self._lock:
            counts = dict(self._counts)
        lat = self.latency.snapshot()
        return {
            "counters": counts,
            "latency_ms": {
                k: (v * 1e3 if k != "count" else v) for k, v in lat.items()
            },
        }


class ServeServer:
    """Asyncio MTTKRP service over the tuned parallel execution stack."""

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.machine = cfg.machine_spec()
        self.queue = AdmissionQueue(cfg.queue_limit)
        self.warm = WarmConfigCache(
            max_entries=cfg.warm_entries,
            ttl_s=cfg.warm_ttl_s,
            admit_after=cfg.warm_admit_after,
        )
        self.pool = WorkerPool(cfg.n_workers, name="repro-serve-mttkrp")
        self.stats = _Stats()
        self._jobs: "dict[str, Job]" = {}
        self._jobs_lock = threading.Lock()
        self._tensors: "dict[str, Any]" = {}
        self._tensors_lock = threading.Lock()
        self._state = "idle"  # idle -> serving -> draining -> stopped
        self._state_lock = threading.Lock()
        self._dispatcher: "threading.Thread | None" = None
        self._runners: "list[threading.Thread]" = []
        self._batch_sem = threading.Semaphore(cfg.n_runners)
        self._inflight: "set[str]" = set()
        self._inflight_lock = threading.Lock()
        self._inflight_empty = threading.Event()
        self._inflight_empty.set()
        self._asyncio_server: "asyncio.base_events.Server | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        #: Recent mean batch service time, seeds retry-after hints.
        self._service_ema_s = 0.05

    # ------------------------------------------------------------------
    # lifecycle
    @property
    def state(self) -> str:
        return self._state

    @property
    def port(self) -> "int | None":
        if self._asyncio_server is None:
            return None
        socks = self._asyncio_server.sockets
        return socks[0].getsockname()[1] if socks else None

    async def start(self) -> None:
        """Start the dispatcher (and the socket listener unless
        ``config.port`` is None)."""
        with self._state_lock:
            if self._state != "idle":
                raise ServeError(f"cannot start a {self._state} server")
            self._state = "serving"
        self._loop = asyncio.get_running_loop()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        if self.config.port is not None:
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=self.config.max_frame_bytes,
            )

    async def drain(self) -> dict:
        """Graceful shutdown: reject new work, finish admitted work."""
        with self._state_lock:
            already = self._state in ("draining", "stopped")
            if not already:
                self._state = "draining"
        if not already:
            if self._asyncio_server is not None:
                self._asyncio_server.close()
                await self._asyncio_server.wait_closed()
            self.queue.close()
        # Queue empties, then in-flight batches finish.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join_workers)
        with self._state_lock:
            self._state = "stopped"
        self.pool.shutdown(wait=True)
        return {
            "drained": True,
            "state": self._state,
            "completed": self.stats.get("completed"),
            "queue_depth": self.queue.depth,
            **self.stats_payload(),
        }

    def _join_workers(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=60.0)
        self._inflight_empty.wait(timeout=60.0)

    # ------------------------------------------------------------------
    # request handling (shared by socket and in-process clients)
    async def handle(self, request: dict) -> dict:
        """Process one request object; always returns a response dict."""
        op = request.get("op")
        req_id = request.get("id")
        if op == "ping":
            return ok_response(req_id, "ping", state=self._state)
        if op == "stats":
            return ok_response(req_id, "stats", **self.stats_payload())
        if op == "submit":
            return await self._handle_submit(request)
        if op == "cancel":
            return self._handle_cancel(request)
        if op == "drain":
            report = await self.drain()
            return ok_response(req_id, "drain", **report)
        return error_response(
            req_id, str(op), "unknown_op", f"unknown op {op!r}"
        )

    async def _handle_submit(self, request: dict) -> dict:
        req_id = request.get("id")
        try:
            spec = JobSpec.from_payload(request.get("job"))
        except ProtocolError as exc:
            self.stats.count("rejected_invalid")
            return error_response(req_id, "submit", exc.code, str(exc))
        deadline_ms = request.get("deadline_ms", self.config.default_deadline_ms)
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
            if deadline_ms <= 0:
                self.stats.count("rejected_invalid")
                return error_response(
                    req_id, "submit", "invalid_job",
                    f"deadline_ms must be > 0, got {deadline_ms}",
                )
        if self._state != "serving":
            return error_response(
                req_id, "submit", "shutting_down",
                f"server is {self._state}; not accepting jobs",
            )
        # The response ships at completion, so a client that wants to
        # cancel must be able to *name* the job up front.
        job_id = str(request.get("job_id") or uuid.uuid4().hex[:12])
        if len(job_id) > 64:
            self.stats.count("rejected_invalid")
            return error_response(
                req_id, "submit", "invalid_job", "job_id exceeds 64 chars"
            )
        with self._jobs_lock:
            clash = self._jobs.get(job_id)
            if clash is not None and not clash.state.terminal:
                self.stats.count("rejected_invalid")
                return error_response(
                    req_id, "submit", "invalid_job",
                    f"job_id {job_id!r} is already live",
                )
        job = Job(
            job_id=job_id,
            spec=spec,
            priority=int(request.get("priority", 0)),
            deadline_s=None if deadline_ms is None else deadline_ms / 1e3,
        )
        retry_hint_ms = max(
            1.0,
            1e3
            * self._service_ema_s
            * (1 + self.queue.depth)
            / max(1, self.config.n_runners),
        )
        try:
            with self._jobs_lock:
                self._jobs[job.job_id] = job
                self._prune_jobs()
            self.queue.offer(job, retry_after_ms=retry_hint_ms)
        except QueueFullError as exc:
            with self._jobs_lock:
                self._jobs.pop(job.job_id, None)
            self.stats.count("rejected_full")
            return error_response(
                req_id, "submit", "queue_full", str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        except ServeError as exc:  # queue closed under us mid-drain
            with self._jobs_lock:
                self._jobs.pop(job.job_id, None)
            return error_response(req_id, "submit", "shutting_down", str(exc))
        self.stats.count("accepted")
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metric("serve.queue_depth", float(self.queue.depth))
        payload = await asyncio.wrap_future(job.future)
        payload = dict(payload)
        payload["id"] = req_id
        return payload

    def _handle_cancel(self, request: dict) -> dict:
        req_id = request.get("id")
        job_id = str(request.get("job_id", ""))
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            return error_response(
                req_id, "cancel", "invalid_job", f"unknown job_id {job_id!r}"
            )
        def on_queued_cancel() -> None:
            self.stats.count("cancelled")
            self._record_latency(job)

        accepted, observed = job.try_cancel(
            self._terminal_payload(job, JobState.CANCELLED, "cancelled",
                                   "cancelled while queued"),
            before_resolve=on_queued_cancel,
        )
        return ok_response(
            req_id, "cancel",
            job_id=job_id,
            accepted=accepted,
            observed_state=observed.value,
        )

    def _prune_jobs(self) -> None:
        # Called under _jobs_lock: keep the ledger bounded by dropping the
        # oldest *terminal* entries (live jobs must stay addressable).
        cap = 4 * self.config.queue_limit + 64
        if len(self._jobs) <= cap:
            return
        for jid in [
            j for j, job in self._jobs.items() if job.state.terminal
        ][: len(self._jobs) - cap]:
            del self._jobs[jid]

    # ------------------------------------------------------------------
    # stats
    def stats_payload(self) -> dict:
        return {
            "server_state": self._state,
            "queue": {
                "depth": self.queue.depth,
                "limit": self.queue.limit,
                "peak_depth": self.queue.peak_depth,
            },
            "warm_cache": self.warm.stats(),
            "pool": {
                "n_threads": self.pool.n_threads,
                "n_submitted": self.pool.n_submitted,
            },
            **self.stats.snapshot(),
        }

    # ------------------------------------------------------------------
    # dispatcher + runners
    def _dispatch_loop(self) -> None:
        while True:
            got = self.queue.take_batch(
                max_batch=self.config.max_batch, timeout=0.1
            )
            if got is None:
                if self.queue.closed and self.queue.depth == 0:
                    return
                continue
            batch, expired = got
            for job in expired:
                self._finish_expired(job)
            if not batch:
                continue
            # Bound batch concurrency without letting the dispatcher
            # block the queue while every runner is busy.
            self._batch_sem.acquire()
            with self._inflight_lock:
                self._inflight.add(batch[0].job_id)
                self._inflight_empty.clear()
            runner = threading.Thread(
                target=self._run_batch_entry,
                args=(batch,),
                name="repro-serve-runner",
                daemon=True,
            )
            self._runners.append(runner)
            runner.start()
            self._runners = [t for t in self._runners if t.is_alive()]

    def _run_batch_entry(self, batch: "list[Job]") -> None:
        try:
            self._run_batch(batch)
        finally:
            with self._inflight_lock:
                self._inflight.discard(batch[0].job_id)
                if not self._inflight:
                    self._inflight_empty.set()
            self._batch_sem.release()

    # -- batch body (runner thread) ------------------------------------
    def _run_batch(self, batch: "list[Job]") -> None:
        lead = batch[0].spec
        t_begin = time.monotonic()
        self.stats.count("batches")
        tracer = current_tracer()
        try:
            tensor = self._tensor_for(lead)
        except Exception as exc:
            for job in batch:
                self._finish_error(
                    job, "invalid_job", f"tensor build failed: {exc}"
                )
            return
        try:
            params = dict(lead.params)
            tuned_meta: "dict[str, Any] | None" = None
            if lead.tune:
                from repro.tune import Tuner

                tuner = Tuner(
                    tensor, lead.mode, self.machine, cache=self.warm
                )
                cfg = tuner.get_or_tune(lead.rank)
                accepted = TUNABLE_KERNELS[lead.kernel]
                if "block_counts" in accepted:
                    # A tuned "no blocking" verdict maps to the identity
                    # grid — the mb-family kernels always need counts.
                    params.setdefault(
                        "block_counts",
                        tuple(cfg.block_counts)
                        if cfg.block_counts is not None
                        else (1,) * tensor.order,
                    )
                if "rank_blocking" in accepted and cfg.rank_blocking is not None:
                    params.setdefault("rank_blocking", cfg.rank_blocking)
                tuned_meta = {
                    "from_cache": cfg.from_cache,
                    "strategy": cfg.strategy,
                    "block_counts": (
                        None
                        if cfg.block_counts is None
                        else list(cfg.block_counts)
                    ),
                }
            executor = ParallelExecutor(
                n_threads=self.config.n_workers,
                backend="thread",
                pool=self.pool,
            )
            pplan = executor.prepare(tensor, lead.mode, lead.kernel, **params)
        except Exception as exc:
            for job in batch:
                self._finish_error(
                    job, "invalid_job", f"plan preparation failed: {exc}"
                )
            return
        applied = {
            k: (list(v) if isinstance(v, tuple) else getattr(v, "block_cols", v))
            for k, v in params.items()
        }
        for job in batch:
            self._run_job(job, tensor, executor, pplan, applied, tuned_meta,
                          len(batch))
        dur = time.monotonic() - t_begin
        per_job = dur / max(1, len(batch))
        self._service_ema_s = 0.8 * self._service_ema_s + 0.2 * per_job
        if tracer.enabled:
            tracer.metric("serve.batch_s", dur)

    def _run_job(
        self,
        job: Job,
        tensor,
        executor: ParallelExecutor,
        pplan,
        applied: dict,
        tuned_meta: "dict | None",
        batch_size: int,
    ) -> None:
        if job.expired():
            self._finish_expired(job)
            return
        if not job.try_start():
            return  # cancelled while queued; its future already fired
        if job.token.cancelled and not job.deadline_tripped:
            # Cancel arrived between pickup and start: resolve as
            # cancelled without paying for the execution.
            self._finish_terminal(
                job, JobState.CANCELLED, "cancelled",
                "cancelled before execution started",
            )
            return
        spec = job.spec
        timer: "threading.Timer | None" = None
        remaining = job.deadline_remaining()
        if remaining is not None:
            timer = threading.Timer(max(0.0, remaining), job.trip_deadline)
            timer.daemon = True
            timer.start()
        t0 = time.monotonic()
        try:
            factors = factors_for_spec(
                tensor.shape, spec.rank, spec.factors_seed, spec.tensor.dtype
            )
            result = executor.execute(pplan, factors, cancel_token=job.token)
        except CancelledError:
            if job.deadline_tripped:
                self._finish_expired(job)
            else:
                self._finish_terminal(
                    job, JobState.CANCELLED, "cancelled",
                    "cancelled during execution",
                )
            return
        except Exception as exc:
            self._finish_error(job, "internal", f"execution failed: {exc}")
            return
        finally:
            if timer is not None:
                timer.cancel()
        exec_s = time.monotonic() - t0
        payload = ok_response(
            None, "submit",
            job_id=job.job_id,
            state=JobState.COMPLETED.value,
            sha256=result_sha256(result),
            shape=list(result.shape),
            dtype=str(result.dtype),
            kernel=spec.kernel,
            applied_params=applied,
            tuned=tuned_meta,
            batch_size=batch_size,
            queue_ms=job.queue_wait_s() * 1e3,
            exec_ms=exec_s * 1e3,
        )
        def on_completed() -> None:
            self.stats.count("completed")
            self._record_latency(job)

        # Counting runs before the future resolves, so a client holding
        # the response always sees its own job in the stats.
        job.try_finish(JobState.COMPLETED, payload, before_resolve=on_completed)

    # -- terminal helpers ----------------------------------------------
    def _terminal_payload(
        self, job: Job, state: JobState, code: str, message: str
    ) -> dict:
        resp = error_response(
            None, "submit", code, message, job_id=job.job_id, state=state.value
        )
        return resp

    def _finish_terminal(
        self, job: Job, state: JobState, code: str, message: str
    ) -> None:
        def on_terminal() -> None:
            self.stats.count(
                "deadline_expired" if state is JobState.EXPIRED else
                "cancelled" if state is JobState.CANCELLED else "failed"
            )
            self._record_latency(job)

        job.try_finish(
            state,
            self._terminal_payload(job, state, code, message),
            before_resolve=on_terminal,
        )

    def _finish_expired(self, job: Job) -> None:
        self._finish_terminal(
            job, JobState.EXPIRED, "deadline_expired",
            "deadline expired before completion",
        )

    def _finish_error(self, job: Job, code: str, message: str) -> None:
        job.try_start()  # mark RUNNING so the transition below is legal
        self._finish_terminal(job, JobState.FAILED, code, message)

    def _record_latency(self, job: Job) -> None:
        lat = job.total_latency_s()
        self.stats.latency.record(lat)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metric("serve.request_s", lat)

    # -- tensor cache ---------------------------------------------------
    def _tensor_for(self, spec: JobSpec):
        key = spec.tensor.key()
        with self._tensors_lock:
            hit = self._tensors.get(key)
            if hit is not None:
                del self._tensors[key]
                self._tensors[key] = hit  # refresh LRU recency
                return hit
        built = spec.tensor.build()
        with self._tensors_lock:
            self._tensors[key] = built
            while len(self._tensors) > self.config.tensor_cache_entries:
                del self._tensors[next(iter(self._tensors))]
        return built

    # ------------------------------------------------------------------
    # socket protocol
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: "set[asyncio.Task]" = set()

        async def respond(resp: dict) -> None:
            async with write_lock:
                writer.write(encode_frame(resp))
                await writer.drain()

        async def handle_frame(line: bytes) -> None:
            try:
                request = decode_frame(line)
            except ProtocolError as exc:
                await respond(
                    error_response(None, "?", exc.code, str(exc))
                )
                return
            await respond(await self.handle(request))

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await respond(
                        error_response(
                            None, "?", "oversized",
                            f"frame exceeds {self.config.max_frame_bytes} "
                            "bytes; closing connection",
                        )
                    )
                    # Discard whatever of the oversized frame is still in
                    # flight before closing: closing with unread received
                    # data RSTs the connection, which can destroy the
                    # error response before the client reads it.
                    async def discard() -> None:
                        while await reader.read(65536):
                            pass

                    try:
                        await asyncio.wait_for(discard(), timeout=1.0)
                    except (asyncio.TimeoutError, ConnectionError, OSError):
                        pass
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(handle_frame(line))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# ----------------------------------------------------------------------
# background-thread harness (tests, benchmarks, in-process clients)
class ServeHandle:
    """A server running on its own event loop in a daemon thread.

    Synchronous code (pytest, the load generator, the CLI) talks to the
    server by scheduling coroutines onto that loop.
    """

    def __init__(self, server: ServeServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> "int | None":
        return self.server.port

    def call(self, coro, timeout: "float | None" = 120.0):
        """Run a coroutine on the server loop and wait for its result."""
        fut = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return fut.result(timeout=timeout)

    def request(self, payload: dict, timeout: "float | None" = 120.0) -> dict:
        return self.call(self.server.handle(payload), timeout=timeout)

    def drain_and_stop(self, timeout: float = 120.0) -> dict:
        report = self.call(self.server.drain(), timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        return report


def start_in_thread(config: "ServeConfig | None" = None) -> ServeHandle:
    """Start a :class:`ServeServer` on a fresh loop in a daemon thread."""
    server = ServeServer(config)
    started = threading.Event()
    box: "dict[str, Any]" = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except Exception as exc:  # surface bind errors to the caller
            box["error"] = exc
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-serve-loop", daemon=True
    )
    thread.start()
    started.wait(timeout=30.0)
    if "error" in box:
        raise box["error"]
    if "loop" not in box:
        raise ServeError("server loop failed to start within 30s")
    return ServeHandle(server, box["loop"], thread)
