"""Bounded admission queue with priority ordering and signature batching.

Admission control is the serve layer's load-shedding point: the queue
holds at most ``limit`` jobs, and an ``offer`` past capacity raises
:class:`QueueFullError` — the server turns that into a typed
``queue_full`` rejection with a ``retry_after_ms`` hint instead of
letting latency grow without bound (an open-loop arrival process has no
back-pressure of its own, so the queue must push back explicitly).

``take_batch`` is the dispatcher's side: it blocks for work, picks the
highest-priority / oldest job, then *coalesces* every other queued job
with the same :meth:`~repro.serve.protocol.JobSpec.batch_key` into one
batch (up to ``max_batch``).  Batched jobs share the tensor build, the
tuning decision, and the prepared parallel plan — the serving analogue
of blocking: pay the setup once, amortize it over every request that
matches.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.serve.job import Job, JobState
from repro.util.errors import ConfigError, ServeError

__all__ = ["AdmissionQueue", "QueueFullError"]


class QueueFullError(ServeError):
    """Admission rejected: the queue is at capacity."""

    def __init__(self, limit: int, retry_after_ms: float) -> None:
        super().__init__(f"admission queue full ({limit} jobs)")
        self.limit = limit
        self.retry_after_ms = float(retry_after_ms)


class AdmissionQueue:
    """Thread-safe bounded priority queue of :class:`Job` entries.

    Ordering: higher ``priority`` first, FIFO within a priority level.
    Jobs whose deadline lapses while queued are resolved to EXPIRED at
    pickup time (never silently dropped — their futures must fire).
    """

    def __init__(self, limit: int = 64) -> None:
        if int(limit) < 1:
            raise ConfigError(f"queue limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self._entries: "list[Job]" = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._order: "dict[str, int]" = {}
        self._closed = False
        #: Peak depth observed since construction.
        self.peak_depth: int = 0
        #: Jobs rejected at admission because the queue was full.
        self.n_rejected_full: int = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def closed(self) -> bool:
        return self._closed

    def _sort_key(self, job: Job):
        return (-job.priority, self._order[job.job_id])

    # ------------------------------------------------------------------
    def offer(self, job: Job, *, retry_after_ms: float = 100.0) -> None:
        """Admit a job or raise :class:`QueueFullError`.

        ``retry_after_ms`` is the hint the rejection carries; the server
        scales it with observed service time and current depth.
        """
        with self._lock:
            if self._closed:
                raise ServeError("queue is closed")
            if len(self._entries) >= self.limit:
                self.n_rejected_full += 1
                raise QueueFullError(self.limit, retry_after_ms)
            self._order[job.job_id] = next(self._seq)
            self._entries.append(job)
            if len(self._entries) > self.peak_depth:
                self.peak_depth = len(self._entries)
            self._not_empty.notify()

    def take_batch(
        self, max_batch: int = 8, timeout: "float | None" = 0.5
    ) -> "tuple[list[Job], list[Job]] | None":
        """Block for work; returns ``(batch, expired)`` or ``None``.

        ``batch`` is the lead job plus every same-``batch_key`` entry
        (admission order, at most ``max_batch``); ``expired`` holds jobs
        whose deadline lapsed in-queue — the caller resolves those.  A
        ``None`` return means timeout, or closed-and-empty (check
        :attr:`closed`); jobs already terminated (cancelled while
        queued) are discarded silently since their futures have fired.
        """
        with self._lock:
            while not self._entries:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            now = time.monotonic()
            live: "list[Job]" = []
            expired: "list[Job]" = []
            for job in self._entries:
                if job.state is not JobState.QUEUED:
                    self._order.pop(job.job_id, None)
                elif job.expired(now):
                    expired.append(job)
                    self._order.pop(job.job_id, None)
                else:
                    live.append(job)
            self._entries = live
            if not live:
                return ([], expired) if expired else None
            lead = min(live, key=self._sort_key)
            key = lead.spec.batch_key()
            batch: "list[Job]" = []
            rest: "list[Job]" = []
            for job in sorted(live, key=self._sort_key):
                if len(batch) < int(max_batch) and job.spec.batch_key() == key:
                    batch.append(job)
                    self._order.pop(job.job_id, None)
                else:
                    rest.append(job)
            self._entries = sorted(rest, key=self._sort_key)
            return batch, expired

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting offers and wake blocked takers; queued entries
        stay takeable so a drain can finish them."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        return self.depth
