"""Open-loop (fixed-arrival-rate) load generator for :mod:`repro.serve`.

Closed-loop load tests (send, wait, send again) hide overload: when the
server slows down, the generator slows down with it and the measured
latency stays flattering.  This generator is **open-loop**: arrival
times are fixed up front at ``rate_hz`` and every request's latency is
measured from its *scheduled* arrival instant — so time a request
spends waiting for a free client slot counts against the server, not
silently against nobody (the coordinated-omission correction).

``run_open_loop`` drives any client exposing the
:class:`~repro.serve.client._RequestMixin` surface with ``n_clients``
worker threads pulling from one shared arrival schedule, and folds the
results into a :class:`LoadReport` with p50/p95/p99 latency, throughput,
per-error-code counts, and (optionally) a bitwise verification of every
completed job against a direct serial kernel execution.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs import LatencyHistogram
from repro.serve.protocol import (
    JobSpec,
    factors_for_spec,
    result_sha256,
)

__all__ = ["LoadReport", "LoadSpec", "default_job_mix", "run_open_loop"]


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop run: ``n_requests`` arrivals at ``rate_hz``, cycling
    through ``jobs`` round-robin (mix dtypes/signatures there)."""

    jobs: "tuple[dict, ...]"
    rate_hz: float = 50.0
    n_requests: int = 100
    n_clients: int = 2
    deadline_ms: "float | None" = None
    #: Recompute every completed job serially and compare checksums.
    verify: bool = False

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("LoadSpec needs at least one job template")
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {self.rate_hz}")
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {self.n_clients}")


@dataclass
class LoadReport:
    """Aggregated outcome of one open-loop run."""

    n_sent: int = 0
    n_completed: int = 0
    n_errors: int = 0
    #: Errors by protocol code (queue_full, deadline_expired, ...).
    errors_by_code: "dict[str, int]" = field(default_factory=dict)
    #: Completed-job latencies, seconds, measured from scheduled arrival.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    wall_s: float = 0.0
    n_verified: int = 0
    n_verify_failed: int = 0

    @property
    def throughput(self) -> float:
        """Completed jobs per second of wall clock."""
        return self.n_completed / self.wall_s if self.wall_s > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        return self.latency.percentile(q) * 1e3

    def to_dict(self) -> dict:
        lat = self.latency.snapshot()
        return {
            "n_sent": self.n_sent,
            "n_completed": self.n_completed,
            "n_errors": self.n_errors,
            "errors_by_code": dict(self.errors_by_code),
            "throughput_jobs_s": self.throughput,
            "wall_s": self.wall_s,
            "latency_ms": {
                k: (v * 1e3 if k != "count" else v) for k, v in lat.items()
            },
            "n_verified": self.n_verified,
            "n_verify_failed": self.n_verify_failed,
        }


def default_job_mix(
    *, nnz: int = 2_000, dims: "tuple[int, ...]" = (48, 40, 44), rank: int = 8
) -> "tuple[dict, ...]":
    """The standard mixed-precision benchmark mix: two signatures
    (poisson/uniform structure) × two dtypes (f32/f64), small enough for
    CI yet large enough that tuning and batching matter."""
    mix = []
    for seed, (gen, dtype) in enumerate(
        [
            ("poisson", "float64"),
            ("uniform", "float32"),
            ("poisson", "float32"),
            ("uniform", "float64"),
        ]
    ):
        mix.append(
            {
                "tensor": {
                    "synthetic": gen,
                    "dims": list(dims),
                    "nnz": int(nnz),
                    "seed": seed % 2,
                    "dtype": dtype,
                },
                "mode": 0,
                "rank": int(rank),
                "kernel": "mb",
                "tune": True,
                "factors_seed": seed,
            }
        )
    return tuple(mix)


class _Verifier:
    """Memoized direct serial re-execution for bitwise checks.

    Keyed by (job payload identity, applied params): jobs repeat in a
    load run, so each distinct configuration is recomputed exactly once.
    """

    def __init__(self) -> None:
        self._cache: "dict[tuple, str]" = {}
        self._lock = threading.Lock()

    def expected_sha(self, job_payload: dict, response: dict) -> str:
        from repro.kernels import get_kernel

        spec = JobSpec.from_payload(job_payload)
        applied = response.get("applied_params") or {}
        applied_key = tuple(sorted(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in applied.items()
        ))
        key = (spec.batch_key(), spec.factors_seed, applied_key)
        with self._lock:
            hit = self._cache.get(key)
        if hit is not None:
            return hit
        tensor = spec.tensor.build()
        factors = factors_for_spec(
            tensor.shape, spec.rank, spec.factors_seed, spec.tensor.dtype
        )
        params = {
            k: (tuple(v) if isinstance(v, list) else v)
            for k, v in applied.items()
        }
        direct = get_kernel(spec.kernel).mttkrp(
            tensor, factors, spec.mode, **params
        )
        sha = result_sha256(direct)
        with self._lock:
            self._cache[key] = sha
        return sha


def run_open_loop(client_factory, spec: LoadSpec) -> LoadReport:
    """Drive one open-loop run.

    ``client_factory`` is called once per worker thread and must return
    an object with ``submit(job, deadline_ms=...) -> response`` (both
    :class:`~repro.serve.client.ServeClient` and per-thread
    :class:`~repro.serve.client.SocketClient` instances qualify; pass a
    factory, not a shared socket, so clients don't serialize on one
    connection's request lock).
    """
    report = LoadReport()
    lock = threading.Lock()
    verifier = _Verifier() if spec.verify else None
    t0 = time.monotonic()
    # The whole point of open loop: arrival instants are fixed before
    # the first request is sent and never stretched by slow responses.
    arrivals = [
        (t0 + i / spec.rate_hz, spec.jobs[i % len(spec.jobs)])
        for i in range(spec.n_requests)
    ]
    cursor = {"next": 0}

    def worker() -> None:
        client = client_factory()
        try:
            while True:
                with lock:
                    i = cursor["next"]
                    if i >= len(arrivals):
                        return
                    cursor["next"] = i + 1
                at, job = arrivals[i]
                delay = at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                resp = client.submit(job, deadline_ms=spec.deadline_ms)
                done = time.monotonic()
                ok = bool(resp.get("ok")) and resp.get("state") == "completed"
                verified = failed_verify = 0
                if ok and verifier is not None:
                    expected = verifier.expected_sha(job, resp)
                    if resp.get("sha256") == expected:
                        verified = 1
                    else:
                        failed_verify = 1
                with lock:
                    report.n_sent += 1
                    if ok:
                        report.n_completed += 1
                        # Latency from *scheduled* arrival, not send time.
                        report.latency.record(max(0.0, done - at))
                        report.n_verified += verified
                        report.n_verify_failed += failed_verify
                    else:
                        report.n_errors += 1
                        code = (resp.get("error") or {}).get("code", "unknown")
                        report.errors_by_code[code] = (
                            report.errors_by_code.get(code, 0) + 1
                        )
        finally:
            # Close per-worker transports, but never an in-process
            # ServeClient — closing one would drain the shared server
            # out from under the other workers.
            from repro.serve.client import ServeClient

            if not isinstance(client, ServeClient):
                close = getattr(client, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:
                        pass

    threads = [
        threading.Thread(target=worker, name=f"repro-load-{i}", daemon=True)
        for i in range(spec.n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_s = time.monotonic() - t0
    return report
