"""Clients for :mod:`repro.serve`.

Two transports, one request surface:

* :class:`ServeClient` — in-process: drives a :class:`~repro.serve
  .server.ServeServer` running on a background loop directly (no
  sockets), which is what tests and the benchmark suites use — the
  measured path is admission → batching → execution, not TCP;
* :class:`SocketClient` — a small synchronous NDJSON/TCP client for the
  CLI load generator and cross-process smoke tests.  One request in
  flight per call; responses are matched by the ``id`` field.

Both expose ``submit`` / ``cancel`` / ``stats`` / ``ping`` / ``drain``
returning the raw response dicts from :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any

from repro.serve.protocol import decode_frame, encode_frame
from repro.serve.server import ServeConfig, ServeHandle, start_in_thread
from repro.util.errors import ServeError

__all__ = ["ServeClient", "SocketClient"]

_ids = itertools.count(1)


def _next_id(prefix: str) -> str:
    return f"{prefix}-{next(_ids)}"


class _RequestMixin:
    """The shared op surface; subclasses provide :meth:`request`."""

    def request(self, payload: dict, timeout: "float | None" = None) -> dict:
        raise NotImplementedError

    def ping(self) -> dict:
        return self.request({"op": "ping", "id": _next_id("ping")})

    def stats(self) -> dict:
        return self.request({"op": "stats", "id": _next_id("stats")})

    def submit(
        self,
        job: dict,
        *,
        deadline_ms: "float | None" = None,
        priority: int = 0,
        job_id: "str | None" = None,
        timeout: "float | None" = None,
    ) -> dict:
        req: dict = {"op": "submit", "id": _next_id("job"), "job": job}
        if deadline_ms is not None:
            req["deadline_ms"] = float(deadline_ms)
        if priority:
            req["priority"] = int(priority)
        if job_id is not None:
            # Pre-naming the job lets another thread/connection cancel it
            # before the (completion-time) submit response arrives.
            req["job_id"] = str(job_id)
        return self.request(req, timeout=timeout)

    def cancel(self, job_id: str) -> dict:
        return self.request(
            {"op": "cancel", "id": _next_id("cancel"), "job_id": job_id}
        )

    def drain(self, timeout: "float | None" = 120.0) -> dict:
        return self.request({"op": "drain", "id": _next_id("drain")},
                            timeout=timeout)


class ServeClient(_RequestMixin):
    """In-process client over a :class:`ServeHandle`.

    Either wrap an existing handle or let the client own a fresh
    socketless server (``port=None``)::

        with ServeClient.start() as client:
            resp = client.submit({"tensor": {...}, "rank": 8})
    """

    def __init__(self, handle: ServeHandle, *, owns_server: bool = False) -> None:
        self.handle = handle
        self._owns = owns_server

    @classmethod
    def start(cls, config: "ServeConfig | None" = None) -> "ServeClient":
        if config is None:
            config = ServeConfig(port=None)
        return cls(start_in_thread(config), owns_server=True)

    def request(self, payload: dict, timeout: "float | None" = None) -> dict:
        return self.handle.request(
            payload, timeout=120.0 if timeout is None else timeout
        )

    def close(self) -> "dict | None":
        """Drain and stop the server when this client owns it."""
        if self._owns:
            return self.handle.drain_and_stop()
        return None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SocketClient(_RequestMixin):
    """Blocking NDJSON client over TCP (thread-safe via an I/O lock)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self._timeout = timeout
        self._sock = socket.create_connection((host, self.port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._lock = threading.Lock()

    def request(self, payload: dict, timeout: "float | None" = None) -> dict:
        with self._lock:
            self._sock.settimeout(self._timeout if timeout is None else timeout)
            self._sock.sendall(encode_frame(payload))
            want = payload.get("id")
            while True:
                line = self._file.readline()
                if not line:
                    raise ServeError("server closed the connection")
                resp = decode_frame(line)
                # Responses to *this* request (or server-initiated errors
                # carrying no id, e.g. oversized-frame) end the wait;
                # pipelined strangers would be a misuse of this client.
                if resp.get("id") in (want, None):
                    return resp

    def send_raw(self, data: bytes) -> dict:
        """Ship arbitrary bytes and read one response line (protocol
        edge-case tests: oversized / malformed frames)."""
        with self._lock:
            self._sock.sendall(data)
            line = self._file.readline()
            if not line:
                raise ServeError("server closed the connection")
            return decode_frame(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
