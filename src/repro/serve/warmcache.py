"""Admission-aware warm cache of tuned blocking configurations.

:class:`WarmConfigCache` is the serving policy over
:class:`repro.tune.TuningCache`'s mechanisms (LRU size bound + TTL):

* **thread safety** — ``Tuner.get_or_tune`` runs on batch-runner
  threads, so ``get``/``put`` take a re-entrant lock;
* **admission control** — with ``admit_after > 1``, a signature must be
  *tuned* that many times before its configuration is cached.  A scan of
  one-off tensors (a crawler submitting thousands of distinct shapes)
  then cannot evict the hot working set, at the cost of re-tuning new
  signatures ``admit_after`` times before they stick — the same
  scan-resistance argument as 2Q/TinyLFU cache admission;
* **counters** — hits/misses/denials for the server's stats endpoint.

Because it *is* a ``TuningCache``, the dtype gate in the tuner applies
unchanged: float32 and float64 signatures never share an entry (their
keys differ by the ``_b<itemsize>`` suffix, and entries are
itemsize-checked on hit).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.tune.cache import CacheEntry, TuningCache

__all__ = ["WarmConfigCache"]


class WarmConfigCache(TuningCache):
    """Thread-safe, admission-gated LRU/TTL cache of tuned configs."""

    def __init__(
        self,
        *,
        max_entries: "int | None" = 128,
        ttl_s: "float | None" = None,
        admit_after: int = 1,
        clock: Callable[[], float] = time.time,
    ) -> None:
        super().__init__(max_entries=max_entries, ttl_s=ttl_s, clock=clock)
        if int(admit_after) < 1:
            raise ValueError(f"admit_after must be >= 1, got {admit_after}")
        self.admit_after = int(admit_after)
        self._rlock = threading.RLock()
        self._sightings: "dict[tuple, int]" = {}
        self.n_hits = 0
        self.n_misses = 0
        self.n_denied = 0

    def get(
        self, signature_key: str, rank: int, machine_name: str
    ) -> "CacheEntry | None":
        with self._rlock:
            entry = super().get(signature_key, rank, machine_name)
            if entry is None:
                self.n_misses += 1
            else:
                self.n_hits += 1
            return entry

    def put(
        self,
        signature_key: str,
        rank: int,
        machine_name: str,
        entry: CacheEntry,
    ) -> None:
        with self._rlock:
            key = self._key(signature_key, rank, machine_name)
            seen = self._sightings.get(key, 0) + 1
            if seen < self.admit_after:
                self._sightings[key] = seen
                # Bound the sightings ledger too — it must not become the
                # unbounded map the admission gate exists to prevent.
                cap = 8 * (self.max_entries or 128)
                while len(self._sightings) > cap:
                    self._sightings.pop(next(iter(self._sightings)))
                self.n_denied += 1
                return
            self._sightings.pop(key, None)
            super().put(signature_key, rank, machine_name, entry)

    def stats(self) -> dict:
        with self._rlock:
            return {
                "entries": len(self),
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
                "admit_after": self.admit_after,
                "hits": self.n_hits,
                "misses": self.n_misses,
                "denied": self.n_denied,
                "evicted": self.n_evicted,
                "expired": self.n_expired,
            }
