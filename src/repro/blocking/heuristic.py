"""Block-size selection heuristic (Section V-C).

The paper's procedure, verbatim:

* **Rank blocking** — "go through block sizes in 128 bytes increments —
  equivalent to the cache line size on our experimental system — until the
  performance stops improving."
* **Multi-dimensional blocking** — "start with the longest mode, and
  increase the number of blocks along that mode until the performance
  stops improving, and then traverse the other modes in descending order
  of mode lengths. ... When multiple modes have similar lengths, we block
  them in the order of access volume — i.e., mode-2, mode-3, and then
  mode-1."

The search is *evaluator-driven*: callers pass a function scoring one
candidate configuration (lower is better).  The performance model
(:func:`repro.perf.model.model_evaluator`) provides the default scorer;
a wall-clock scorer gives the autotuning ablation
(``benchmarks/bench_ablation_heuristic.py``).

Cost: the sweep makes :math:`O(\\log_2 I_n)` evaluations per mode plus
:math:`R/16` for the rank — "relatively inexpensive compared to the
10-1000s of iterations required for decomposition."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.blocking.rank import REGISTER_BLOCK_COLS, RankBlocking
from repro.tensor.coo import COOTensor
from repro.util.errors import ConfigError
from repro.util.validation import check_mode, check_rank, require

#: Evaluator signature: (block_counts or None, RankBlocking or None) -> cost.
Evaluator = Callable[["tuple[int, ...] | None", "RankBlocking | None"], float]

#: Relative improvement below which the sweep treats a step as "stopped
#: improving" (guards against model noise on flat plateaus).
IMPROVEMENT_TOLERANCE = 1e-3


@dataclass
class BlockingChoice:
    """Result of the heuristic search."""

    #: Chosen per-mode block counts (``None`` = no multi-dim blocking).
    block_counts: "tuple[int, ...] | None"
    #: Chosen rank blocking (``None`` = no rank blocking).
    rank_blocking: "RankBlocking | None"
    #: Evaluator cost of the chosen configuration.
    cost: float
    #: Every (block_counts, rank_blocking, cost) probed, in order.
    trace: list[tuple["tuple[int, ...] | None", "RankBlocking | None", float]] = field(
        default_factory=list
    )

    @property
    def n_evaluations(self) -> int:
        """Number of configurations the search scored."""
        return len(self.trace)


def _mode_search_order(
    tensor: COOTensor, mode: int, inner_mode: int, fiber_mode: int
) -> list[int]:
    """Modes ordered by descending length; ties broken by access volume
    (inner factor first — the most expensive stream, Section IV-B)."""
    volume_rank = {inner_mode: 0, fiber_mode: 1, mode: 2}
    return sorted(
        range(tensor.order),
        key=lambda m: (-tensor.shape[m], volume_rank[m]),
    )


def select_blocking(
    tensor: COOTensor,
    mode: int,
    rank: int,
    evaluate: Evaluator,
    *,
    use_mb: bool = True,
    use_rankb: bool = True,
    max_blocks_per_mode: int = 64,
) -> BlockingChoice:
    """Run the Section V-C greedy search.

    Parameters
    ----------
    tensor, mode, rank: the MTTKRP instance being tuned.
    evaluate: cost function; see :data:`Evaluator`.  It is called with
        ``(None, None)`` first to score the unblocked baseline.
    use_mb / use_rankb: restrict the search to one technique (the Figure 6
        ``MB`` and ``RankB`` series use one each; ``MB+RankB`` uses both).
    max_blocks_per_mode: safety cap on the per-mode doubling sweep.
    """
    mode = check_mode(mode, tensor.order)
    rank = check_rank(rank)
    require(use_mb or use_rankb, "enable at least one blocking technique")
    if tensor.order != 3:
        raise ConfigError("the blocking heuristic is implemented for 3 modes")
    inner_mode = (mode + 1) % 3
    fiber_mode = (mode + 2) % 3

    trace: list[tuple[tuple[int, ...] | None, RankBlocking | None, float]] = []

    def score(
        counts: "tuple[int, ...] | None", rb: "RankBlocking | None"
    ) -> float:
        cost = float(evaluate(counts, rb))
        trace.append((counts, rb, cost))
        return cost

    baseline_cost = score(None, None)
    best_counts: tuple[int, ...] | None = None
    best_rb: RankBlocking | None = None
    best_cost = baseline_cost

    def mb_sweep() -> tuple["tuple[int, ...] | None", float]:
        """Greedy per-mode doubling sweep (Section V-C, MB part)."""
        counts = [1, 1, 1]
        current = baseline_cost
        for m in _mode_search_order(tensor, mode, inner_mode, fiber_mode):
            while counts[m] * 2 <= min(tensor.shape[m], max_blocks_per_mode):
                trial = counts.copy()
                trial[m] *= 2
                cost = score(tuple(trial), None)
                if cost < current * (1.0 - IMPROVEMENT_TOLERANCE):
                    counts = trial
                    current = cost
                else:
                    break
        if tuple(counts) == (1, 1, 1):
            return None, baseline_cost
        return tuple(counts), current

    def rank_sweep(
        base_counts: "tuple[int, ...] | None", start_cost: float
    ) -> tuple["RankBlocking | None", float]:
        """Strip-width sweep in cache-line (16-column) steps, "until the
        performance stops improving" (two consecutive misses)."""
        current = start_cost
        chosen: RankBlocking | None = None
        misses = 0
        for cols in range(REGISTER_BLOCK_COLS, rank, REGISTER_BLOCK_COLS):
            rb = RankBlocking(block_cols=cols)
            cost = score(base_counts, rb)
            if cost < current * (1.0 - IMPROVEMENT_TOLERANCE):
                current = cost
                chosen = rb
                misses = 0
            else:
                misses += 1
                if misses >= 2:
                    break
        return chosen, current

    # Candidate paths: MB alone, RankB alone, and RankB on top of the MB
    # grid (Figure 3b).  Evaluating the single-technique paths inside the
    # combined search guarantees the combination never loses to either
    # technique by a search artifact.
    mb_counts: tuple[int, ...] | None = None
    if use_mb:
        mb_counts, mb_cost = mb_sweep()
        if mb_counts is not None and mb_cost < best_cost:
            best_counts, best_rb, best_cost = mb_counts, None, mb_cost
    if use_rankb and rank > REGISTER_BLOCK_COLS:
        rb_only, rb_cost = rank_sweep(None, baseline_cost)
        if rb_only is not None and rb_cost < best_cost:
            best_counts, best_rb, best_cost = None, rb_only, rb_cost
        if use_mb and mb_counts is not None:
            rb_combo, combo_cost = rank_sweep(mb_counts, mb_cost)
            if rb_combo is not None and combo_cost < best_cost:
                best_counts, best_rb, best_cost = mb_counts, rb_combo, combo_cost

    return BlockingChoice(
        block_counts=best_counts,
        rank_blocking=best_rb,
        cost=best_cost,
        trace=trace,
    )
