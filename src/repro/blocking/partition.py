"""Reorganizing a COO tensor into contiguous blocks (Section V-A).

Multi-dimensional blocking requires "the nonzeros in each block [to be]
stored continuously"; the paper stresses that this rearrangement is cheap
(one sort) compared to graph-partitioning reorderings and is amortized
over the 10-1000s of CPD iterations.  :func:`partition_coo` performs that
rearrangement and compresses each block into the SPLATT layout, producing
the :class:`BlockedTensor` the MB kernels execute.

Block indices stay **global**: factor matrices are indexed directly, and
the cache model sees each block's distinct-row working sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocking.grid import BlockGrid
from repro.tensor.coo import COOTensor
from repro.tensor.splatt import SplattTensor
from repro.util.errors import ShapeError
from repro.util.validation import check_mode


@dataclass(frozen=True)
class TensorBlock:
    """One non-empty block: its grid coordinates, index bounds, and the
    SPLATT-compressed sub-tensor.

    Sub-tensor indices are **local** to the block (global minus the lower
    bound of each mode), so per-block pointer arrays are sized to the block
    rather than the full mode — execution indexes factor matrices through
    contiguous slices ``factor[lo:hi]``.
    """

    coords: tuple[int, ...]
    bounds: tuple[tuple[int, int], ...]
    splatt: SplattTensor


class BlockedTensor:
    """A tensor reorganized into SPLATT-compressed blocks."""

    def __init__(
        self,
        grid: BlockGrid,
        blocks: list[TensorBlock],
        output_mode: int,
        inner_mode: int,
        fiber_mode: int,
    ) -> None:
        self.grid = grid
        self.blocks = blocks
        self.output_mode = output_mode
        self.inner_mode = inner_mode
        self.fiber_mode = fiber_mode

    @property
    def shape(self) -> tuple[int, ...]:
        """Mode lengths of the underlying tensor."""
        return self.grid.shape

    @property
    def nnz(self) -> int:
        """Total nonzeros across blocks."""
        return sum(b.splatt.nnz for b in self.blocks)

    @property
    def n_fibers(self) -> int:
        """Total fibers across blocks.  Blocking along the inner mode can
        split fibers, so this is >= the unblocked fiber count."""
        return sum(b.splatt.n_fibers for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return (
            f"BlockedTensor({self.grid!r}, {len(self.blocks)} non-empty, "
            f"nnz={self.nnz})"
        )


@dataclass(frozen=True)
class NDBlock:
    """One non-empty N-mode block in local coordinates."""

    coords: tuple[int, ...]
    bounds: tuple[tuple[int, int], ...]
    tensor: COOTensor


def partition_coo_nd(tensor: COOTensor, grid: BlockGrid) -> list[NDBlock]:
    """Reorganize an N-mode COO tensor into local-coordinate blocks.

    The order-agnostic core of :func:`partition_coo` — blocks carry plain
    COO sub-tensors (local coordinates, block-sized shapes) so any format
    can be built per block; the blocked CSF kernel uses this for the
    paper's "trivially extended to higher-order data" claim.  Blocks are
    emitted in C order over the grid coordinates.
    """
    if grid.shape != tensor.shape:
        raise ShapeError(
            f"grid shape {grid.shape} does not match tensor shape {tensor.shape}"
        )
    flat = grid.block_of(tensor.indices)
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    if flat_sorted.shape[0]:
        starts = np.flatnonzero(
            np.concatenate(([True], flat_sorted[1:] != flat_sorted[:-1]))
        )
    else:
        starts = np.empty(0, dtype=np.int64)
    ends = np.concatenate((starts[1:], [flat_sorted.shape[0]]))

    blocks: list[NDBlock] = []
    for st, en in zip(starts, ends):
        sel = order[int(st) : int(en)]
        coords = grid.block_coords(int(flat_sorted[st]))
        bounds = grid.block_bounds(coords)
        offsets = np.asarray([b[0] for b in bounds], dtype=tensor.indices.dtype)
        blocks.append(
            NDBlock(
                coords=coords,
                bounds=bounds,
                tensor=COOTensor(
                    tuple(hi - lo for lo, hi in bounds),
                    tensor.indices[sel] - offsets,
                    tensor.values[sel],
                    validate=False,
                ),
            )
        )
    return blocks


def partition_coo(
    tensor: COOTensor,
    grid: BlockGrid,
    output_mode: int = 0,
    inner_mode: int | None = None,
) -> BlockedTensor:
    """Reorganize a 3-mode COO tensor into SPLATT-compressed blocks.

    Blocks are emitted in an order that iterates output-mode block
    coordinates outermost (so consecutive blocks share their slice of
    ``A``), then fiber-mode, then inner-mode — the loop order the MB
    kernel uses.

    Parameters
    ----------
    tensor: the tensor to reorganize.
    grid: the mode-block grid (``BlockGrid``); its shape must match.
    output_mode / inner_mode: MTTKRP orientation, as in
        :meth:`repro.tensor.splatt.SplattTensor.from_coo`.
    """
    if tensor.order != 3:
        raise ShapeError("multi-dimensional blocking is implemented for 3 modes")
    if grid.shape != tensor.shape:
        raise ShapeError(
            f"grid shape {grid.shape} does not match tensor shape {tensor.shape}"
        )
    output_mode = check_mode(output_mode, 3)
    if inner_mode is None:
        inner_mode = (output_mode + 1) % 3
    inner_mode = check_mode(inner_mode, 3)
    if inner_mode == output_mode:
        raise ShapeError("inner mode must differ from output mode")
    fiber_mode = 3 - output_mode - inner_mode

    flat = grid.block_of(tensor.indices)
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    if flat_sorted.shape[0]:
        starts = np.flatnonzero(
            np.concatenate(([True], flat_sorted[1:] != flat_sorted[:-1]))
        )
    else:
        starts = np.empty(0, dtype=np.int64)
    ends = np.concatenate((starts[1:], [flat_sorted.shape[0]]))

    # Loop-order priority: output block outermost, then fiber, then inner.
    def loop_key(flat_id: int) -> tuple[int, int, int]:
        coords = grid.block_coords(flat_id)
        return (coords[output_mode], coords[fiber_mode], coords[inner_mode])

    block_ids = [int(flat_sorted[s]) for s in starts]
    emit_order = sorted(range(len(block_ids)), key=lambda n: loop_key(block_ids[n]))

    blocks: list[TensorBlock] = []
    for n in emit_order:
        lo, hi = int(starts[n]), int(ends[n])
        sel = order[lo:hi]
        coords = grid.block_coords(block_ids[n])
        bounds = grid.block_bounds(coords)
        local_indices = tensor.indices[sel] - np.asarray(
            [b[0] for b in bounds], dtype=tensor.indices.dtype
        )
        sub = COOTensor(
            tuple(b[1] - b[0] for b in bounds),
            local_indices,
            tensor.values[sel],
            validate=False,
        )
        blocks.append(
            TensorBlock(
                coords=coords,
                bounds=bounds,
                splatt=SplattTensor.from_coo(sub, output_mode, inner_mode),
            )
        )
    return BlockedTensor(grid, blocks, output_mode, inner_mode, fiber_mode)
