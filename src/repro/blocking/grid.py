"""Axis-aligned block grids over a tensor's index space.

A :class:`BlockGrid` partitions each mode's index range into contiguous
intervals; the Cartesian product of intervals forms the blocks of the
multi-dimensional blocking scheme (Figure 3a).  Grids are either *uniform*
(equal-width intervals, the MB default) or built from explicit boundaries
(:meth:`BlockGrid.from_boundaries` — used by the distributed
medium-grained decomposition, whose greedy nonzero-balancing produces
non-uniform slabs).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import ConfigError, ShapeError
from repro.util.validation import INDEX_DTYPE, check_shape


class BlockGrid:
    """A partition of an N-dimensional index space into blocks."""

    __slots__ = ("shape", "boundaries")

    def __init__(self, shape: Sequence[int], block_counts: Sequence[int]) -> None:
        """Uniform grid: mode ``m`` is split into ``block_counts[m]``
        near-equal intervals."""
        shape = check_shape(shape)
        counts = tuple(int(c) for c in block_counts)
        if len(counts) != len(shape):
            raise ShapeError(
                f"need one block count per mode: shape has {len(shape)} modes, "
                f"got {len(counts)} counts"
            )
        boundaries = []
        for extent, nb in zip(shape, counts):
            if nb < 1:
                raise ConfigError(f"block counts must be >= 1, got {nb}")
            if nb > extent:
                raise ConfigError(
                    f"cannot split a mode of length {extent} into {nb} blocks"
                )
            bounds = (extent * np.arange(nb + 1, dtype=INDEX_DTYPE)) // nb
            boundaries.append(bounds)
        self.shape = shape
        self.boundaries = tuple(boundaries)

    @classmethod
    def from_boundaries(
        cls, shape: Sequence[int], boundaries: Sequence[Sequence[int]]
    ) -> "BlockGrid":
        """Grid with explicit per-mode boundaries.

        ``boundaries[m]`` must be strictly increasing, start at 0, and end
        at ``shape[m]``.
        """
        shape = check_shape(shape)
        if len(boundaries) != len(shape):
            raise ShapeError("need one boundary array per mode")
        grid = cls.__new__(cls)
        bset = []
        for m, (extent, bounds) in enumerate(zip(shape, boundaries)):
            bounds = np.asarray(bounds, dtype=INDEX_DTYPE)
            if bounds.ndim != 1 or bounds.shape[0] < 2:
                raise ConfigError(f"mode {m}: boundaries need >= 2 entries")
            if bounds[0] != 0 or bounds[-1] != extent:
                raise ConfigError(
                    f"mode {m}: boundaries must span [0, {extent}], got "
                    f"[{bounds[0]}, {bounds[-1]}]"
                )
            if np.any(np.diff(bounds) <= 0):
                raise ConfigError(f"mode {m}: boundaries must be strictly increasing")
            bset.append(bounds)
        grid.shape = shape
        grid.boundaries = tuple(bset)
        return grid

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def block_counts(self) -> tuple[int, ...]:
        """Number of blocks along each mode (``N_A, N_B, N_C`` in V-A)."""
        return tuple(b.shape[0] - 1 for b in self.boundaries)

    @property
    def n_blocks(self) -> int:
        """Total number of blocks (product of per-mode counts)."""
        return int(np.prod(self.block_counts))

    def block_of(self, indices: np.ndarray) -> np.ndarray:
        """Map coordinates to flat block ids.

        ``indices`` has shape ``(n, order)``; the result is ``(n,)`` flat
        ids in C order over the per-mode block coordinates.

        Out-of-range coordinates raise :class:`ShapeError` — without the
        check, ``searchsorted`` would silently clamp them into the first
        or last block (the runtime twin of plan-verifier rule PL401).
        """
        indices = np.asarray(indices)
        if indices.ndim != 2 or indices.shape[1] != self.order:
            raise ShapeError(
                f"indices must be (n, {self.order}), got {indices.shape}"
            )
        flat = np.zeros(indices.shape[0], dtype=INDEX_DTYPE)
        for m, bounds in enumerate(self.boundaries):
            col = indices[:, m]
            if col.size and (col.min() < 0 or col.max() >= self.shape[m]):
                bad = int(((col < 0) | (col >= self.shape[m])).sum())
                raise ShapeError(
                    f"{bad} mode-{m} coordinate(s) outside [0, {self.shape[m]})"
                )
            coord = np.searchsorted(bounds[1:], col, side="right")
            flat = flat * (bounds.shape[0] - 1) + coord
        return flat

    def block_coords(self, flat_id: int) -> tuple[int, ...]:
        """Inverse of the C-order flattening used by :meth:`block_of`."""
        counts = self.block_counts
        coords = []
        for nb in reversed(counts):
            coords.append(int(flat_id % nb))
            flat_id //= nb
        return tuple(reversed(coords))

    def block_bounds(self, coords: Sequence[int]) -> tuple[tuple[int, int], ...]:
        """Half-open index ranges ``(lo, hi)`` per mode for one block."""
        coords = tuple(int(c) for c in coords)
        counts = self.block_counts
        if len(coords) != self.order or any(
            not 0 <= c < n for c, n in zip(coords, counts)
        ):
            raise ConfigError(f"block coords {coords} out of range for {counts}")
        return tuple(
            (int(b[c]), int(b[c + 1])) for b, c in zip(self.boundaries, coords)
        )

    def block_shape(self, coords: Sequence[int]) -> tuple[int, ...]:
        """Extent of one block along each mode."""
        return tuple(hi - lo for lo, hi in self.block_bounds(coords))

    def __repr__(self) -> str:
        dims = "x".join(str(c) for c in self.block_counts)
        return f"BlockGrid({dims} blocks over shape {self.shape})"
