"""Rank blocking and register blocking (Section V-B, Algorithm 2).

Rank blocking divides the factor matrices along the rank (columns) into
``N_RankB`` strips of ``BS_RankB = R / N_RankB`` columns; contributions to
each strip are computed independently, so blocking the rank makes *rows*
of the strip smaller and therefore more of them fit in cache.

Register blocking subdivides each strip's accumulator into groups of
:data:`REGISTER_BLOCK_COLS` columns that live entirely in registers,
eliminating the accumulator load/store instructions that pressure the load
units (the type-3 pressure point of Table I).  The paper uses
``N_RegB = 16`` doubles — one 128-byte POWER8 cache line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError
from repro.util.validation import check_rank, require

#: Columns per register block: 16 doubles = 128 bytes = one POWER8 cache
#: line (the paper's ``NRegB = 16``).
REGISTER_BLOCK_COLS = 16


@dataclass(frozen=True)
class RankBlocking:
    """A rank-blocking configuration.

    Exactly one of ``n_blocks`` / ``block_cols`` may be given; the other is
    derived per rank at :meth:`strips` time.  With neither, the
    configuration is the identity (one strip covering all columns).

    ``register_block`` is the accumulator sub-block width in columns; it
    only affects the load-unit pressure model (register contents are not
    observable from NumPy), but :meth:`strips` validates strip widths
    against it the way the real kernel's unrolling would require.
    """

    n_blocks: int | None = None
    block_cols: int | None = None
    register_block: int = REGISTER_BLOCK_COLS
    #: Whether the factor strips are re-stacked into a tall contiguous
    #: matrix for sequential access (last paragraph of Section V-B); only
    #: the prefetch-efficiency term of the machine model reads this.
    restack: bool = True

    def __post_init__(self) -> None:
        if self.n_blocks is not None and self.block_cols is not None:
            raise ConfigError("give n_blocks or block_cols, not both")
        if self.n_blocks is not None:
            require(self.n_blocks >= 1, f"n_blocks must be >= 1, got {self.n_blocks}")
        if self.block_cols is not None:
            require(
                self.block_cols >= 1,
                f"block_cols must be >= 1, got {self.block_cols}",
            )
        require(
            self.register_block >= 1,
            f"register_block must be >= 1, got {self.register_block}",
        )

    @property
    def is_identity(self) -> bool:
        """True when no rank blocking is configured (a single strip)."""
        return (self.n_blocks in (None, 1)) and self.block_cols is None

    def resolve_block_cols(self, rank: int) -> int:
        """Strip width in columns for a given rank ``R``."""
        rank = check_rank(rank)
        if self.block_cols is not None:
            return min(self.block_cols, rank)
        if self.n_blocks is None:
            return rank
        if self.n_blocks > rank:
            raise ConfigError(
                f"cannot split rank {rank} into {self.n_blocks} strips"
            )
        return -(-rank // self.n_blocks)  # ceil division

    def strips(self, rank: int) -> list[tuple[int, int]]:
        """Half-open column ranges of every strip for a given rank."""
        bs = self.resolve_block_cols(rank)
        return [(lo, min(lo + bs, rank)) for lo in range(0, rank, bs)]

    def n_strips(self, rank: int) -> int:
        """Number of strips for a given rank (the paper's ``N_RankB``)."""
        return len(self.strips(rank))

    def register_blocks(self, strip_cols: int) -> int:
        """Number of register blocks needed to cover one strip's columns.

        Each pass over a fiber handles one register block (Algorithm 2's
        unrolled ``reg0..reg15``), so fibers are re-read this many times —
        cheaply, given their short reuse distance (Section V-B).
        """
        require(strip_cols >= 1, "strip width must be >= 1")
        return -(-strip_cols // self.register_block)

    def describe(self, rank: int) -> str:
        """Human-readable summary for a given rank."""
        strips = self.strips(rank)
        return (
            f"RankBlocking: {len(strips)} strip(s) of <= "
            f"{self.resolve_block_cols(rank)} cols, register block "
            f"{self.register_block}"
        )
