"""Blocking machinery: mode-block grids, tensor reorganization, rank strips,
and the Section V-C block-size selection heuristic.

* :class:`~repro.blocking.grid.BlockGrid` — an axis-aligned partition of the
  index space into blocks (uniform or explicit boundaries; the distributed
  medium-grained decomposition reuses the explicit form).
* :func:`~repro.blocking.partition.partition_coo` — reorganize a COO tensor
  so each block's nonzeros are contiguous (the cheap rearrangement the
  paper contrasts with graph partitioning, Section V-A).
* :class:`~repro.blocking.rank.RankBlocking` — rank strips and register
  blocks (Section V-B).
* :func:`~repro.blocking.heuristic.select_blocking` — the greedy block-size
  search (Section V-C).
"""

from repro.blocking.grid import BlockGrid
from repro.blocking.partition import BlockedTensor, partition_coo
from repro.blocking.rank import RankBlocking, REGISTER_BLOCK_COLS
from repro.blocking.heuristic import BlockingChoice, select_blocking

__all__ = [
    "BlockGrid",
    "BlockedTensor",
    "partition_coo",
    "RankBlocking",
    "REGISTER_BLOCK_COLS",
    "BlockingChoice",
    "select_blocking",
]
