"""repro — reproduction of "Blocking Optimization Techniques for Sparse
Tensor Computation" (Choi, Liu, Smith, Simon — IPDPS 2018).

Subpackages
-----------
:mod:`repro.tensor`    sparse formats (COO, SPLATT, CSF), generators, data sets
:mod:`repro.kernels`   MTTKRP kernels: coo, splatt (Alg. 1), csf, mb,
                       rankb (Alg. 2), mb+rankb
:mod:`repro.blocking`  block grids, rank strips, the Section V-C heuristic
:mod:`repro.machine`   POWER8 machine model, cache simulator, traffic model
:mod:`repro.perf`      roofline (Eq. 1-3), time model, pressure-point analysis
:mod:`repro.dist`      simulated distributed substrate (3D/4D grids, Table III)
:mod:`repro.cpd`       CP-ALS, the application context
:mod:`repro.bench`     experiment functions for every paper table/figure

The most common entry points are re-exported here.
"""

from repro.tensor import COOTensor, CSFTensor, SplattTensor, load_dataset
from repro.kernels import get_kernel
from repro.blocking import BlockGrid, RankBlocking, select_blocking
from repro.machine import power8, power8_socket
from repro.perf import predict_time, run_ppa
from repro.cpd import cp_als

__version__ = "1.0.0"

__all__ = [
    "COOTensor",
    "CSFTensor",
    "SplattTensor",
    "load_dataset",
    "get_kernel",
    "BlockGrid",
    "RankBlocking",
    "select_blocking",
    "power8",
    "power8_socket",
    "predict_time",
    "run_ppa",
    "cp_als",
    "__version__",
]
