"""AST-based kernel-contract checker (rules KC101-KC111).

The :class:`~repro.kernels.base.Kernel` / :class:`~repro.kernels.base.Plan`
ABCs carry invariants the type system cannot express: every kernel must
allocate its output through ``alloc_output`` (so buffers are zeroed,
float64, and shape-checked), validate factors through ``check_factors``
(so dtype/contiguity coercion is uniform), keep the ``prepare(tensor,
mode, **params)`` / ``execute(plan, factors, out=None)`` signatures the
CLI and CP-ALS driver rely on, and register a unique name.  This pass
proves those properties *statically* — no kernel import, no execution —
so a contract-breaking kernel is caught by ``repro check`` before any
benchmark or CPD run trusts it.

The checker is purely syntactic: it inspects classes whose base-class
spelling is ``Kernel`` / ``Plan`` (possibly dotted, e.g. ``base.Kernel``)
and ``register_kernel(...)`` call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic


def _base_names(cls: ast.ClassDef) -> set[str]:
    """Last components of all base-class expressions (``base.Kernel`` ->
    ``Kernel``)."""
    names = set()
    for b in cls.bases:
        if isinstance(b, ast.Name):
            names.add(b.id)
        elif isinstance(b, ast.Attribute):
            names.add(b.attr)
    return names


def _class_attr_str(cls: ast.ClassDef, attr: str) -> "str | None":
    """Value of a class-level ``attr = "literal"`` assignment, if any."""
    for node in cls.body:
        targets: list[ast.expr] = []
        value: "ast.expr | None" = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for t in targets:
            if isinstance(t, ast.Name) and t.id == attr:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
                return ""  # assigned, but not a string literal
    return None


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _decorator_names(fn: ast.FunctionDef) -> set[str]:
    names = set()
    for d in fn.decorator_list:
        if isinstance(d, ast.Name):
            names.add(d.id)
        elif isinstance(d, ast.Attribute):
            names.add(d.attr)
        elif isinstance(d, ast.Call):
            if isinstance(d.func, ast.Name):
                names.add(d.func.id)
            elif isinstance(d.func, ast.Attribute):
                names.add(d.func.attr)
    return names


def _calls_function(fn: ast.FunctionDef, name: str) -> bool:
    """True if the function body contains a call to ``name`` (bare or as
    the last component of a dotted call)."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name) and f.id == name:
                return True
            if isinstance(f, ast.Attribute) and f.attr == name:
                return True
    return False


@dataclass
class RegisteredKernel:
    """One ``register_kernel(Cls())`` site resolved to its class."""

    class_name: str
    registry_name: "str | None"
    file: str
    line: int


@dataclass
class ContractScan:
    """Findings of one file plus the registration records needed for the
    cross-file duplicate-name rule (KC101)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    registrations: list[RegisteredKernel] = field(default_factory=list)


def _check_prepare(fn: ast.FunctionDef, file: str, diags: list[Diagnostic]) -> None:
    args = fn.args
    names = [a.arg for a in args.args]
    ok = len(names) >= 3 and names[0] == "self" and names[1] == "tensor" and names[2] == "mode"
    if not ok:
        diags.append(
            Diagnostic(
                "KC103",
                file,
                fn.lineno,
                fn.col_offset,
                f"prepare() must start with (self, tensor, mode, ...), got ({', '.join(names)})",
                hint="match Kernel.prepare(self, tensor, mode, **params)",
            )
        )
        return
    if args.kwarg is None:
        diags.append(
            Diagnostic(
                "KC103",
                file,
                fn.lineno,
                fn.col_offset,
                "prepare() must accept **params so kernel-specific options pass through get_kernel/CLI paths",
                hint="add a trailing **params: object parameter",
            )
        )


def _check_execute(fn: ast.FunctionDef, file: str, diags: list[Diagnostic]) -> None:
    args = fn.args
    names = [a.arg for a in args.args]
    ok = len(names) >= 3 and names[0] == "self" and names[1] == "plan" and names[2] == "factors"
    out_ok = False
    if len(names) >= 4 and names[3] == "out":
        # out must carry a default (None) so execute(plan, factors) works.
        n_defaults = len(args.defaults)
        out_ok = n_defaults >= len(names) - 3
    elif any(a.arg == "out" for a in args.kwonlyargs):
        idx = [a.arg for a in args.kwonlyargs].index("out")
        out_ok = args.kw_defaults[idx] is not None
    if not (ok and out_ok):
        diags.append(
            Diagnostic(
                "KC104",
                file,
                fn.lineno,
                fn.col_offset,
                f"execute() must be (self, plan, factors, out=None), got ({', '.join(names)})",
                hint="match Kernel.execute(self, plan, factors, out=None)",
            )
        )


def _check_kernel_class(
    cls: ast.ClassDef, file: str, scan: ContractScan
) -> None:
    diags = scan.diagnostics
    name = _class_attr_str(cls, "name")
    if not name:
        diags.append(
            Diagnostic(
                "KC102",
                file,
                cls.lineno,
                cls.col_offset,
                f"kernel class {cls.name} has no class-level string `name`",
                hint='set name = "<registry-key>" on the class',
            )
        )
    methods = _methods(cls)
    for required in ("prepare", "execute"):
        if required not in methods:
            diags.append(
                Diagnostic(
                    "KC111",
                    file,
                    cls.lineno,
                    cls.col_offset,
                    f"kernel class {cls.name} does not define {required}()",
                    hint="implement the Kernel ABC method",
                )
            )
    if "prepare" in methods:
        _check_prepare(methods["prepare"], file, diags)
    if "execute" in methods:
        ex = methods["execute"]
        _check_execute(ex, file, diags)
        if not _calls_function(ex, "alloc_output"):
            diags.append(
                Diagnostic(
                    "KC105",
                    file,
                    ex.lineno,
                    ex.col_offset,
                    f"{cls.name}.execute() never calls alloc_output()",
                    hint="allocate the (I_mode, R) output with kernels.base.alloc_output "
                    "so the buffer is zeroed, float64, and shape-checked",
                )
            )
        if not _calls_function(ex, "check_factors"):
            diags.append(
                Diagnostic(
                    "KC106",
                    file,
                    ex.lineno,
                    ex.col_offset,
                    f"{cls.name}.execute() never calls check_factors()",
                    hint="validate factors with kernels.base.check_factors for "
                    "uniform dtype/contiguity/rank handling",
                )
            )


def _check_plan_class(cls: ast.ClassDef, file: str, scan: ContractScan) -> None:
    diags = scan.diagnostics
    methods = _methods(cls)
    if "block_stats" not in methods:
        diags.append(
            Diagnostic(
                "KC107",
                file,
                cls.lineno,
                cls.col_offset,
                f"plan class {cls.name} does not implement block_stats()",
                hint="return the per-phase BlockStats list the machine model consumes",
            )
        )
    if _class_attr_str(cls, "kernel_name") is None and "__init__" not in methods:
        diags.append(
            Diagnostic(
                "KC108",
                file,
                cls.lineno,
                cls.col_offset,
                f"plan class {cls.name} never sets kernel_name",
                hint='set kernel_name = "<kernel>" at class level',
            )
        )
    elif _class_attr_str(cls, "kernel_name") is None:
        # Accept an instance-level self.kernel_name assignment in __init__.
        init = methods["__init__"]
        sets_it = any(
            isinstance(n, ast.Assign)
            and any(
                isinstance(t, ast.Attribute)
                and t.attr == "kernel_name"
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in n.targets
            )
            for n in ast.walk(init)
        )
        if not sets_it:
            diags.append(
                Diagnostic(
                    "KC108",
                    file,
                    cls.lineno,
                    cls.col_offset,
                    f"plan class {cls.name} never sets kernel_name",
                    hint='set kernel_name = "<kernel>" at class level',
                )
            )
    for prop in ("nnz", "n_fibers"):
        fn = methods.get(prop)
        if fn is not None and "property" not in _decorator_names(fn):
            diags.append(
                Diagnostic(
                    "KC110",
                    file,
                    fn.lineno,
                    fn.col_offset,
                    f"{cls.name}.{prop} overrides a Plan property with a plain method",
                    hint="decorate with @property (callers read plan.nnz, not plan.nnz())",
                )
            )


def scan_source(
    source: str, file: str, tree: "ast.Module | None" = None
) -> ContractScan:
    """Run the contract pass over one module's source.

    ``tree`` optionally supplies the already-parsed module (the runner's
    shared parse cache); without it the source is parsed here, keeping
    KC111 syntax-error reporting for standalone callers.
    """
    scan = ContractScan()
    try:
        if tree is None:
            tree = ast.parse(source, filename=file)
    except SyntaxError as exc:  # pragma: no cover - defensive
        scan.diagnostics.append(
            Diagnostic(
                "KC111",
                file,
                exc.lineno or 1,
                0,
                f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
            )
        )
        return scan

    classes: dict[str, ast.ClassDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            classes[node.name] = node
            bases = _base_names(node)
            if "Kernel" in bases:
                _check_kernel_class(node, file, scan)
            if "Plan" in bases:
                _check_plan_class(node, file, scan)

    # Registration sites: register_kernel(Cls()) / register_kernel(Cls).
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "register_kernel"):
            continue
        if not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Name):
            # A bare class reference registers the class object, whose
            # .prepare/.execute are unbound — a latent TypeError.
            if arg.id in classes:
                scan.diagnostics.append(
                    Diagnostic(
                        "KC109",
                        file,
                        node.lineno,
                        node.col_offset,
                        f"register_kernel({arg.id}) registers the class itself, not an instance",
                        hint=f"call register_kernel({arg.id}())",
                    )
                )
                scan.registrations.append(
                    RegisteredKernel(
                        arg.id,
                        _class_attr_str(classes[arg.id], "name"),
                        file,
                        node.lineno,
                    )
                )
            continue
        if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name):
            cls_name = arg.func.id
            cls = classes.get(cls_name)
            registry_name = _class_attr_str(cls, "name") if cls is not None else None
            scan.registrations.append(
                RegisteredKernel(cls_name, registry_name, file, node.lineno)
            )
    return scan


def _call_name(node: ast.Call) -> "str | None":
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def duplicate_name_diagnostics(
    registrations: list[RegisteredKernel],
) -> list[Diagnostic]:
    """Cross-file rule KC101: every registry name has exactly one owner."""
    by_name: dict[str, list[RegisteredKernel]] = {}
    for reg in registrations:
        if reg.registry_name:
            by_name.setdefault(reg.registry_name, []).append(reg)
    diags: list[Diagnostic] = []
    for name, regs in sorted(by_name.items()):
        if len(regs) <= 1:
            continue
        owners = ", ".join(f"{r.class_name} ({r.file}:{r.line})" for r in regs)
        for reg in regs[1:]:
            diags.append(
                Diagnostic(
                    "KC101",
                    reg.file,
                    reg.line,
                    0,
                    f"kernel name {name!r} registered more than once: {owners}",
                    hint="pick a unique name; register_kernel raises RegistrationError at runtime",
                )
            )
    return diags
