"""Unified diagnostic model for the static-analysis passes.

Every pass (:mod:`repro.analysis.contract`, :mod:`repro.analysis.races`,
:mod:`repro.analysis.hotpath`) reports findings as :class:`Diagnostic`
records — rule id, severity, location, message, fix hint — so the CLI can
render one consistent text or JSON stream and CI can consume it.

Rules are registered in :data:`RULES`; each is individually suppressible,
either inline (``# repro: noqa`` or ``# repro: noqa[HP302]`` on the
flagged line) or globally (``repro check --ignore HP302``).  The full rule
catalog with rationale and examples lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings are contract or safety
    violations; ``WARNING`` findings are performance hazards."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """One checkable invariant: id, default severity, one-line summary."""

    id: str
    severity: Severity
    summary: str


#: The rule catalog.  Ids are stable; docs/static-analysis.md documents
#: each with rationale, an example, and the suppression spelling.
RULES: dict[str, Rule] = {
    r.id: r
    for r in [
        # --- kernel contract (KC1xx) ---------------------------------
        Rule("KC101", Severity.ERROR, "duplicate kernel registry name"),
        Rule("KC102", Severity.ERROR, "kernel class without a class-level name"),
        Rule("KC103", Severity.ERROR, "prepare() signature breaks the Kernel ABC"),
        Rule("KC104", Severity.ERROR, "execute() signature breaks the Kernel ABC"),
        Rule("KC105", Severity.ERROR, "execute() does not allocate via alloc_output"),
        Rule("KC106", Severity.ERROR, "execute() does not validate via check_factors"),
        Rule("KC107", Severity.ERROR, "Plan subclass missing block_stats()"),
        Rule("KC108", Severity.ERROR, "Plan subclass missing kernel_name"),
        Rule("KC109", Severity.ERROR, "register_kernel() called with a class, not an instance"),
        Rule("KC110", Severity.ERROR, "Plan.nnz/n_fibers overridden without @property"),
        Rule("KC111", Severity.ERROR, "Kernel subclass missing prepare()/execute()"),
        # --- blocked-schedule races (RS2xx) ---------------------------
        Rule("RS201", Severity.ERROR, "parallel tasks write overlapping output rows"),
        Rule("RS202", Severity.ERROR, "block-parallel schedule over a grid with one output-mode block"),
        # --- hot-path performance (HP3xx) -----------------------------
        Rule("HP301", Severity.WARNING, "per-element Python loop over an array"),
        Rule("HP302", Severity.WARNING, "loop-invariant attribute chain looked up repeatedly in a hot loop"),
        Rule("HP303", Severity.WARNING, "numpy allocation without an explicit dtype"),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pointing at a file:line with a fix hint."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: Severity = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ConfigError(f"unknown diagnostic rule {self.rule!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule].severity)

    def format(self) -> str:
        """``file:line:col: RULE [severity] message (hint: ...)``."""
        loc = f"{self.file}:{self.line}:{self.col}"
        text = f"{loc}: {self.rule} [{self.severity.value}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--format json`` record)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


def resolve_rules(spec: "str | list[str] | None") -> "set[str] | None":
    """Parse a ``--select`` / ``--ignore`` rule list (comma or space
    separated ids, or prefixes like ``HP``); ``None`` means no filter."""
    if spec is None:
        return None
    if isinstance(spec, str):
        parts = [p for p in re.split(r"[,\s]+", spec) if p]
    else:
        parts = list(spec)
    resolved: set[str] = set()
    for part in parts:
        part = part.upper()
        matches = {rid for rid in RULES if rid == part or rid.startswith(part)}
        if not matches:
            raise ConfigError(
                f"unknown rule or prefix {part!r}; known: {sorted(RULES)}"
            )
        resolved |= matches
    return resolved


#: Inline suppression marker: ``# repro: noqa`` (all rules) or
#: ``# repro: noqa[KC105,HP302]`` (listed rules only).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[\w,\s]+)\])?")


def suppressions_for_source(source: str) -> "dict[int, set[str] | None]":
    """Map 1-based line numbers to their suppressed rule ids.

    A value of ``None`` suppresses every rule on that line.
    """
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return out


def apply_suppressions(
    diags: list[Diagnostic], suppressions: "dict[int, set[str] | None]"
) -> list[Diagnostic]:
    """Drop diagnostics whose line carries a matching ``repro: noqa``."""
    kept = []
    for d in diags:
        rules = suppressions.get(d.line, ...)
        if rules is ...:
            kept.append(d)
        elif rules is not None and d.rule not in rules:
            kept.append(d)
    return kept


def filter_rules(
    diags: list[Diagnostic],
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
) -> list[Diagnostic]:
    """Apply ``--select`` / ``--ignore`` filters."""
    out = []
    for d in diags:
        if select is not None and d.rule not in select:
            continue
        if ignore is not None and d.rule in ignore:
            continue
        out.append(d)
    return out


def render_text(diags: list[Diagnostic], files_checked: int) -> str:
    """The human-readable report."""
    lines = [d.format() for d in diags]
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    warnings = len(diags) - errors
    lines.append(
        f"repro check: {files_checked} file(s), "
        f"{errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(diags: list[Diagnostic], files_checked: int) -> str:
    """The machine-readable report (``--format json``)."""
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    return json.dumps(
        {
            "diagnostics": [d.to_dict() for d in diags],
            "summary": {
                "files_checked": files_checked,
                "errors": errors,
                "warnings": len(diags) - errors,
            },
        },
        indent=2,
    )
