"""Unified diagnostic model for the static-analysis passes.

Every pass (:mod:`repro.analysis.contract`, :mod:`repro.analysis.races`,
:mod:`repro.analysis.hotpath`) reports findings as :class:`Diagnostic`
records — rule id, severity, location, message, fix hint — so the CLI can
render one consistent text or JSON stream and CI can consume it.

Rules are registered in :data:`RULES`; each is individually suppressible,
either inline (``# repro: noqa`` or ``# repro: noqa[HP302]`` on the
flagged line) or globally (``repro check --ignore HP302``).  The full rule
catalog with rationale and examples lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import enum
import io
import json
import re
import tokenize
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings are contract or safety
    violations; ``WARNING`` findings are performance hazards."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """One checkable invariant: id, default severity, one-line summary."""

    id: str
    severity: Severity
    summary: str


#: The rule catalog.  Ids are stable; docs/static-analysis.md documents
#: each with rationale, an example, and the suppression spelling.
RULES: dict[str, Rule] = {
    r.id: r
    for r in [
        # --- kernel contract (KC1xx) ---------------------------------
        Rule("KC101", Severity.ERROR, "duplicate kernel registry name"),
        Rule("KC102", Severity.ERROR, "kernel class without a class-level name"),
        Rule("KC103", Severity.ERROR, "prepare() signature breaks the Kernel ABC"),
        Rule("KC104", Severity.ERROR, "execute() signature breaks the Kernel ABC"),
        Rule("KC105", Severity.ERROR, "execute() does not allocate via alloc_output"),
        Rule("KC106", Severity.ERROR, "execute() does not validate via check_factors"),
        Rule("KC107", Severity.ERROR, "Plan subclass missing block_stats()"),
        Rule("KC108", Severity.ERROR, "Plan subclass missing kernel_name"),
        Rule("KC109", Severity.ERROR, "register_kernel() called with a class, not an instance"),
        Rule("KC110", Severity.ERROR, "Plan.nnz/n_fibers overridden without @property"),
        Rule("KC111", Severity.ERROR, "Kernel subclass missing prepare()/execute()"),
        # --- blocked-schedule races (RS2xx) ---------------------------
        Rule("RS201", Severity.ERROR, "parallel tasks write overlapping output rows"),
        Rule("RS202", Severity.ERROR, "block-parallel schedule over a grid with one output-mode block"),
        # --- hot-path performance (HP3xx) -----------------------------
        Rule("HP301", Severity.WARNING, "per-element Python loop over an array"),
        Rule("HP302", Severity.WARNING, "loop-invariant attribute chain looked up repeatedly in a hot loop"),
        Rule("HP303", Severity.WARNING, "numpy allocation without an explicit dtype"),
        # --- plan verifier (PL4xx) ------------------------------------
        Rule("PL401", Severity.ERROR, "mode boundaries leave an index-space gap"),
        Rule("PL402", Severity.ERROR, "mode boundaries overlap (an index lands in two blocks)"),
        Rule("PL403", Severity.ERROR, "rank strips fail to tile [0, R)"),
        Rule("PL404", Severity.ERROR, "register blocks do not cover their rank strip"),
        Rule("PL405", Severity.ERROR, "decomposition blocks do not tile the index space"),
        Rule("PL406", Severity.ERROR, "nonzero maps to zero or multiple (replica, block) owners"),
        Rule("PL407", Severity.ERROR, "thread_ranges do not tile the output rows exactly once"),
        Rule("PL408", Severity.ERROR, "4D rank extension breaks fold completeness or layer bijection"),
        Rule("PL409", Severity.WARNING, "plan working set exceeds the targeted cache level"),
        # --- execution sanitizer (SZ5xx) ------------------------------
        Rule("SZ501", Severity.ERROR, "kernel wrote outside its declared write-set"),
        Rule("SZ502", Severity.ERROR, "gather index out of bounds for the factor it indexes"),
        Rule("SZ503", Severity.ERROR, "NaN emerged from finite inputs"),
        Rule("SZ504", Severity.ERROR, "Inf emerged from finite inputs"),
        Rule("SZ505", Severity.ERROR, "output dtype drifted from VALUE_DTYPE"),
        Rule("SZ506", Severity.WARNING, "observed factor-row footprint diverges from the traffic model"),
        # --- dtype & effect dataflow (DF6xx) --------------------------
        Rule("DF601", Severity.ERROR, "literal float64 dtype on a precision-contract path"),
        Rule("DF602", Severity.ERROR, "dtype-less numpy allocation on a precision-contract path"),
        Rule("DF603", Severity.ERROR, "widening cast of a factor-derived value to float64"),
        Rule("DF604", Severity.ERROR, "mixed-precision binary operation"),
        Rule("DF605", Severity.ERROR, "helper returns a fixed dtype into a factor-dtype pipeline"),
        Rule("DF606", Severity.ERROR, "worker/kernel body writes state outside its own arguments"),
        Rule("DF607", Severity.ERROR, "process-backend task captures module-level mutable state"),
        Rule("DF608", Severity.ERROR, "unpicklable callable/argument submitted to a process pool"),
        Rule("DF609", Severity.ERROR, "tracer emission inside a per-element loop"),
        Rule("DF610", Severity.WARNING, "tracer emission inside a kernel loop"),
        Rule("DF611", Severity.ERROR, "kernel class failed registration-time dataflow vetting"),
        Rule("DF612", Severity.ERROR, "VALUE_DTYPE-pinned float64 sinks a factor-derived pipeline"),
        Rule("DF613", Severity.ERROR, "backend op failed registration-time dataflow vetting"),
        # --- symbolic cost certifier (CT7xx) --------------------------
        Rule("CT701", Severity.ERROR, "derived kernel traffic disagrees with the analytic model"),
        Rule("CT702", Severity.ERROR, "model traffic term has no matching kernel access"),
        Rule("CT703", Severity.ERROR, "kernel array access the traffic model does not describe"),
        Rule("CT704", Severity.ERROR, "derived write footprint exceeds the declared write_set()"),
        Rule("CT705", Severity.ERROR, "output write target or declared write_set() not statically resolvable"),
        Rule("CT706", Severity.ERROR, "kernel.gathers counter emission inconsistent with the certificate"),
        Rule("CT707", Severity.ERROR, "kernel.factor_bytes counter emission inconsistent with the certificate"),
        Rule("CT708", Severity.ERROR, "measured obs counters drifted from the symbolic certificate"),
        Rule("CT709", Severity.ERROR, "cost certificate underivable or unverifiable"),
        # --- suppression hygiene (DG0xx) ------------------------------
        Rule("DG001", Severity.WARNING, "unused `# repro: noqa` suppression"),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pointing at a file:line with a fix hint."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: Severity = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ConfigError(f"unknown diagnostic rule {self.rule!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule].severity)

    def format(self) -> str:
        """``file:line:col: RULE [severity] message (hint: ...)``."""
        loc = f"{self.file}:{self.line}:{self.col}"
        text = f"{loc}: {self.rule} [{self.severity.value}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--format json`` record)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


def resolve_rules(spec: "str | list[str] | None") -> "set[str] | None":
    """Parse a ``--select`` / ``--ignore`` rule list (comma or space
    separated ids, or prefixes like ``HP``); ``None`` means no filter."""
    if spec is None:
        return None
    if isinstance(spec, str):
        parts = [p for p in re.split(r"[,\s]+", spec) if p]
    else:
        parts = list(spec)
    resolved: set[str] = set()
    for part in parts:
        part = part.upper()
        matches = {rid for rid in RULES if rid == part or rid.startswith(part)}
        if not matches:
            raise ConfigError(
                f"unknown rule or prefix {part!r}; known: {sorted(RULES)}"
            )
        resolved |= matches
    return resolved


#: Inline suppression marker: ``# repro: noqa`` (all rules) or
#: ``# repro: noqa[KC105,HP302]`` (listed rules only).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[\w,\s]+)\])?")


def _record_noqa(
    out: "dict[int, set[str] | None]", lineno: int, m: "re.Match[str]"
) -> None:
    rules = m.group("rules")
    if rules is None:
        out[lineno] = None
    else:
        out[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}


def suppressions_for_source(source: str) -> "dict[int, set[str] | None]":
    """Map 1-based line numbers to their suppressed rule ids.

    A value of ``None`` suppresses every rule on that line.  Only real
    comment tokens count — a ``# repro: noqa`` spelling quoted inside a
    docstring (or backtick-quoted inside a doc comment, as in this very
    module) documents the marker rather than applying it.  Sources that
    fail to tokenize fall back to a plain line scan.
    """
    out: dict[int, set[str] | None] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            if m.start() > 0 and tok.string[m.start() - 1] in "`\"'":
                continue  # quoted mention, not a directive
            _record_noqa(out, tok.start[0], m)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        out.clear()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _NOQA_RE.search(line)
            if m is not None:
                _record_noqa(out, lineno, m)
    return out


def apply_suppressions(
    diags: list[Diagnostic], suppressions: "dict[int, set[str] | None]"
) -> list[Diagnostic]:
    """Drop diagnostics whose line carries a matching ``repro: noqa``."""
    kept = []
    for d in diags:
        rules = suppressions.get(d.line, ...)
        if rules is ...:
            kept.append(d)
        elif rules is not None and d.rule not in rules:
            kept.append(d)
    return kept


def filter_rules(
    diags: list[Diagnostic],
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
) -> list[Diagnostic]:
    """Apply ``--select`` / ``--ignore`` filters."""
    out = []
    for d in diags:
        if select is not None and d.rule not in select:
            continue
        if ignore is not None and d.rule in ignore:
            continue
        out.append(d)
    return out


#: Rule-family prefix -> human label, in catalog order (``--statistics``).
RULE_FAMILIES: dict[str, str] = {
    "KC": "kernel contract",
    "RS": "schedule races",
    "HP": "hot-path lint",
    "PL": "plan verifier",
    "SZ": "execution sanitizer",
    "DF": "dtype & effect dataflow",
    "CT": "cost certifier",
    "DG": "suppression hygiene",
}

#: Families whose rules are produced at runtime, never by a file-based
#: pass — a ``# repro: noqa[SZ501]`` in source can therefore never be
#: "exercised" by ``repro check`` and is exempt from DG001.
RUNTIME_FAMILIES: frozenset = frozenset({"RS", "SZ"})


def unused_suppression_diagnostics(
    raw_diags: list[Diagnostic],
    suppressions: "dict[int, set[str] | None]",
    file: str,
    active_families: "set[str] | frozenset",
) -> list[Diagnostic]:
    """Rule DG001 (the RUF100 analog): flag ``# repro: noqa`` comments
    that suppressed nothing.

    ``raw_diags`` are the file's diagnostics *before* suppression, so a
    noqa that matched at least one finding counts as used.  Only rules
    whose family pass actually ran this invocation (``active_families``)
    are considered — a ``noqa[DF601]`` is not "unused" just because the
    run skipped ``--dataflow`` — and runtime-only families (RS/SZ) are
    always exempt.  A line whose noqa names ``DG001`` itself is never
    flagged (the self-suppression spelling).
    """
    by_line: dict[int, set[str]] = {}
    for d in raw_diags:
        by_line.setdefault(d.line, set()).add(d.rule)
    out: list[Diagnostic] = []
    for line in sorted(suppressions):
        rules = suppressions[line]
        fired = by_line.get(line, set())
        if rules is None:
            # Bare `# repro: noqa`: unused only when nothing at all fired.
            if not fired:
                out.append(
                    Diagnostic(
                        "DG001",
                        file,
                        line,
                        0,
                        "bare `# repro: noqa` suppresses nothing on this line",
                        hint="remove it, or scope it to the rule you expect "
                        "(`# repro: noqa[RULE]`)",
                    )
                )
            continue
        if "DG001" in rules:
            continue
        considered = {
            r
            for r in rules
            if family_of(r) in active_families
            and family_of(r) not in RUNTIME_FAMILIES
        }
        unused = sorted(considered - fired)
        if unused:
            out.append(
                Diagnostic(
                    "DG001",
                    file,
                    line,
                    0,
                    "unused suppression: "
                    + ", ".join(unused)
                    + " never fires on this line",
                    hint="drop the stale rule id(s) from the noqa comment",
                )
            )
    return out


def family_of(rule: str) -> str:
    """The family prefix of a rule id (``"KC105"`` -> ``"KC"``)."""
    alpha = rule.rstrip("0123456789")
    return alpha if alpha in RULE_FAMILIES else rule


def rule_family_counts(diags: list[Diagnostic]) -> dict[str, int]:
    """Per-family diagnostic counts, keyed by prefix, catalog order first."""
    counts: dict[str, int] = {}
    for family in RULE_FAMILIES:
        n = sum(1 for d in diags if family_of(d.rule) == family)
        if n:
            counts[family] = n
    for d in diags:  # anything outside the known families, just in case
        fam = family_of(d.rule)
        if fam not in counts and fam not in RULE_FAMILIES:
            counts[fam] = sum(1 for x in diags if family_of(x.rule) == fam)
    return counts


def render_text(
    diags: list[Diagnostic], files_checked: int, statistics: bool = False
) -> str:
    """The human-readable report."""
    lines = [d.format() for d in diags]
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    warnings = len(diags) - errors
    lines.append(
        f"repro check: {files_checked} file(s), "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if statistics:
        counts = rule_family_counts(diags)
        if counts:
            for fam, n in counts.items():
                label = RULE_FAMILIES.get(fam, fam)
                lines.append(f"  {fam}: {n}  ({label})")
        else:
            lines.append("  (no diagnostics in any rule family)")
    return "\n".join(lines)


def render_json(
    diags: list[Diagnostic], files_checked: int, statistics: bool = False
) -> str:
    """The machine-readable report (``--format json``)."""
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    payload = {
        "diagnostics": [d.to_dict() for d in diags],
        "summary": {
            "files_checked": files_checked,
            "errors": errors,
            "warnings": len(diags) - errors,
        },
    }
    if statistics:
        payload["statistics"] = rule_family_counts(diags)
    return json.dumps(payload, indent=2)
