"""Unified diagnostic model for the static-analysis passes.

Every pass (:mod:`repro.analysis.contract`, :mod:`repro.analysis.races`,
:mod:`repro.analysis.hotpath`) reports findings as :class:`Diagnostic`
records — rule id, severity, location, message, fix hint — so the CLI can
render one consistent text or JSON stream and CI can consume it.

Rules are registered in :data:`RULES`; each is individually suppressible,
either inline (``# repro: noqa`` or ``# repro: noqa[HP302]`` on the
flagged line) or globally (``repro check --ignore HP302``).  The full rule
catalog with rationale and examples lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings are contract or safety
    violations; ``WARNING`` findings are performance hazards."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """One checkable invariant: id, default severity, one-line summary."""

    id: str
    severity: Severity
    summary: str


#: The rule catalog.  Ids are stable; docs/static-analysis.md documents
#: each with rationale, an example, and the suppression spelling.
RULES: dict[str, Rule] = {
    r.id: r
    for r in [
        # --- kernel contract (KC1xx) ---------------------------------
        Rule("KC101", Severity.ERROR, "duplicate kernel registry name"),
        Rule("KC102", Severity.ERROR, "kernel class without a class-level name"),
        Rule("KC103", Severity.ERROR, "prepare() signature breaks the Kernel ABC"),
        Rule("KC104", Severity.ERROR, "execute() signature breaks the Kernel ABC"),
        Rule("KC105", Severity.ERROR, "execute() does not allocate via alloc_output"),
        Rule("KC106", Severity.ERROR, "execute() does not validate via check_factors"),
        Rule("KC107", Severity.ERROR, "Plan subclass missing block_stats()"),
        Rule("KC108", Severity.ERROR, "Plan subclass missing kernel_name"),
        Rule("KC109", Severity.ERROR, "register_kernel() called with a class, not an instance"),
        Rule("KC110", Severity.ERROR, "Plan.nnz/n_fibers overridden without @property"),
        Rule("KC111", Severity.ERROR, "Kernel subclass missing prepare()/execute()"),
        # --- blocked-schedule races (RS2xx) ---------------------------
        Rule("RS201", Severity.ERROR, "parallel tasks write overlapping output rows"),
        Rule("RS202", Severity.ERROR, "block-parallel schedule over a grid with one output-mode block"),
        # --- hot-path performance (HP3xx) -----------------------------
        Rule("HP301", Severity.WARNING, "per-element Python loop over an array"),
        Rule("HP302", Severity.WARNING, "loop-invariant attribute chain looked up repeatedly in a hot loop"),
        Rule("HP303", Severity.WARNING, "numpy allocation without an explicit dtype"),
        # --- plan verifier (PL4xx) ------------------------------------
        Rule("PL401", Severity.ERROR, "mode boundaries leave an index-space gap"),
        Rule("PL402", Severity.ERROR, "mode boundaries overlap (an index lands in two blocks)"),
        Rule("PL403", Severity.ERROR, "rank strips fail to tile [0, R)"),
        Rule("PL404", Severity.ERROR, "register blocks do not cover their rank strip"),
        Rule("PL405", Severity.ERROR, "decomposition blocks do not tile the index space"),
        Rule("PL406", Severity.ERROR, "nonzero maps to zero or multiple (replica, block) owners"),
        Rule("PL407", Severity.ERROR, "thread_ranges do not tile the output rows exactly once"),
        Rule("PL408", Severity.ERROR, "4D rank extension breaks fold completeness or layer bijection"),
        Rule("PL409", Severity.WARNING, "plan working set exceeds the targeted cache level"),
        # --- execution sanitizer (SZ5xx) ------------------------------
        Rule("SZ501", Severity.ERROR, "kernel wrote outside its declared write-set"),
        Rule("SZ502", Severity.ERROR, "gather index out of bounds for the factor it indexes"),
        Rule("SZ503", Severity.ERROR, "NaN emerged from finite inputs"),
        Rule("SZ504", Severity.ERROR, "Inf emerged from finite inputs"),
        Rule("SZ505", Severity.ERROR, "output dtype drifted from VALUE_DTYPE"),
        Rule("SZ506", Severity.WARNING, "observed factor-row footprint diverges from the traffic model"),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pointing at a file:line with a fix hint."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: Severity = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ConfigError(f"unknown diagnostic rule {self.rule!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule].severity)

    def format(self) -> str:
        """``file:line:col: RULE [severity] message (hint: ...)``."""
        loc = f"{self.file}:{self.line}:{self.col}"
        text = f"{loc}: {self.rule} [{self.severity.value}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--format json`` record)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


def resolve_rules(spec: "str | list[str] | None") -> "set[str] | None":
    """Parse a ``--select`` / ``--ignore`` rule list (comma or space
    separated ids, or prefixes like ``HP``); ``None`` means no filter."""
    if spec is None:
        return None
    if isinstance(spec, str):
        parts = [p for p in re.split(r"[,\s]+", spec) if p]
    else:
        parts = list(spec)
    resolved: set[str] = set()
    for part in parts:
        part = part.upper()
        matches = {rid for rid in RULES if rid == part or rid.startswith(part)}
        if not matches:
            raise ConfigError(
                f"unknown rule or prefix {part!r}; known: {sorted(RULES)}"
            )
        resolved |= matches
    return resolved


#: Inline suppression marker: ``# repro: noqa`` (all rules) or
#: ``# repro: noqa[KC105,HP302]`` (listed rules only).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[\w,\s]+)\])?")


def suppressions_for_source(source: str) -> "dict[int, set[str] | None]":
    """Map 1-based line numbers to their suppressed rule ids.

    A value of ``None`` suppresses every rule on that line.
    """
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return out


def apply_suppressions(
    diags: list[Diagnostic], suppressions: "dict[int, set[str] | None]"
) -> list[Diagnostic]:
    """Drop diagnostics whose line carries a matching ``repro: noqa``."""
    kept = []
    for d in diags:
        rules = suppressions.get(d.line, ...)
        if rules is ...:
            kept.append(d)
        elif rules is not None and d.rule not in rules:
            kept.append(d)
    return kept


def filter_rules(
    diags: list[Diagnostic],
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
) -> list[Diagnostic]:
    """Apply ``--select`` / ``--ignore`` filters."""
    out = []
    for d in diags:
        if select is not None and d.rule not in select:
            continue
        if ignore is not None and d.rule in ignore:
            continue
        out.append(d)
    return out


#: Rule-family prefix -> human label, in catalog order (``--statistics``).
RULE_FAMILIES: dict[str, str] = {
    "KC": "kernel contract",
    "RS": "schedule races",
    "HP": "hot-path lint",
    "PL": "plan verifier",
    "SZ": "execution sanitizer",
}


def family_of(rule: str) -> str:
    """The family prefix of a rule id (``"KC105"`` -> ``"KC"``)."""
    alpha = rule.rstrip("0123456789")
    return alpha if alpha in RULE_FAMILIES else rule


def rule_family_counts(diags: list[Diagnostic]) -> dict[str, int]:
    """Per-family diagnostic counts, keyed by prefix, catalog order first."""
    counts: dict[str, int] = {}
    for family in RULE_FAMILIES:
        n = sum(1 for d in diags if family_of(d.rule) == family)
        if n:
            counts[family] = n
    for d in diags:  # anything outside the known families, just in case
        fam = family_of(d.rule)
        if fam not in counts and fam not in RULE_FAMILIES:
            counts[fam] = sum(1 for x in diags if family_of(x.rule) == fam)
    return counts


def render_text(
    diags: list[Diagnostic], files_checked: int, statistics: bool = False
) -> str:
    """The human-readable report."""
    lines = [d.format() for d in diags]
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    warnings = len(diags) - errors
    lines.append(
        f"repro check: {files_checked} file(s), "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if statistics:
        counts = rule_family_counts(diags)
        if counts:
            for fam, n in counts.items():
                label = RULE_FAMILIES.get(fam, fam)
                lines.append(f"  {fam}: {n}  ({label})")
        else:
            lines.append("  (no diagnostics in any rule family)")
    return "\n".join(lines)


def render_json(
    diags: list[Diagnostic], files_checked: int, statistics: bool = False
) -> str:
    """The machine-readable report (``--format json``)."""
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    payload = {
        "diagnostics": [d.to_dict() for d in diags],
        "summary": {
            "files_checked": files_checked,
            "errors": errors,
            "warnings": len(diags) - errors,
        },
    }
    if statistics:
        payload["statistics"] = rule_family_counts(diags)
    return json.dumps(payload, indent=2)
