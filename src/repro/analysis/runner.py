"""Orchestrates the static-analysis passes over a file tree.

``repro check`` calls :func:`run_check`:

* the **contract pass** (:mod:`repro.analysis.contract`) scans every
  Python file — it only speaks up for ``Kernel``/``Plan`` subclasses and
  ``register_kernel`` sites, so scanning broadly is free and catches
  kernels living outside ``kernels/``;
* the **hot-path pass** (:mod:`repro.analysis.hotpath`) is restricted to
  files under a directory named ``kernels`` (the hot path by
  construction; coarse-grained orchestration loops elsewhere are not
  performance hazards);
* the **race pass** (:mod:`repro.analysis.races`) is schedule-shaped, not
  file-shaped — the CLI exposes it through ``--race-grid`` and the
  library wires it into the parallel/distributed entry points directly;
* the **plan pass** (:mod:`repro.analysis.plans`, opt-in via
  ``plans=True`` / ``repro check --plans``) verifies literal
  ``BlockGrid``/``RankBlocking``/``ProcessGrid`` constructions in the
  scanned files — benchmarks, examples, and tests are its natural scope.

Inline ``# repro: noqa[...]`` suppressions are honoured per file before
``--select`` / ``--ignore`` filters apply.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis import contract, hotpath
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    filter_rules,
    suppressions_for_source,
    unused_suppression_diagnostics,
)

#: Directories never scanned (caches, VCS internals, virtualenvs).
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".venv",
    "venv",
}

#: Directory names that are *usually* packaging output — but only when
#: they are not Python packages.  A bare name test here once silently
#: excluded the whole ``repro/dist`` package from every check run,
#: which is how the dist float64-upcast bug escaped the dataflow pass.
_PACKAGING_DIRS = {"build", "dist"}


def _skip_part(part: str) -> bool:
    return part in _SKIP_DIRS or part.endswith(".egg-info")


def _skip_path(f: "Path") -> bool:
    """True when any ancestor directory disqualifies ``f``: caches and
    VCS dirs always; ``build``/``dist`` only when they are packaging
    output rather than a package (no ``__init__.py``)."""
    for parent in f.parents:
        name = parent.name
        if _skip_part(name):
            return True
        if name in _PACKAGING_DIRS and not (parent / "__init__.py").is_file():
            return True
    return False


def default_paths() -> list[Path]:
    """The repo's own package — ``repro check`` with no arguments is the
    self-hosted run CI gates on."""
    import repro

    return [Path(repro.__file__).parent]


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if not _skip_path(f):
                    out.add(f)
    return sorted(out)


def is_hot_path(path: Path) -> bool:
    """Hot-path lint scope: modules under a ``kernels`` directory."""
    return "kernels" in path.parts[:-1]


class ParseCache:
    """One shared AST per source file for every pass in a check run.

    Each pass used to re-parse its input (contract, hotpath, plans,
    dataflow, cost: up to five parses per file per invocation); the
    runner now parses once here and hands the tree to every pass.
    ``parse_count`` is the number of actual ``ast.parse`` calls — the
    cache-sharing test asserts it equals the number of distinct files.
    """

    def __init__(self) -> None:
        self._trees: dict[str, "ast.Module | None"] = {}
        self.parse_count: int = 0

    def tree(self, file: str, source: str) -> "ast.Module | None":
        """The parsed module, or ``None`` for unparseable source (the
        contract pass still reports KC111 from its own parse attempt)."""
        if file not in self._trees:
            self.parse_count += 1
            try:
                self._trees[file] = ast.parse(source, filename=file)
            except SyntaxError:
                self._trees[file] = None
        return self._trees[file]

    def mapping(self) -> "dict[str, ast.Module | None]":
        """Snapshot of every cached (file -> tree) entry."""
        return dict(self._trees)


@dataclass
class CheckResult:
    """Outcome of one ``repro check`` run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    #: ``ast.parse`` calls actually made via the shared cache.
    parse_count: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return len(self.diagnostics) - self.errors

    @property
    def exit_code(self) -> int:
        """Non-zero when any diagnostic survives filtering — warnings
        included, so CI fails on new hot-path hazards too."""
        return 1 if self.diagnostics else 0


def run_check(
    paths: "Sequence[Path | str] | None" = None,
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
    plans: bool = False,
    dataflow: bool = False,
    cost: bool = False,
    calibrate: bool = False,
) -> CheckResult:
    """Run the contract and hot-path passes over ``paths``.

    ``select`` / ``ignore`` are resolved rule-id sets
    (:func:`repro.analysis.diagnostics.resolve_rules`).  ``plans=True``
    additionally runs the plan-verifier AST pass
    (:func:`repro.analysis.plans.scan_source`) over every file;
    ``dataflow=True`` runs the interprocedural dtype/effect pass
    (:func:`repro.analysis.dataflow.scan_files`) across all of them with
    one shared summary table; ``cost=True`` certifies every shipped
    kernel against the traffic model (:mod:`repro.analysis.cost`,
    CT7xx), and ``calibrate=True`` additionally runs the kernels on tiny
    seeded tensors cross-checking measured obs counters against the
    symbolic certificates (implies ``cost``).

    Every pass shares one :class:`ParseCache`, so each file is parsed at
    most once per invocation regardless of how many passes are enabled.

    Unused ``# repro: noqa`` comments are reported as DG001, judged only
    against rule families whose pass actually ran on that file this
    invocation.
    """
    from repro.analysis import plans as plans_mod

    cost = cost or calibrate
    files = iter_python_files(
        [Path(p) for p in paths] if paths else default_paths()
    )
    cache = ParseCache()
    diags: list[Diagnostic] = []
    registrations: list[contract.RegisteredKernel] = []
    sources: dict[str, str] = {}
    #: Per-file diagnostics *before* suppression (DG001's evidence).
    raw_by_file: dict[str, list[Diagnostic]] = {}
    hot_files: set[str] = set()

    for f in files:
        rel = str(f)
        try:
            source = f.read_text(encoding="utf-8")
        except OSError:
            continue
        sources[rel] = source
        tree = cache.tree(rel, source)
        scan = contract.scan_source(source, rel, tree)
        file_diags = list(scan.diagnostics)
        registrations.extend(scan.registrations)
        if is_hot_path(f):
            hot_files.add(rel)
            file_diags.extend(hotpath.scan_source(source, rel, tree))
        if plans:
            file_diags.extend(plans_mod.scan_source(source, rel, tree))
        raw_by_file[rel] = file_diags

    if dataflow:
        from repro.analysis import dataflow as dataflow_mod

        df_by_file = dataflow_mod.scan_files(sources, cache.mapping())
        for rel, df_diags in df_by_file.items():
            raw_by_file.setdefault(rel, []).extend(df_diags)

    cost_files: set[str] = set()
    if cost:
        from repro.analysis import cost as cost_mod

        scan_result = cost_mod.certify_all(trees=cache.mapping())
        if calibrate:
            from repro.analysis import calibrate as calibrate_mod

            cal = calibrate_mod.calibrate_all(scan_result.certificates)
            for rel, cal_diags in cal.items():
                scan_result.diagnostics_by_file.setdefault(rel, []).extend(
                    cal_diags
                )
        for rel, ct_diags in scan_result.diagnostics_by_file.items():
            cost_files.add(rel)
            raw_by_file.setdefault(rel, []).extend(ct_diags)
            # kernel modules may sit outside the scanned paths (e.g.
            # `repro check tests --cost`); load their source so noqa
            # suppression and DG001 accounting still apply.
            if rel not in sources and rel in scan_result.sources:
                sources[rel] = scan_result.sources[rel]

    # Duplicate-name findings join their file's raw list so both their
    # suppressions and DG001 usage accounting see them.
    for d in contract.duplicate_name_diagnostics(registrations):
        raw_by_file.setdefault(d.file, []).append(d)

    for rel, file_diags in raw_by_file.items():
        source = sources.get(rel)
        if source is None:  # pragma: no cover - defensive
            diags.extend(file_diags)
            continue
        suppressions = suppressions_for_source(source)
        diags.extend(apply_suppressions(file_diags, suppressions))
        active = {"KC", "DG"}
        if rel in hot_files:
            active.add("HP")
        if plans:
            active.add("PL")
        if dataflow:
            active.add("DF")
        if rel in cost_files:
            active.add("CT")
        diags.extend(
            unused_suppression_diagnostics(
                file_diags, suppressions, rel, active
            )
        )

    diags = filter_rules(diags, select=select, ignore=ignore)
    diags.sort(key=lambda d: (d.file, d.line, d.col, d.rule))
    return CheckResult(
        diagnostics=diags,
        files_checked=len(files),
        parse_count=cache.parse_count,
    )
