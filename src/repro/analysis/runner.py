"""Orchestrates the static-analysis passes over a file tree.

``repro check`` calls :func:`run_check`:

* the **contract pass** (:mod:`repro.analysis.contract`) scans every
  Python file — it only speaks up for ``Kernel``/``Plan`` subclasses and
  ``register_kernel`` sites, so scanning broadly is free and catches
  kernels living outside ``kernels/``;
* the **hot-path pass** (:mod:`repro.analysis.hotpath`) is restricted to
  files under a directory named ``kernels`` (the hot path by
  construction; coarse-grained orchestration loops elsewhere are not
  performance hazards);
* the **race pass** (:mod:`repro.analysis.races`) is schedule-shaped, not
  file-shaped — the CLI exposes it through ``--race-grid`` and the
  library wires it into the parallel/distributed entry points directly;
* the **plan pass** (:mod:`repro.analysis.plans`, opt-in via
  ``plans=True`` / ``repro check --plans``) verifies literal
  ``BlockGrid``/``RankBlocking``/``ProcessGrid`` constructions in the
  scanned files — benchmarks, examples, and tests are its natural scope.

Inline ``# repro: noqa[...]`` suppressions are honoured per file before
``--select`` / ``--ignore`` filters apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis import contract, hotpath
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    filter_rules,
    suppressions_for_source,
)

#: Directories never scanned (caches, VCS internals).
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def default_paths() -> list[Path]:
    """The repo's own package — ``repro check`` with no arguments is the
    self-hosted run CI gates on."""
    import repro

    return [Path(repro.__file__).parent]


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out.add(f)
    return sorted(out)


def is_hot_path(path: Path) -> bool:
    """Hot-path lint scope: modules under a ``kernels`` directory."""
    return "kernels" in path.parts[:-1]


@dataclass
class CheckResult:
    """Outcome of one ``repro check`` run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return len(self.diagnostics) - self.errors

    @property
    def exit_code(self) -> int:
        """Non-zero when any diagnostic survives filtering — warnings
        included, so CI fails on new hot-path hazards too."""
        return 1 if self.diagnostics else 0


def run_check(
    paths: "Sequence[Path | str] | None" = None,
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
    plans: bool = False,
) -> CheckResult:
    """Run the contract and hot-path passes over ``paths``.

    ``select`` / ``ignore`` are resolved rule-id sets
    (:func:`repro.analysis.diagnostics.resolve_rules`).  ``plans=True``
    additionally runs the plan-verifier AST pass
    (:func:`repro.analysis.plans.scan_source`) over every file.
    """
    from repro.analysis import plans as plans_mod
    files = iter_python_files(
        [Path(p) for p in paths] if paths else default_paths()
    )
    diags: list[Diagnostic] = []
    registrations: list[contract.RegisteredKernel] = []
    sources: dict[str, str] = {}

    for f in files:
        rel = str(f)
        try:
            source = f.read_text(encoding="utf-8")
        except OSError:
            continue
        sources[rel] = source
        scan = contract.scan_source(source, rel)
        file_diags = list(scan.diagnostics)
        registrations.extend(scan.registrations)
        if is_hot_path(f):
            file_diags.extend(hotpath.scan_source(source, rel))
        if plans:
            file_diags.extend(plans_mod.scan_source(source, rel))
        diags.extend(
            apply_suppressions(file_diags, suppressions_for_source(source))
        )

    dup = contract.duplicate_name_diagnostics(registrations)
    # Duplicate-name findings honour suppressions on the registration line.
    for d in dup:
        source = sources.get(d.file)
        if source is not None:
            if not apply_suppressions([d], suppressions_for_source(source)):
                continue
        diags.append(d)

    diags = filter_rules(diags, select=select, ignore=ignore)
    diags.sort(key=lambda d: (d.file, d.line, d.col, d.rule))
    return CheckResult(diagnostics=diags, files_checked=len(files))
