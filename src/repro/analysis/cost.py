"""Symbolic loop-nest cost certifier (rules CT701-CT709).

Proves, statically, that each shipped kernel implements the analytic
memory-traffic model of :mod:`repro.machine.traffic` — the paper's Eq. 1
access accounting.  The certifier abstractly interprets a kernel's
``execute`` body (plus the helpers it calls) over the chunked-vectorized
NumPy idioms the kernels actually use, and derives a
:class:`CostCertificate`: one exact polynomial per array access class
over the iteration-space symbols of :mod:`repro.analysis.symbolic`
(``nnz``, ``n_fibers``, ``distinct_out``, ``R``, ``n_strips``,
``itemsize``, ``I_out``).

Three contracts are certified per kernel:

* **traffic** — the derived tensor-stream bytes and factor gather counts
  must equal what ``estimate_traffic`` / ``predicted_footprint`` charge
  that kernel family (CT701 mismatch, CT702 model term with no matching
  kernel access, CT703 kernel access the model does not describe);
* **writes** — the derived output-write footprint must be coverable by
  the plan's declared ``write_set()`` (CT704 footprint exceeds the
  declaration, CT705 write target not statically resolvable);
* **counters** — the ``kernel.gathers`` / ``kernel.factor_bytes``
  emission formulas in ``Kernel._traced_execute`` must agree with the
  certificate (CT706 / CT707), so traces stay trustworthy as kernels
  evolve.

CT708 (calibration drift) and CT709 (certificate unverifiable) belong to
the runtime cross-check in :mod:`repro.analysis.calibrate`; CT709 is
also raised here when a kernel uses a construct the abstract interpreter
cannot bound (an unrecognized loop shape, an unresolvable branch over
the access structure).

Every access stream is mapped to the model's canonical taxonomy:
``val`` / ``j_index`` / ``k_index`` / ``k_pointer`` tensor streams, row
gathers from ``B`` and ``C``, and output writes.  Two access classes are
*excluded* from the byte comparison by design and reported only in the
certificate: materialized output-row maps (``fiber_rows``, CSF root
``fids``/``fptr`` — the model charges output-row bookkeeping to the
``A`` term, not the stream term) and strip re-stacking copies
(``np.ascontiguousarray`` of factor column strips — a working-set
*layout* cost the model's per-strip row-width accounting already
subsumes; see docs/static-analysis.md for the derivation walkthrough).

The COO kernel has no fiber compression: its sorted row stream ``i``
plays the ``k_pointer`` role (segment delimiter) and its ``k`` stream
the ``k_index`` role, with the family substitution ``n_fibers -> nnz``
matching ``BlockStats.n_fibers == nnz`` for COO plans.
"""

from __future__ import annotations

import ast
import os
import weakref
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.symbolic import (
    DISTINCT_OUT,
    I_OUT,
    ITEMSIZE,
    N_FIBERS,
    N_STRIPS,
    NNZ,
    RANK,
    ZERO,
    Poly,
)

# ---------------------------------------------------------------------
# Canonical stream taxonomy and the model mirror
# ---------------------------------------------------------------------

#: Canonical tensor-stream classes and their per-element byte widths
#: (``val`` scales with the factor itemsize; indices are 8-byte ints).
STREAM_CLASSES: dict[str, Poly] = {
    "val": ITEMSIZE,
    "j_index": Poly.const(8),
    "k_index": Poly.const(8),
    "k_pointer": Poly.const(8),
}

#: Access classes excluded from the model comparison (reported in the
#: certificate, never compared): materialized output-row maps.
EXCLUDED_STREAMS = frozenset({"row_map"})


def model_stream_bytes() -> dict[str, Poly]:
    """The model's per-class stream bytes — a mirror of
    ``estimate_traffic``'s ``stream_bytes`` term, split by class:
    ``n_strips * ((itemsize + 8) * nnz + 16 * n_fibers)``."""
    return {
        "val": N_STRIPS * NNZ * ITEMSIZE,
        "j_index": 8 * N_STRIPS * NNZ,
        "k_index": 8 * N_STRIPS * N_FIBERS,
        "k_pointer": 8 * N_STRIPS * N_FIBERS,
    }


def model_gather_rows() -> dict[str, Poly]:
    """``predicted_footprint``'s access counts: B once per nonzero per
    strip, C once per fiber per strip."""
    return {"B": N_STRIPS * NNZ, "C": N_STRIPS * N_FIBERS}


# ---------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------


@dataclass
class WriteRecord:
    """One derived output write site."""

    #: ``"distinct_out"`` (scatter via output-row indices) or
    #: ``"all_rows"`` (strip slab store touching every row).
    kind: str
    #: Elements written per full execution.
    elements: Poly
    line: int
    #: True for ``+=`` accumulation (read-modify-write).
    accumulate: bool = False


@dataclass
class CostCertificate:
    """Per-kernel symbolic access accounting, before model comparison."""

    kernel: str
    file: str
    exec_line: int
    #: Canonical stream class -> bytes moved (full execution).
    stream_bytes: dict[str, Poly] = field(default_factory=dict)
    stream_lines: dict[str, int] = field(default_factory=dict)
    #: Factor role ("B"/"C") -> gathered rows / elements.
    gather_rows: dict[str, Poly] = field(default_factory=dict)
    gather_elements: dict[str, Poly] = field(default_factory=dict)
    gather_lines: dict[str, int] = field(default_factory=dict)
    writes: list[WriteRecord] = field(default_factory=list)
    #: Excluded-class bytes (row maps), reported but never compared.
    excluded_bytes: dict[str, Poly] = field(default_factory=dict)
    #: Strip re-stacking copy sites (informational).
    pack_sites: list[int] = field(default_factory=list)

    def gathers_counter(self) -> Poly:
        """What ``kernel.gathers`` should count: gathered rows folded to
        one pass over the rank (strips re-gather thinner rows, so
        per-element totals are strip-invariant)."""
        total = ZERO
        for role in ("B", "C"):
            total = total + self.gather_elements.get(role, ZERO)
        return total / RANK

    def factor_bytes_counter(self) -> Poly:
        """What ``kernel.factor_bytes`` should count: gathered B/C
        elements plus the model's ``distinct_out`` output term, at the
        factor itemsize.  The A term follows the traffic model's
        convention (distinct rows fetched+written once per phase) rather
        than each kernel's literal store pattern — RankB's full-range
        slab stores are a *layout* choice the model already prices into
        the stream term."""
        total = DISTINCT_OUT * RANK
        for role in ("B", "C"):
            total = total + self.gather_elements.get(role, ZERO)
        return total * ITEMSIZE


# ---------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------


class AV:
    """Base abstract value."""

    __slots__ = ()


class Unknown(AV):
    __slots__ = ()


UNKNOWN = Unknown()


@dataclass
class Const(AV):
    """A statically known Python scalar (int / None / bool)."""

    value: object


@dataclass
class AxisLen(AV):
    """A scalar equal to a symbolic axis length."""

    axis: Poly


@dataclass
class StreamArray(AV):
    """A full 1-D plan array: a tensor stream or a row map."""

    axis: Poly  #: symbolic length
    stream: str  #: canonical class, or "row_map"
    space: str  #: index space of its values: inner/fiber/out/ptr/val


@dataclass
class Chunk(AV):
    """A counted slice (or derived transform) of a StreamArray."""

    axis: Poly
    space: str
    #: True when derived by subsetting (``i[starts]``) — still in the
    #: same index space but no longer a full tile of the axis.
    subset: bool = False


@dataclass
class DerivedIndex(AV):
    """Positional indices computed from chunk contents (flatnonzero,
    searchsorted, argsort results) — valid for subsetting chunks, never
    for gathering factor rows."""

    __slots__ = ()


@dataclass
class Matrix(AV):
    """A 2-D factor-like array."""

    role: str  #: "B" / "C" / "A_factor" / "anymode" / "scratch"
    width: Poly
    rows: "Poly | None" = None
    is_output: bool = False


@dataclass
class MatChunk(AV):
    """A 2-D value chunk (products, reduceat results)."""

    width: Poly


@dataclass
class ModeRef(AV):
    """A mode index with a known role."""

    role: str  #: "out" / "inner" / "fiber"


@dataclass
class ShapeHandle(AV):
    order: int


@dataclass
class FactorList(AV):
    """The checked factor list; width R (or a strip width)."""

    width: Poly


@dataclass
class ModeOrder(AV):
    """``csf.mode_order`` for a 3-mode tree: [out, fiber, inner]."""

    order: int


@dataclass
class LevelsHandle(AV):
    order: int


@dataclass
class LevelHandle(AV):
    kind: str  #: "root" or "fiber"


@dataclass
class CSFHandle(AV):
    order: int = 3


@dataclass
class SplattHandle(AV):
    __slots__ = ()


@dataclass
class StripConfig(AV):
    """``plan.rank_blocking`` — ``.strips(rank)`` yields StripsVal."""

    __slots__ = ()


@dataclass
class StripsVal(AV):
    """The strip list; iterating multiplies by ``n_strips`` and binds
    (lo, hi) strip bounds of width ``R / n_strips``."""

    __slots__ = ()


@dataclass
class StripBound(AV):
    side: str  #: "lo" / "hi"


@dataclass
class BoundVal(AV):
    """A block-boundary scalar from ``block.bounds[...]``."""

    __slots__ = ()


@dataclass
class BoundsHandle(AV):
    __slots__ = ()


@dataclass
class BlockHandle(AV):
    csf_order: int = 3


@dataclass
class BlockList(AV):
    """``plan.blocked.blocks`` — iterate once with aggregate symbols."""

    __slots__ = ()


@dataclass
class BlockPairList(AV):
    """``plan.blocks`` of the blocked CSF kernel: (block, csf) pairs."""

    csf_order: int = 3


@dataclass
class PerBlockList(AV):
    """A per-block list zipped against the block list."""

    item: AV = UNKNOWN


@dataclass
class ZipVal(AV):
    items: "list[AV]" = field(default_factory=list)


@dataclass
class ListVal(AV):
    """A list literal / builder; ``item`` is the representative value."""

    item: AV = UNKNOWN


@dataclass
class TupleVal(AV):
    items: "list[AV]" = field(default_factory=list)


@dataclass
class RangeVal(AV):
    args: "list[AV]" = field(default_factory=list)


@dataclass
class HandleVal(AV):
    """A structured object with a known attribute table."""

    attrs: "dict[str, AV]" = field(default_factory=dict)
    name: str = ""


@dataclass
class HelperFn(AV):
    """A call target inlined by the interpreter."""

    module: str
    func: str


@dataclass
class BuiltinFn(AV):
    name: str


@dataclass
class NumpyNS(AV):
    """The ``np`` namespace (and its ``np.add`` sub-namespace)."""

    path: str = "np"


class Unverifiable(Exception):
    """A construct the interpreter cannot bound (rule CT709)."""

    def __init__(self, message: str, line: int = 1) -> None:
        super().__init__(message)
        self.message = message
        self.line = line


# ---------------------------------------------------------------------
# Kernel specs: how each shipped kernel binds its plan and compares to
# the model
# ---------------------------------------------------------------------


def _splatt_handle() -> HandleVal:
    return HandleVal(
        name="splatt",
        attrs={
            "vals": StreamArray(NNZ, "val", "val"),
            "jidx": StreamArray(NNZ, "j_index", "inner"),
            "fiber_kidx": StreamArray(N_FIBERS, "k_index", "fiber"),
            "fiber_ptr": StreamArray(N_FIBERS, "k_pointer", "ptr"),
            "n_fibers": AxisLen(N_FIBERS),
            "nnz": AxisLen(NNZ),
            "n_rows": AxisLen(I_OUT),
        },
    )


def _row_map(axis: Poly) -> StreamArray:
    return StreamArray(axis, "row_map", "out")


def _common_plan_attrs() -> dict[str, AV]:
    return {
        "shape": ShapeHandle(3),
        "mode": ModeRef("out"),
        "inner_mode": ModeRef("inner"),
        "fiber_mode": ModeRef("fiber"),
    }


def _coo_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    attrs.update(
        {
            # The sorted output-row stream doubles as the segment
            # delimiter (the k_pointer role); k carries the k_index role.
            "i": StreamArray(NNZ, "k_pointer", "out"),
            "j": StreamArray(NNZ, "j_index", "inner"),
            "k": StreamArray(NNZ, "k_index", "fiber"),
            "vals": StreamArray(NNZ, "val", "val"),
        }
    )
    return HandleVal(attrs=attrs, name="COOPlan")


def _splatt_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    attrs.update(
        {"splatt": _splatt_handle(), "fiber_rows": _row_map(N_FIBERS)}
    )
    return HandleVal(attrs=attrs, name="SplattPlan")


def _rankb_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    attrs.update(
        {
            "base": HandleVal(
                name="SplattPlan",
                attrs={
                    "splatt": _splatt_handle(),
                    "fiber_rows": _row_map(N_FIBERS),
                },
            ),
            "rank_blocking": StripConfig(),
        }
    )
    return HandleVal(attrs=attrs, name="RankBPlan")


def _mb_inner() -> HandleVal:
    return HandleVal(
        name="BlockedTensor", attrs={"blocks": BlockList()}
    )


def _mb_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    attrs.update(
        {
            "blocked": _mb_inner(),
            "fiber_rows": PerBlockList(item=_row_map(N_FIBERS)),
        }
    )
    return HandleVal(attrs=attrs, name="MBPlan")


def _combined_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    attrs.update(
        {"mb_plan": _mb_plan(), "rank_blocking": StripConfig()}
    )
    return HandleVal(attrs=attrs, name="CombinedPlan")


def _csf_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    attrs.update({"csf": CSFHandle(3)})
    return HandleVal(attrs=attrs, name="CSFPlan")


def _csf_any_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    # Certified at the root placement (target_level == 0), where the
    # kernel reduces to the root-mode CSF kernel; other placements share
    # the same streams but scatter through level fids the model's
    # BlockStats already summarize.
    attrs.update({"csf": CSFHandle(3), "target_level": Const(0)})
    return HandleVal(attrs=attrs, name="CSFAnyPlan")


def _csf_blocked_plan() -> HandleVal:
    attrs = _common_plan_attrs()
    attrs.update(
        {"blocks": BlockPairList(3), "rank_blocking": StripConfig()}
    )
    return HandleVal(attrs=attrs, name="BlockedCSFPlan")


@dataclass(frozen=True)
class KernelCostSpec:
    """Everything the certifier knows about one shipped kernel."""

    name: str
    module: str
    kernel_class: str
    plan_class: str
    plan_env: Callable[[], HandleVal]
    #: Symbol substitutions applied to *both* sides before comparison:
    #: the family's structural identities (COO: every nonzero is its own
    #: fiber; stripless kernels: n_strips == 1).
    subs: "dict[str, Poly | int]"
    #: Whether the plan's declared write_set() is the full output range.
    full_write_set: bool


KERNEL_COST_SPECS: dict[str, KernelCostSpec] = {
    spec.name: spec
    for spec in [
        KernelCostSpec(
            "coo",
            "repro.kernels.coo_mttkrp",
            "COOKernel",
            "COOPlan",
            _coo_plan,
            {"n_fibers": NNZ, "n_strips": 1},
            full_write_set=False,
        ),
        KernelCostSpec(
            "splatt",
            "repro.kernels.splatt_mttkrp",
            "SplattKernel",
            "SplattPlan",
            _splatt_plan,
            {"n_strips": 1},
            full_write_set=False,
        ),
        KernelCostSpec(
            "mb",
            "repro.kernels.blocked",
            "MultiDimBlockedKernel",
            "MBPlan",
            _mb_plan,
            {"n_strips": 1},
            full_write_set=False,
        ),
        KernelCostSpec(
            "rankb",
            "repro.kernels.rankblocked",
            "RankBlockedKernel",
            "RankBPlan",
            _rankb_plan,
            {},
            full_write_set=True,
        ),
        KernelCostSpec(
            "mb+rankb",
            "repro.kernels.combined",
            "CombinedBlockedKernel",
            "CombinedPlan",
            _combined_plan,
            {},
            full_write_set=True,
        ),
        KernelCostSpec(
            "csf",
            "repro.kernels.csf_mttkrp",
            "CSFKernel",
            "CSFPlan",
            _csf_plan,
            {"n_strips": 1},
            full_write_set=False,
        ),
        KernelCostSpec(
            "csf-any",
            "repro.kernels.csf_any",
            "CSFAnyKernel",
            "CSFAnyPlan",
            _csf_any_plan,
            {"n_strips": 1},
            full_write_set=True,
        ),
        KernelCostSpec(
            "csf-blocked",
            "repro.kernels.csf_blocked",
            "BlockedCSFKernel",
            "BlockedCSFPlan",
            _csf_blocked_plan,
            {},
            full_write_set=False,
        ),
    ]
}

#: Modules whose function bodies the interpreter may inline.
_HELPER_FUNCS = {
    "execute_splatt_into": "repro.kernels.splatt_mttkrp",
    "execute_csf_into": "repro.kernels.csf_mttkrp",
    "_scatter_add_rows": "repro.kernels.csf_any",
}

_BASE_MODULE = "repro.kernels.base"


# ---------------------------------------------------------------------
# Module source / AST registry
# ---------------------------------------------------------------------


class ModuleRegistry:
    """Loads and caches kernel-module sources and ASTs.

    ``source_overrides`` maps module name -> source text (the mutant
    tests perturb one module); ``trees`` lets the runner share its
    parse cache (file path -> parsed module)."""

    def __init__(
        self,
        source_overrides: "Mapping[str, str] | None" = None,
        trees: "Mapping[str, ast.Module | None] | None" = None,
    ) -> None:
        self._overrides = dict(source_overrides or {})
        self._shared_trees = dict(trees or {})
        self._sources: dict[str, str] = {}
        self._trees: dict[str, ast.Module] = {}
        self._files: dict[str, str] = {}

    def file_of(self, module: str) -> str:
        if module not in self._files:
            import importlib

            mod = importlib.import_module(module)
            self._files[module] = str(mod.__file__)
        return self._files[module]

    def source_of(self, module: str) -> str:
        if module not in self._sources:
            if module in self._overrides:
                self._sources[module] = self._overrides[module]
            else:
                with open(self.file_of(module), encoding="utf-8") as fh:
                    self._sources[module] = fh.read()
        return self._sources[module]

    def tree_of(self, module: str) -> ast.Module:
        if module not in self._trees:
            file = self.file_of(module)
            shared = (
                self._shared_trees.get(file)
                if module not in self._overrides
                else None
            )
            if shared is not None:
                self._trees[module] = shared
            else:
                self._trees[module] = ast.parse(
                    self.source_of(module), filename=file
                )
        return self._trees[module]

    def function(self, module: str, name: str) -> ast.FunctionDef:
        for node in ast.walk(self.tree_of(module)):
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        raise Unverifiable(f"function {name} not found in {module}")

    def method(self, module: str, cls: str, name: str) -> ast.FunctionDef:
        for node in self.tree_of(module).body:
            if isinstance(node, ast.ClassDef) and node.name == cls:
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name == name
                    ):
                        return item
        raise Unverifiable(f"{cls}.{name} not found in {module}")

    def class_def(self, module: str, cls: str) -> "ast.ClassDef | None":
        for node in self.tree_of(module).body:
            if isinstance(node, ast.ClassDef) and node.name == cls:
                return node
        return None


# ---------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------


def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


class _Walker:
    """Abstractly interprets one function body, recording accesses."""

    MAX_DEPTH = 4
    MAX_UNROLL = 8

    def __init__(
        self, registry: ModuleRegistry, cert: CostCertificate
    ) -> None:
        self.registry = registry
        self.cert = cert
        self.problems: list[Diagnostic] = []
        self.mult: Poly = Poly.const(1)
        self.depth = 0
        #: Nesting depth of chunk-tiling loops (while f0 < n, or
        #: range(0, n, chunk)).  Slices inside tile the axis exactly
        #: once; a *full* stream-array fancy read inside re-reads the
        #: whole stream per chunk — unbounded, and flagged (CT703).
        self.chunk_depth = 0

    # -- recording -----------------------------------------------------
    def _record_stream(self, arr: StreamArray, line: int) -> None:
        bytes_per = STREAM_CLASSES.get(arr.stream)
        if bytes_per is None:
            bucket = self.cert.excluded_bytes
            bucket[arr.stream] = (
                bucket.get(arr.stream, ZERO) + self.mult * arr.axis * 8
            )
            return
        self.cert.stream_bytes[arr.stream] = (
            self.cert.stream_bytes.get(arr.stream, ZERO)
            + self.mult * arr.axis * bytes_per
        )
        self.cert.stream_lines.setdefault(arr.stream, line)

    def _record_gather(
        self, matrix: Matrix, index: Chunk, line: int
    ) -> None:
        role = matrix.role
        expected_space = {"B": "inner", "C": "fiber"}.get(role)
        if expected_space is None:
            self.problems.append(
                _ct703(
                    self.cert,
                    line,
                    f"gather from factor role {role!r} "
                    "(the model charges gathers to B and C only)",
                )
            )
            return
        if index.space != expected_space:
            self.problems.append(
                _ct703(
                    self.cert,
                    line,
                    f"{role} gathered through a {index.space!r}-space "
                    f"index stream; the model gathers {role} through "
                    f"{expected_space!r} indices",
                )
            )
            return
        if index.subset:
            self.problems.append(
                _ct703(
                    self.cert,
                    line,
                    f"{role} gathered through a subsetted index chunk; "
                    "the per-access count is data-dependent",
                )
            )
            return
        rows = self.mult * index.axis
        self.cert.gather_rows[role] = (
            self.cert.gather_rows.get(role, ZERO) + rows
        )
        self.cert.gather_elements[role] = (
            self.cert.gather_elements.get(role, ZERO) + rows * matrix.width
        )
        self.cert.gather_lines.setdefault(role, line)

    def _record_write(
        self,
        matrix: Matrix,
        kind: str,
        elements: Poly,
        line: int,
        accumulate: bool,
    ) -> None:
        if matrix.role == "scratch":
            return  # kernel-internal; not part of the output footprint
        self.cert.writes.append(
            WriteRecord(kind, elements, line, accumulate)
        )

    # -- expression evaluation -----------------------------------------
    def eval(self, node: ast.AST) -> AV:
        if isinstance(node, ast.Name):
            return self._eval_name(node)
        if isinstance(node, ast.Constant):
            return Const(node.value)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, store=False)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand)
            if isinstance(inner, Const) and isinstance(
                inner.value, (int, float)
            ):
                if isinstance(node.op, ast.USub):
                    return Const(-inner.value)
            return inner
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.IfExp):
            return self._eval_ifexp(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            items = [self.eval(el) for el in node.elts]
            if isinstance(node, ast.Tuple):
                return TupleVal(items)
            rep: AV = UNKNOWN
            for it in items:
                if not isinstance(it, (Unknown, Const)):
                    rep = it
                    break
            return ListVal(rep)
        if isinstance(node, ast.Slice):
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.eval(v)
            return UNKNOWN
        return UNKNOWN

    def _eval_name(self, node: ast.Name) -> AV:
        if node.id in self.env:
            return self.env[node.id]
        if node.id == "np":
            return NumpyNS("np")
        if node.id in _HELPER_FUNCS:
            return HelperFn(_HELPER_FUNCS[node.id], node.id)
        if node.id in (
            "check_factors",
            "alloc_output",
            "factor_dtype",
            "max",
            "min",
            "int",
            "float",
            "len",
            "range",
            "zip",
        ):
            return BuiltinFn(node.id)
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute) -> AV:
        base = self.eval(node.value)
        attr = node.attr
        if isinstance(base, HandleVal):
            if attr in base.attrs:
                return base.attrs[attr]
            return UNKNOWN
        if isinstance(base, NumpyNS):
            return NumpyNS(f"{base.path}.{attr}")
        if isinstance(base, SplattHandle):
            return _splatt_handle().attrs.get(attr, UNKNOWN)
        if isinstance(base, CSFHandle):
            return self._csf_attr(base, attr)
        if isinstance(base, LevelHandle):
            return self._level_attr(base, attr)
        if isinstance(base, BlockHandle):
            if attr == "splatt":
                return _splatt_handle()
            if attr == "bounds":
                return BoundsHandle()
            return UNKNOWN
        if isinstance(base, Matrix):
            if attr == "shape":
                shape_attrs: dict[str, AV] = {}
                if base.rows is not None:
                    shape_attrs["__rows__"] = AxisLen(base.rows)
                shape_attrs["__width__"] = AxisLen(base.width)
                return HandleVal(name="shape", attrs=shape_attrs)
            if attr == "dtype":
                return UNKNOWN
            if attr == "astype":
                return UNKNOWN  # Matrix.astype never appears in kernels
        if isinstance(base, StreamArray):
            if attr == "astype":
                return _BoundMethod(base, "astype")
            if attr == "shape":
                return TupleVal([AxisLen(base.axis)])
        if isinstance(base, Chunk) and attr == "astype":
            return _BoundMethod(base, "astype")
        if isinstance(base, ListVal) and attr == "append":
            return _BoundMethod(base, "append")
        if isinstance(base, StripConfig) and attr == "strips":
            return _BoundMethod(base, "strips")
        return UNKNOWN

    def _csf_attr(self, csf: CSFHandle, attr: str) -> AV:
        if attr == "vals":
            return StreamArray(NNZ, "val", "val")
        if attr == "leaf_fids":
            return StreamArray(NNZ, "j_index", "inner")
        if attr == "levels":
            return LevelsHandle(csf.order)
        if attr == "mode_order":
            return ModeOrder(csf.order)
        if attr == "nnz":
            return AxisLen(NNZ)
        if attr == "order":
            return Const(csf.order)
        return UNKNOWN

    def _level_attr(self, lvl: LevelHandle, attr: str) -> AV:
        if lvl.kind == "fiber":
            if attr == "fids":
                return StreamArray(N_FIBERS, "k_index", "fiber")
            if attr == "fptr":
                return StreamArray(N_FIBERS, "k_pointer", "ptr")
            if attr == "n_nodes":
                return AxisLen(N_FIBERS)
        else:  # root
            if attr == "fids":
                return _row_map(DISTINCT_OUT)
            if attr == "fptr":
                return StreamArray(DISTINCT_OUT, "row_map", "ptr")
            if attr == "n_nodes":
                return AxisLen(DISTINCT_OUT)
        return UNKNOWN

    def _index_value(self, node: ast.AST) -> AV:
        """Evaluate a subscript index, counting full fancy reads of
        stream arrays (one pass over the array's axis)."""
        value = self.eval(node)
        if isinstance(value, StreamArray):
            line = getattr(node, "lineno", 1)
            if self.chunk_depth > 0:
                # e.g. B[splatt.jidx] instead of B[splatt.jidx[lo:hi]]
                # inside the chunk loop: the full stream is re-gathered
                # once per chunk, a data-dependent multiplicity the
                # model cannot describe
                self.problems.append(
                    _ct703(
                        self.cert,
                        line,
                        f"full {value.stream!r} stream used as a gather "
                        "index inside a chunk loop (re-read once per "
                        "chunk, unbounded statically)",
                    )
                )
            self._record_stream(value, line)
            return Chunk(value.axis, value.space)
        return value

    def _eval_subscript(self, node: ast.Subscript, store: bool) -> AV:
        base = self.eval(node.value)
        sl = node.slice
        # -- plain slices over stream arrays: one pass over the axis --
        if isinstance(base, StreamArray):
            if isinstance(sl, ast.Slice):
                self._record_stream(base, node.lineno)
                return Chunk(base.axis, base.space)
            idx = self._index_value(sl)
            if isinstance(idx, (Const,)):
                return UNKNOWN  # scalar element read: free
            if isinstance(idx, (DerivedIndex, Chunk)):
                return Chunk(base.axis, base.space, subset=True)
            return UNKNOWN
        if isinstance(base, Chunk):
            # subscripting a counted chunk never re-reads memory
            if isinstance(sl, ast.Tuple):
                for el in sl.elts:
                    self.eval(el)
                return Chunk(base.axis, base.space, subset=base.subset)
            idx = self._index_value(sl)
            if isinstance(idx, (DerivedIndex, Chunk)):
                return Chunk(base.axis, base.space, subset=True)
            if isinstance(idx, Const):
                return UNKNOWN
            return Chunk(base.axis, base.space, subset=base.subset)
        if isinstance(base, MatChunk):
            self.eval(sl)
            return base
        if isinstance(base, Matrix):
            return self._subscript_matrix(base, node, store)
        if isinstance(base, (FactorList,)):
            return self._subscript_factors(base, sl, node)
        if isinstance(base, ModeOrder):
            return self._subscript_mode_order(base, sl)
        if isinstance(base, LevelsHandle):
            return self._subscript_levels(base, sl)
        if isinstance(base, BoundsHandle):
            self.eval(sl)
            return TupleVal([BoundVal(), BoundVal()])
        if isinstance(base, ShapeHandle):
            mode = self.eval(sl)
            if isinstance(mode, ModeRef) and mode.role == "out":
                return AxisLen(I_OUT)
            return UNKNOWN
        if isinstance(base, TupleVal):
            idx = self.eval(sl)
            if isinstance(idx, Const) and isinstance(idx.value, int):
                try:
                    return base.items[idx.value]
                except IndexError:
                    return UNKNOWN
            return UNKNOWN
        if isinstance(base, ListVal):
            idx = self.eval(sl)
            item = base.item
            # a per-mode list of packed factor strips (csf-blocked's
            # local_factors): the helper selects through mode_order, which
            # restores the role the pack loop erased
            if (
                isinstance(idx, ModeRef)
                and isinstance(item, Matrix)
                and item.role == "anymode"
            ):
                role = {"inner": "B", "fiber": "C", "out": "A_factor"}[
                    idx.role
                ]
                return Matrix(role, item.width, item.rows, item.is_output)
            return item
        if isinstance(base, HandleVal) and base.name == "shape":
            idx = self.eval(sl)
            rows = base.attrs.get("__rows__")
            width = base.attrs.get("__width__")
            if isinstance(idx, Const):
                if idx.value == 0 and rows is not None:
                    return rows
                if idx.value == 1 and width is not None:
                    return width
            return UNKNOWN
        if isinstance(base, Unknown):
            idx = self.eval(sl)
            if isinstance(idx, (Chunk, StreamArray, DerivedIndex)) or (
                isinstance(sl, ast.Slice)
            ):
                self.problems.append(
                    _ct703(
                        self.cert,
                        node.lineno,
                        "array-shaped read of an unregistered object; "
                        "the certifier cannot map it to a model stream",
                    )
                )
            return UNKNOWN
        self.eval(sl)
        return UNKNOWN

    def _subscript_matrix(
        self, base: Matrix, node: ast.Subscript, store: bool
    ) -> AV:
        sl = node.slice
        if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
            r, c = sl.elts
            # B[:, lo:hi] — column strip (view; counted when packed or
            # when rows are gathered from it)
            width = self._slice_width(c, base.width)
            if isinstance(r, ast.Slice) and r.lower is None and r.upper is None:
                return Matrix(
                    base.role, width, base.rows, base.is_output
                )
            # A[out_lo:out_hi, lo:hi] — row+column view
            if isinstance(r, ast.Slice):
                self.eval(r.lower) if r.lower is not None else None
                self.eval(r.upper) if r.upper is not None else None
                return Matrix(base.role, width, None, base.is_output)
            self.eval(r)
            return UNKNOWN
        if isinstance(sl, ast.Slice):
            # row-sliced view (block bounds): same role and width
            if sl.lower is not None:
                self.eval(sl.lower)
            if sl.upper is not None:
                self.eval(sl.upper)
            return Matrix(base.role, base.width, None, base.is_output)
        # fancy gather
        idx = self._index_value(sl)
        if isinstance(idx, Chunk):
            if base.is_output or base.role == "scratch":
                # reads of the output through row indices only happen as
                # the load half of `A[rows] += ...`; handled at the store
                return _OutputGatherView(base, idx)
            self._record_gather(base, idx, node.lineno)
            return MatChunk(base.width)
        if isinstance(idx, (DerivedIndex, Unknown, StreamArray)):
            self.problems.append(
                _ct703(
                    self.cert,
                    node.lineno,
                    f"factor {base.role!r} gathered through an index the "
                    "certifier cannot classify",
                )
            )
            return MatChunk(base.width)
        return UNKNOWN

    def _slice_width(self, node: ast.AST, full: Poly) -> Poly:
        """Width of a column slice ``lo:hi``."""
        if isinstance(node, ast.Slice):
            if node.lower is None and node.upper is None:
                return full
            lo = self.eval(node.lower) if node.lower is not None else None
            hi = self.eval(node.upper) if node.upper is not None else None
            if isinstance(lo, StripBound) and isinstance(hi, StripBound):
                return RANK / N_STRIPS
            if (
                isinstance(lo, Const)
                and lo.value == 0
                and hi is not None
                and isinstance(hi, AxisLen)
            ):
                return full
        return full

    def _subscript_factors(
        self, base: FactorList, sl: ast.AST, node: ast.Subscript
    ) -> AV:
        idx = self.eval(sl)
        if isinstance(idx, ModeRef):
            role = {"inner": "B", "fiber": "C", "out": "A_factor"}[idx.role]
            return Matrix(role, base.width)
        if isinstance(idx, Const):
            # csf-blocked's per-mode pack loop: role resolved later via
            # mode_order when the helper gathers from the list
            return Matrix("anymode", base.width)
        return UNKNOWN

    def _subscript_mode_order(self, base: ModeOrder, sl: ast.AST) -> AV:
        idx = self.eval(sl)
        if isinstance(idx, Const) and isinstance(idx.value, int):
            i = idx.value % base.order if idx.value >= 0 else idx.value
            if i in (0,):
                return ModeRef("out")
            if i in (-1, base.order - 1):
                return ModeRef("inner")
            return ModeRef("fiber")
        return UNKNOWN

    def _subscript_levels(self, base: LevelsHandle, sl: ast.AST) -> AV:
        idx = self.eval(sl)
        n_levels = base.order - 1
        if isinstance(idx, Const) and isinstance(idx.value, int):
            i = idx.value if idx.value >= 0 else n_levels + idx.value
            if i == 0:
                return LevelHandle("root")
            if i == n_levels - 1:
                return LevelHandle("fiber")
            return LevelHandle("fiber")  # mid levels (order > 3 only)
        return UNKNOWN

    def _eval_binop(self, node: ast.BinOp) -> AV:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(left, Const) and isinstance(right, Const):
            try:
                if isinstance(node.op, ast.Add):
                    return Const(left.value + right.value)
                if isinstance(node.op, ast.Sub):
                    return Const(left.value - right.value)
                if isinstance(node.op, ast.Mult):
                    return Const(left.value * right.value)
                if isinstance(node.op, ast.FloorDiv):
                    return Const(left.value // right.value)
            except TypeError:
                return UNKNOWN
        # strip width: hi - lo over strip bounds
        if (
            isinstance(node.op, ast.Sub)
            and isinstance(left, StripBound)
            and isinstance(right, StripBound)
        ):
            return AxisLen(RANK / N_STRIPS)
        # [None] * order — a list builder of known length
        if isinstance(node.op, ast.Mult) and (
            isinstance(left, ListVal) or isinstance(right, ListVal)
        ):
            lv = left if isinstance(left, ListVal) else right
            return ListVal(lv.item)
        # chunk arithmetic: vals[:, None] * B[jidx] etc.
        for op_first, op_second in ((left, right), (right, left)):
            if isinstance(op_first, (Chunk, MatChunk)):
                if isinstance(op_second, MatChunk):
                    return op_second
                if isinstance(op_first, MatChunk):
                    return op_first
                return op_first
        return UNKNOWN

    def _eval_compare(self, node: ast.Compare) -> AV:
        left = self.eval(node.left)
        rights = [self.eval(c) for c in node.comparators]
        if len(node.ops) == 1 and isinstance(left, Const) and isinstance(
            rights[0], Const
        ):
            op = node.ops[0]
            a, b = left.value, rights[0].value
            try:
                if isinstance(op, ast.Eq):
                    return Const(a == b)
                if isinstance(op, ast.NotEq):
                    return Const(a != b)
                if isinstance(op, ast.Lt):
                    return Const(a < b)
                if isinstance(op, ast.Gt):
                    return Const(a > b)
                if isinstance(op, ast.LtE):
                    return Const(a <= b)
                if isinstance(op, ast.GtE):
                    return Const(a >= b)
            except TypeError:
                return UNKNOWN
        # `plan.rank_blocking is not None` — the certified strip path
        if (
            len(node.ops) == 1
            and isinstance(node.ops[0], (ast.IsNot, ast.Is))
            and isinstance(rights[0], Const)
            and rights[0].value is None
            and isinstance(left, StripConfig)
        ):
            return Const(isinstance(node.ops[0], ast.IsNot))
        return UNKNOWN

    def _eval_ifexp(self, node: ast.IfExp) -> AV:
        test = self.eval(node.test)
        if isinstance(test, Const):
            return self.eval(node.body if test.value else node.orelse)
        body = self.eval(node.body)
        orelse = self.eval(node.orelse)
        for v in (body, orelse):
            if not isinstance(v, (Unknown, Const)):
                return v
        return body

    # -- calls ---------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> AV:
        func = self.eval(node.func)
        if isinstance(func, _BoundMethod):
            return self._call_method(func, node)
        if isinstance(func, NumpyNS):
            return self._call_numpy(func.path, node)
        if isinstance(func, BuiltinFn):
            return self._call_builtin(func.name, node)
        if isinstance(func, HelperFn):
            return self._inline_helper(func, node)
        for arg in node.args:
            self.eval(arg)
        return UNKNOWN

    def _call_method(self, bound: "_BoundMethod", node: ast.Call) -> AV:
        target, meth = bound.target, bound.method
        if meth == "astype":
            for kw in node.keywords:
                self.eval(kw.value)
            for arg in node.args:
                self.eval(arg)
            if isinstance(target, StreamArray):
                self._record_stream(target, node.lineno)
                return Chunk(target.axis, target.space)
            return target
        if meth == "append" and isinstance(target, ListVal):
            for arg in node.args:
                val = self.eval(arg)
                if not isinstance(val, (Unknown, Const)):
                    target.item = val
            return Const(None)
        if meth == "strips":
            for arg in node.args:
                self.eval(arg)
            return StripsVal()
        return UNKNOWN

    def _call_numpy(self, path: str, node: ast.Call) -> AV:
        args = [self.eval(a) for a in node.args]
        for kw in node.keywords:
            self.eval(kw.value)
        name = path.removeprefix("np.")
        if name in ("add.reduceat",):
            # segmented reduction: pass the data chunk through; the
            # boundary argument was counted during evaluation
            return args[0] if args else UNKNOWN
        if name == "ascontiguousarray":
            src = args[0] if args else UNKNOWN
            if isinstance(src, Matrix):
                self.cert.pack_sites.append(node.lineno)
                return src
            return src
        if name == "zeros":
            shape = args[0] if args else UNKNOWN
            if isinstance(shape, TupleVal) and len(shape.items) == 2:
                rows, width = shape.items
                w = width.axis if isinstance(width, AxisLen) else None
                r = rows.axis if isinstance(rows, AxisLen) else None
                if w is not None:
                    return Matrix("scratch", w, r)
            return UNKNOWN
        if name == "concatenate":
            src = args[0] if args else UNKNOWN
            if isinstance(src, ListVal):
                return src.item
            if isinstance(src, TupleVal):
                for it in src.items:
                    if isinstance(it, (Chunk, MatChunk)):
                        return it
                return DerivedIndex()
            return UNKNOWN
        if name in ("flatnonzero", "argsort", "searchsorted"):
            return DerivedIndex()
        if name == "diff":
            src = args[0] if args else UNKNOWN
            if isinstance(src, Chunk):
                return Chunk(src.axis, "delta", subset=src.subset)
            return UNKNOWN
        if name == "repeat":
            return args[0] if args else UNKNOWN
        if name in ("asarray", "asanyarray", "ascontiguousarray"):
            return args[0] if args else UNKNOWN
        return UNKNOWN

    def _call_builtin(self, name: str, node: ast.Call) -> AV:
        args = [self.eval(a) for a in node.args]
        for kw in node.keywords:
            self.eval(kw.value)
        if name == "check_factors":
            return TupleVal([FactorList(RANK), AxisLen(RANK)])
        if name == "alloc_output":
            return Matrix("A", RANK, I_OUT, is_output=True)
        if name == "len":
            src = args[0] if args else UNKNOWN
            if isinstance(src, LevelsHandle):
                return Const(src.order - 1)
            if isinstance(src, ShapeHandle):
                return Const(src.order)
            return UNKNOWN
        if name == "range":
            return RangeVal(args)
        if name == "zip":
            return ZipVal(args)
        if name in ("int", "float", "max", "min", "factor_dtype"):
            return args[0] if len(args) == 1 else UNKNOWN
        return UNKNOWN

    def _inline_helper(self, fn: HelperFn, node: ast.Call) -> AV:
        if self.depth >= self.MAX_DEPTH:
            raise Unverifiable(
                f"helper inlining too deep at {fn.func}", node.lineno
            )
        func_def = self.registry.function(fn.module, fn.func)
        params = [a.arg for a in func_def.args.args]
        bound: dict[str, AV] = {}
        for name, arg in zip(params, node.args):
            bound[name] = self.eval(arg)
        for kw in node.keywords:
            if kw.arg is not None:
                bound[kw.arg] = self.eval(kw.value)
        # defaults for unbound trailing params
        for name in params[len(node.args):]:
            bound.setdefault(name, UNKNOWN)
        saved_env = self.env
        self.env = bound
        self.depth += 1
        try:
            self.exec_body(func_def.body)
        finally:
            self.depth -= 1
            self.env = saved_env
        return Const(None)

    # -- statements ----------------------------------------------------
    def exec_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._exec_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
        elif isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            pass
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            pass
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            pass
        else:
            raise Unverifiable(
                f"unsupported statement {type(stmt).__name__}",
                stmt.lineno,
            )

    def _bind(self, target: ast.AST, value: AV, line: int) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items: "list[AV]"
            if isinstance(value, TupleVal):
                items = value.items
            elif isinstance(value, ZipVal):
                items = value.items
            else:
                items = [UNKNOWN] * len(target.elts)
            if len(items) != len(target.elts):
                items = [UNKNOWN] * len(target.elts)
            for t, v in zip(target.elts, items):
                self._bind(t, v, line)
            return
        if isinstance(target, ast.Subscript):
            self._store_subscript(target, value, line, accumulate=False)
            return
        raise Unverifiable(
            f"unsupported assignment target {type(target).__name__}", line
        )

    def _exec_assign(self, stmt: "ast.Assign | ast.AnnAssign") -> None:
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            value = self.eval(stmt.value)
            self._bind(stmt.target, value, stmt.lineno)
            return
        value = self.eval(stmt.value)
        for target in stmt.targets:
            self._bind(target, value, stmt.lineno)

    def _exec_augassign(self, stmt: ast.AugAssign) -> None:
        value = self.eval(stmt.value)
        if isinstance(stmt.target, ast.Name):
            current = self.env.get(stmt.target.id, UNKNOWN)
            combined = current
            if isinstance(value, (Chunk, MatChunk)) and isinstance(
                current, (Unknown,)
            ):
                combined = value
            self.env[stmt.target.id] = combined
            return
        if isinstance(stmt.target, ast.Subscript):
            self._store_subscript(
                stmt.target, value, stmt.lineno, accumulate=True
            )
            return
        raise Unverifiable("unsupported augmented target", stmt.lineno)

    def _store_subscript(
        self, target: ast.Subscript, value: AV, line: int, accumulate: bool
    ) -> None:
        base = self.eval(target.value)
        sl = target.slice
        if isinstance(base, ListVal):
            self.eval(sl)
            if not isinstance(value, (Unknown, Const)):
                base.item = value
            return
        if isinstance(base, Matrix):
            if base.role == "scratch":
                self.eval(sl)
                return
            if not (base.is_output or base.role == "A"):
                self.problems.append(
                    _ct703(
                        self.cert,
                        line,
                        f"store into non-output factor {base.role!r}",
                    )
                )
                return
            # slab store: A[:, lo:hi] = A_s
            if (
                isinstance(sl, ast.Tuple)
                and len(sl.elts) == 2
                and isinstance(sl.elts[0], ast.Slice)
                and sl.elts[0].lower is None
                and sl.elts[0].upper is None
            ):
                width = self._slice_width(sl.elts[1], base.width)
                rows = base.rows if base.rows is not None else I_OUT
                self._record_write(
                    base,
                    "all_rows",
                    self.mult * rows * width,
                    line,
                    accumulate,
                )
                return
            # scatter: A[row_chunk] (+)= ...
            idx = self._index_value(sl)
            if isinstance(idx, Chunk) and idx.space == "out":
                self._record_write(
                    base,
                    "distinct_out",
                    self.mult * DISTINCT_OUT * base.width,
                    line,
                    accumulate,
                )
                return
            if isinstance(idx, Chunk):
                self.problems.append(
                    Diagnostic(
                        "CT704",
                        self.cert.file,
                        line,
                        0,
                        f"kernel {self.cert.kernel!r} writes the output "
                        f"through a {idx.space!r}-space index; the row "
                        "footprint is not bounded by the declared "
                        "output-row write-set",
                        hint="scatter through output-row indices, or fix "
                        "the index stream wiring",
                    )
                )
                return
            raise Unverifiable(
                "output write with an unresolvable index", line
            )
        if isinstance(base, _OutputGatherView):
            # e.g. nested store through a gathered view — not used
            raise Unverifiable("store through a gathered view", line)
        if isinstance(base, Unknown):
            raise Unverifiable(
                "store into an unresolvable target", line
            )
        self.eval(sl)

    # -- loops ---------------------------------------------------------
    def _exec_for(self, stmt: ast.For) -> None:
        iterable = self.eval(stmt.iter)
        if isinstance(iterable, RangeVal):
            self._exec_range_for(stmt, iterable)
            return
        if isinstance(iterable, StripsVal):
            saved = self.mult
            self.mult = self.mult * N_STRIPS
            try:
                self._bind(
                    stmt.target,
                    TupleVal([StripBound("lo"), StripBound("hi")]),
                    stmt.lineno,
                )
                self.exec_body(stmt.body)
            finally:
                self.mult = saved
            return
        if isinstance(iterable, ZipVal):
            items: list[AV] = []
            for it in iterable.items:
                if isinstance(it, BlockList):
                    items.append(BlockHandle())
                elif isinstance(it, PerBlockList):
                    items.append(it.item)
                elif isinstance(it, ListVal):
                    items.append(it.item)
                else:
                    items.append(UNKNOWN)
            # block loops tile the tensor: one aggregate-symbol pass
            self._bind(stmt.target, TupleVal(items), stmt.lineno)
            self.exec_body(stmt.body)
            return
        if isinstance(iterable, BlockPairList):
            self._bind(
                stmt.target,
                TupleVal([BlockHandle(), CSFHandle(iterable.csf_order)]),
                stmt.lineno,
            )
            self.exec_body(stmt.body)
            return
        if isinstance(iterable, BlockList):
            self._bind(stmt.target, BlockHandle(), stmt.lineno)
            self.exec_body(stmt.body)
            return
        raise Unverifiable(
            "for-loop over an unrecognized iterable", stmt.lineno
        )

    def _exec_range_for(self, stmt: ast.For, rng: RangeVal) -> None:
        args = rng.args
        # chunk loop: range(0, axis_len, chunk) — the slices inside tile
        # the axis exactly once, so the body is walked with multiplicity 1
        if (
            len(args) == 3
            and isinstance(args[0], Const)
            and args[0].value == 0
            and isinstance(args[1], AxisLen)
        ):
            self._bind(stmt.target, UNKNOWN, stmt.lineno)
            self.chunk_depth += 1
            try:
                self.exec_body(stmt.body)
            finally:
                self.chunk_depth -= 1
            return
        # constant range: unroll (level walks, per-mode pack loops)
        values: "list[int] | None" = None
        if all(isinstance(a, Const) and isinstance(a.value, int) for a in args):
            ints = [a.value for a in args]  # type: ignore[union-attr]
            if len(ints) == 1:
                values = list(range(ints[0]))
            elif len(ints) == 2:
                values = list(range(ints[0], ints[1]))
            else:
                values = list(range(ints[0], ints[1], ints[2]))
        if values is not None:
            if len(values) > self.MAX_UNROLL:
                raise Unverifiable(
                    "constant loop too long to unroll", stmt.lineno
                )
            for v in values:
                self._bind(stmt.target, Const(v), stmt.lineno)
                self.exec_body(stmt.body)
            return
        raise Unverifiable(
            "range loop with unresolvable bounds", stmt.lineno
        )

    def _exec_while(self, stmt: ast.While) -> None:
        # chunk loop: `while f0 < n_fibers:` — slices inside tile their
        # axes once; anything else is unverifiable
        test = stmt.test
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Lt)
        ):
            bound = self.eval(test.comparators[0])
            if isinstance(bound, AxisLen):
                self.chunk_depth += 1
                try:
                    self.exec_body(stmt.body)
                finally:
                    self.chunk_depth -= 1
                return
        raise Unverifiable(
            "while-loop that is not a bounded chunk loop", stmt.lineno
        )

    def _exec_if(self, stmt: ast.If) -> None:
        test = self.eval(stmt.test)
        if isinstance(test, Const):
            if test.value:
                self.exec_body(stmt.body)
            else:
                self.exec_body(stmt.orelse)
            return
        # unresolvable: walk both branches (counts are upper bounds for
        # early-exit guards like `if nnz == 0: return`, whose body is
        # access-free)
        self.exec_body(stmt.body)
        self.exec_body(stmt.orelse)

    # -- entry ---------------------------------------------------------
    def run_execute(
        self, func: ast.FunctionDef, plan: HandleVal
    ) -> None:
        params = [a.arg for a in func.args.args]
        env: dict[str, AV] = {}
        for name in params:
            env[name] = UNKNOWN
        # execute(self, plan, factors, out=None)
        if len(params) >= 2:
            env[params[1]] = plan
        if len(params) >= 3:
            env[params[2]] = FactorList(RANK)
        self.env = env
        self.exec_body(func.body)


@dataclass
class _BoundMethod(AV):
    target: AV
    method: str


@dataclass
class _OutputGatherView(AV):
    """``A[rows]`` read as the load half of an accumulate."""

    base: Matrix
    index: Chunk


def _ct703(cert: CostCertificate, line: int, detail: str) -> Diagnostic:
    return Diagnostic(
        "CT703",
        cert.file,
        line,
        0,
        f"kernel {cert.kernel!r}: {detail}",
        hint="register the access in the kernel's cost spec, or remove "
        "the unmodeled access",
    )


# ---------------------------------------------------------------------
# Certificate derivation and contract checks
# ---------------------------------------------------------------------


def derive_certificate(
    name: str,
    registry: "ModuleRegistry | None" = None,
) -> "tuple[CostCertificate | None, list[Diagnostic]]":
    """Derive the symbolic certificate for one shipped kernel.

    Returns ``(certificate, diagnostics)``; an unverifiable kernel gives
    ``(None, [CT709])``."""
    spec = KERNEL_COST_SPECS[name]
    registry = registry or ModuleRegistry()
    file = registry.file_of(spec.module)
    try:
        func = registry.method(spec.module, spec.kernel_class, "execute")
    except Unverifiable as exc:
        return None, [
            Diagnostic(
                "CT709",
                file,
                exc.line,
                0,
                f"kernel {name!r}: {exc.message}",
                hint="keep the kernel's execute() analyzable, or exempt "
                "it from cost certification",
            )
        ]
    cert = CostCertificate(kernel=name, file=file, exec_line=func.lineno)
    walker = _Walker(registry, cert)
    try:
        walker.run_execute(func, spec.plan_env())
    except Unverifiable as exc:
        return None, [
            Diagnostic(
                "CT709",
                file,
                exc.line,
                0,
                f"kernel {name!r}: certificate underivable — {exc.message}",
                hint="use the chunk/strip/block loop idioms the certifier "
                "recognizes (see docs/static-analysis.md)",
            )
        ]
    return cert, walker.problems


def _subbed(poly: Poly, subs: "Mapping[str, Poly | int]") -> Poly:
    return poly.substitute(subs) if subs else poly


def check_traffic_contract(
    cert: CostCertificate, spec: KernelCostSpec
) -> list[Diagnostic]:
    """CT701/CT702: derived streams and gathers vs the model mirror."""
    diags: list[Diagnostic] = []
    model_streams = model_stream_bytes()
    for cls in STREAM_CLASSES:
        want = _subbed(model_streams[cls], spec.subs)
        have = _subbed(cert.stream_bytes.get(cls, ZERO), spec.subs)
        line = cert.stream_lines.get(cls, cert.exec_line)
        if have == ZERO and want != ZERO:
            diags.append(
                Diagnostic(
                    "CT702",
                    cert.file,
                    cert.exec_line,
                    0,
                    f"kernel {cert.kernel!r}: the model's {cls!r} stream "
                    f"term ({want}) has no matching kernel access",
                    hint="the kernel no longer reads this tensor stream; "
                    "update the kernel or the traffic model together",
                )
            )
        elif have != want:
            diags.append(
                Diagnostic(
                    "CT701",
                    cert.file,
                    line,
                    0,
                    f"kernel {cert.kernel!r}: derived {cls!r} stream "
                    f"bytes {have} != model {want}",
                    hint="the kernel's loop nest moved away from the "
                    "traffic model; reconcile them",
                )
            )
    model_rows = model_gather_rows()
    for role in ("B", "C"):
        want = _subbed(model_rows[role], spec.subs)
        have = _subbed(cert.gather_rows.get(role, ZERO), spec.subs)
        line = cert.gather_lines.get(role, cert.exec_line)
        if have == ZERO:
            diags.append(
                Diagnostic(
                    "CT702",
                    cert.file,
                    cert.exec_line,
                    0,
                    f"kernel {cert.kernel!r}: the model gathers {role} "
                    f"{want} times but the kernel never gathers it",
                    hint="the factor gather disappeared; update kernel "
                    "or model together",
                )
            )
        elif have != want:
            diags.append(
                Diagnostic(
                    "CT701",
                    cert.file,
                    line,
                    0,
                    f"kernel {cert.kernel!r}: derived {role} gather rows "
                    f"{have} != model {want}",
                    hint="predicted_footprint charges one B row per "
                    "nonzero and one C row per fiber, per strip",
                )
            )
    if not cert.writes:
        diags.append(
            Diagnostic(
                "CT702",
                cert.file,
                cert.exec_line,
                0,
                f"kernel {cert.kernel!r}: no output write derived — the "
                "accumulator store is missing",
                hint="every MTTKRP must store its accumulated rows "
                "into the output",
            )
        )
    return diags


def check_write_contract(
    cert: CostCertificate, spec: KernelCostSpec
) -> list[Diagnostic]:
    """CT704: derived write footprint vs the declared write_set() kind."""
    diags: list[Diagnostic] = []
    for w in cert.writes:
        if w.kind == "all_rows" and not spec.full_write_set:
            diags.append(
                Diagnostic(
                    "CT704",
                    cert.file,
                    w.line,
                    0,
                    f"kernel {cert.kernel!r} stores every output row "
                    "(slab store) but its plan declares a sparse "
                    "write_set()",
                    hint="widen the plan's write_set() to the full range "
                    "or scatter only the owned rows",
                )
            )
    return diags


def declared_write_kind(
    spec: KernelCostSpec, registry: ModuleRegistry
) -> "str | None":
    """Parse the plan's declared ``write_set()`` shape from its AST:
    ``"sparse"`` (intervals_from_rows), ``"full"`` (whole-range tuple or
    inherited base default), or ``None`` when unresolvable (CT705)."""
    cls = registry.class_def(spec.module, spec.plan_class)
    if cls is None:
        return None
    func = None
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "write_set":
            func = item
    if func is None:
        return "full"  # the Plan base default: the full output range
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name) and f.id == "intervals_from_rows":
                return "sparse"
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(
            node.value, ast.Tuple
        ):
            return "full"
    return None


def emission_polys(
    registry: ModuleRegistry,
) -> "dict[str, tuple[Poly, int]]":
    """Extract the ``kernel.gathers`` / ``kernel.factor_bytes`` emission
    formulas from ``Kernel._traced_execute`` as polynomials.

    Raises :class:`Unverifiable` when an emission expression uses names
    outside the model vocabulary."""
    func = registry.function(_BASE_MODULE, "_traced_execute")
    names = {
        "nnz": NNZ,
        "n_fibers": N_FIBERS,
        "distinct_out": DISTINCT_OUT,
        "rank": RANK,
        "itemsize": ITEMSIZE,
    }

    def to_poly(node: ast.AST) -> Poly:
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (int,)
        ):
            return Poly.const(node.value)
        if isinstance(node, ast.Name):
            if node.id in names:
                return names[node.id]
            raise Unverifiable(
                f"emission uses unmodeled name {node.id!r}", node.lineno
            )
        if isinstance(node, ast.BinOp):
            left, right = to_poly(node.left), to_poly(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
        raise Unverifiable(
            "emission expression outside the polynomial fragment",
            getattr(node, "lineno", 1),
        )

    out: dict[str, tuple[Poly, int]] = {}
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "count"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Constant)
        ):
            continue
        counter = node.args[0].value
        if counter in ("kernel.gathers", "kernel.factor_bytes"):
            out[counter] = (to_poly(node.args[1]), node.lineno)
    return out


def check_counter_contract(
    cert: CostCertificate,
    spec: KernelCostSpec,
    registry: ModuleRegistry,
) -> list[Diagnostic]:
    """CT706/CT707: counter emission formulas vs the certificate."""
    base_file = registry.file_of(_BASE_MODULE)
    try:
        emissions = emission_polys(registry)
    except Unverifiable as exc:
        return [
            Diagnostic(
                "CT709",
                base_file,
                exc.line,
                0,
                f"counter emission unanalyzable: {exc.message}",
                hint="keep _traced_execute's counter formulas within "
                "the nnz/n_fibers/distinct_out/rank/itemsize polynomial "
                "fragment",
            )
        ]
    diags: list[Diagnostic] = []
    checks = [
        (
            "kernel.gathers",
            "CT706",
            cert.gathers_counter(),
            "gathered B/C rows per rank pass",
        ),
        (
            "kernel.factor_bytes",
            "CT707",
            cert.factor_bytes_counter(),
            "gathered factor elements plus the model's distinct_out "
            "output term, at the factor itemsize",
        ),
    ]
    for counter, rule, expected, describe in checks:
        if counter not in emissions:
            diags.append(
                Diagnostic(
                    rule,
                    base_file,
                    1,
                    0,
                    f"_traced_execute no longer emits {counter!r}",
                    hint="restore the counter emission; traces and the "
                    "certifier both rely on it",
                )
            )
            continue
        emitted, line = emissions[counter]
        want = _subbed(expected, spec.subs)
        have = _subbed(emitted, spec.subs)
        if want != have:
            diags.append(
                Diagnostic(
                    rule,
                    base_file,
                    line,
                    0,
                    f"{counter!r} emission {have} disagrees with kernel "
                    f"{cert.kernel!r}'s certificate ({want}: {describe})",
                    hint="the emission formula and the kernel's derived "
                    "access counts must stay consistent",
                )
            )
    return diags


def certify_kernel(
    name: str, registry: "ModuleRegistry | None" = None
) -> "tuple[CostCertificate | None, list[Diagnostic]]":
    """Full static certification (CT701-CT707, CT709) of one kernel."""
    registry = registry or ModuleRegistry()
    spec = KERNEL_COST_SPECS[name]
    cert, diags = derive_certificate(name, registry)
    if cert is None:
        return None, diags
    kind = declared_write_kind(spec, registry)
    if kind is None:
        diags.append(
            Diagnostic(
                "CT705",
                cert.file,
                cert.exec_line,
                0,
                f"kernel {name!r}: the plan's declared write_set() shape "
                "cannot be resolved statically",
                hint="declare write_set() via intervals_from_rows (sparse) "
                "or a literal full-range tuple",
            )
        )
    else:
        # keep the spec's belief honest against the parsed declaration
        declared_full = kind == "full"
        if declared_full != spec.full_write_set:
            diags.append(
                Diagnostic(
                    "CT705",
                    cert.file,
                    cert.exec_line,
                    0,
                    f"kernel {name!r}: declared write_set() is "
                    f"{kind} but the cost spec expects "
                    f"{'full' if spec.full_write_set else 'sparse'}",
                    hint="update KERNEL_COST_SPECS alongside the plan's "
                    "write_set() declaration",
                )
            )
    diags.extend(check_traffic_contract(cert, spec))
    diags.extend(check_write_contract(cert, spec))
    diags.extend(check_counter_contract(cert, spec, registry))
    return cert, diags


def certify_kernel_source(
    name: str, source: str
) -> "tuple[CostCertificate | None, list[Diagnostic]]":
    """Certify ``name`` with its module's source replaced by ``source``
    (the seeded-mutant entry point)."""
    spec = KERNEL_COST_SPECS[name]
    registry = ModuleRegistry(source_overrides={spec.module: source})
    return certify_kernel(name, registry)


@dataclass
class CostScan:
    """Result of certifying every shipped kernel."""

    diagnostics_by_file: dict[str, list[Diagnostic]]
    sources: dict[str, str]
    certificates: dict[str, CostCertificate]


def certify_all(
    trees: "Mapping[str, ast.Module | None] | None" = None,
) -> CostScan:
    """Certify all shipped kernels; the runner merges the result into
    its per-file diagnostic stream (family CT)."""
    registry = ModuleRegistry(trees=trees)
    by_file: dict[str, list[Diagnostic]] = {}
    sources: dict[str, str] = {}
    certs: dict[str, CostCertificate] = {}
    for name, spec in KERNEL_COST_SPECS.items():
        cert, diags = certify_kernel(name, registry)
        if cert is not None:
            certs[name] = cert
        for d in diags:
            by_file.setdefault(d.file, []).append(d)
        file = registry.file_of(spec.module)
        by_file.setdefault(file, [])
        sources[file] = registry.source_of(spec.module)
    base_file = registry.file_of(_BASE_MODULE)
    by_file.setdefault(base_file, [])
    sources[base_file] = registry.source_of(_BASE_MODULE)
    return CostScan(by_file, sources, certs)


# ---------------------------------------------------------------------
# Registration-time vet (opt-in, alongside DF611)
# ---------------------------------------------------------------------

#: Classes already cost-vetted clean in this process.
_COST_VETTED: "weakref.WeakSet" = weakref.WeakSet()


def cost_vet_enabled() -> bool:
    """The cost vet is opt-in (``REPRO_COST_VET=1``): third-party kernels
    have no cost spec and cannot be certified, so unlike DF611 this gate
    defaults off and only guards edits to the shipped kernels."""
    return os.environ.get("REPRO_COST_VET", "0").lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def enforce_kernel_cost(cls: type) -> None:
    """Registration-time CT gate: certify a shipped kernel class when
    ``REPRO_COST_VET=1``; raise ``RegistrationError`` on any CT error.

    Classes without a cost spec (third-party kernels) are skipped — the
    static certifier only models the shipped kernel idioms."""
    if not cost_vet_enabled() or cls in _COST_VETTED:
        return
    spec = next(
        (
            s
            for s in KERNEL_COST_SPECS.values()
            if s.kernel_class == cls.__name__
            and s.module == cls.__module__
        ),
        None,
    )
    if spec is None:
        return
    _, diags = certify_kernel(spec.name)
    errors = [d for d in diags if d.severity.value == "error"]
    if errors:
        from repro.util.errors import RegistrationError

        listing = "; ".join(
            f"{d.rule} {d.file}:{d.line} {d.message}" for d in errors[:4]
        )
        raise RegistrationError(
            f"kernel class {cls.__name__} failed cost certification "
            f"({len(errors)} finding(s)): {listing}"
        )
    _COST_VETTED.add(cls)
