"""AST hot-path performance lint for kernel modules (rules HP301-HP303).

The kernels are numpy-vectorized by design (DESIGN.md); a single
devectorized loop over nonzeros or fibers costs orders of magnitude and
is invisible to the test suite (correctness is unaffected).  This pass
flags the three regressions most likely to creep in as Dynasor-style
layout tricks get ported:

* **HP301** — a per-element Python loop over an array
  (``for i in range(len(x)): ... x[i] ...``): the nnz/fiber streams must
  go through numpy bulk ops (``reduceat``, fancy indexing), never
  per-element Python iteration.  Chunk loops (``range(lo, hi, step)``)
  and loops over block lists are structurally exempt.
* **HP302** — a loop-invariant dotted attribute chain (``plan.base.vals``)
  looked up repeatedly inside a loop: each lookup is a dict probe per
  iteration; hoist it to a local before the loop.
* **HP303** — ``np.zeros/empty/ones/full`` without an explicit ``dtype``:
  the float64 default silently promotes float32 pipelines and doubles
  memory traffic — exactly the quantity the machine model meters.

Scope: files under a ``kernels`` directory (the hot path); the runner
enforces that restriction.
"""

from __future__ import annotations

import ast
from collections import Counter

from repro.analysis.diagnostics import Diagnostic

#: Invariant-chain occurrence count at which HP302 fires.
HP302_THRESHOLD = 3

#: numpy allocators and the positional index of their dtype argument.
_ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}


def _dotted_chain(node: ast.expr) -> "tuple[str, str] | None":
    """``(root, dotted)`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or not parts:
        return None
    parts.append(node.id)
    parts.reverse()
    return parts[0], ".".join(parts)


def _assigned_names(node: ast.AST) -> set[str]:
    """Every name bound anywhere inside ``node`` (loop targets, assigns,
    with-items, comprehension targets, walrus)."""
    names: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = n.targets if isinstance(n, ast.Assign) else [n.target]
            for t in targets:
                for sub in ast.walk(t):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(n, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(n.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(n, ast.NamedExpr):
            if isinstance(n.target, ast.Name):
                names.add(n.target.id)
        elif isinstance(n, (ast.withitem,)):
            if n.optional_vars is not None:
                for sub in ast.walk(n.optional_vars):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
    return names


def _per_element_index_var(loop: ast.For) -> "str | None":
    """The index variable of a per-element iteration pattern, or None.

    Matches ``for i in range(len(x))``, ``range(x.shape[0])``, and
    ``range(x.size)`` — single-argument range only, so stepped chunk
    loops (``range(lo, hi, chunk)``) and small fixed-trip loops over
    modes/levels are structurally exempt.
    """
    it = loop.iter
    if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)):
        return None
    if it.func.id != "range" or len(it.args) != 1:
        return None
    arg = it.args[0]
    is_len = (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Name)
        and arg.func.id == "len"
    )
    is_shape0 = (
        isinstance(arg, ast.Subscript)
        and isinstance(arg.value, ast.Attribute)
        and arg.value.attr == "shape"
    )
    is_size = isinstance(arg, ast.Attribute) and arg.attr == "size"
    if not (is_len or is_shape0 or is_size):
        return None
    if isinstance(loop.target, ast.Name):
        return loop.target.id
    return None


def _subscripts_by(body: list[ast.stmt], var: str) -> "ast.Subscript | None":
    """First subscript whose index expression mentions ``var``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Subscript):
                for sub in ast.walk(node.slice):
                    if isinstance(sub, ast.Name) and sub.id == var:
                        return node
    return None


def _check_loops(tree: ast.AST, file: str, diags: list[Diagnostic]) -> None:
    loops = [
        n for n in ast.walk(tree) if isinstance(n, (ast.For, ast.While))
    ]
    reported: set[tuple[str, int]] = set()

    for loop in loops:
        # ---- HP301: per-element iteration ---------------------------
        if isinstance(loop, ast.For):
            idx = _per_element_index_var(loop)
            if idx is not None:
                hit = _subscripts_by(loop.body, idx)
                if hit is not None:
                    key = ("<HP301>", loop.lineno)
                    if key not in reported:
                        reported.add(key)
                        diags.append(
                            Diagnostic(
                                "HP301",
                                file,
                                loop.lineno,
                                loop.col_offset,
                                "per-element Python loop indexes an array with "
                                f"the loop variable {idx!r}",
                                hint="replace with a vectorized numpy equivalent "
                                "(fancy indexing, np.add.reduceat, np.add.at)",
                            )
                        )

        # ---- HP302: repeated loop-invariant attribute chains --------
        bound = _assigned_names(loop)
        chains: Counter = Counter()
        first_line: dict[str, tuple[int, int]] = {}
        # Count only *maximal* chains: ast.walk visits outer attributes
        # first, so once `self.csf.vals` is counted its prefix `self.csf`
        # is skipped (hoisting the full chain removes both lookups).
        inner: set[int] = set()
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Attribute) and id(node) not in inner:
                    chain = _dotted_chain(node)
                    if chain is None:
                        continue
                    sub = node.value
                    while isinstance(sub, ast.Attribute):
                        inner.add(id(sub))
                        sub = sub.value
                    root, dotted = chain
                    if root in bound:
                        continue
                    chains[dotted] += 1
                    if dotted not in first_line:
                        first_line[dotted] = (node.lineno, node.col_offset)
        for dotted, count in chains.items():
            if count < HP302_THRESHOLD:
                continue
            line, col = first_line[dotted]
            key = (dotted, line)
            if key in reported:
                continue
            reported.add(key)
            diags.append(
                Diagnostic(
                    "HP302",
                    file,
                    line,
                    col,
                    f"attribute chain {dotted!r} is loop-invariant but looked "
                    f"up {count} times inside the loop",
                    hint=f"hoist it: `{dotted.split('.')[-1]} = {dotted}` before the loop",
                )
            )


def _check_allocations(tree: ast.AST, file: str, diags: list[Diagnostic]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if not (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
            and f.attr in _ALLOCATORS
        ):
            continue
        dtype_pos = _ALLOCATORS[f.attr]
        has_dtype = len(node.args) > dtype_pos or any(
            kw.arg == "dtype" for kw in node.keywords
        )
        if not has_dtype:
            diags.append(
                Diagnostic(
                    "HP303",
                    file,
                    node.lineno,
                    node.col_offset,
                    f"np.{f.attr}(...) without an explicit dtype defaults to "
                    "float64",
                    hint="pass dtype= (VALUE_DTYPE, or the source array's "
                    ".dtype) so float32 pipelines are not silently promoted",
                )
            )


def scan_source(
    source: str, file: str, tree: "ast.Module | None" = None
) -> list[Diagnostic]:
    """Run the hot-path pass over one module's source.  ``tree``
    optionally reuses the runner's shared parse of the module."""
    diags: list[Diagnostic] = []
    try:
        if tree is None:
            tree = ast.parse(source, filename=file)
    except SyntaxError:  # contract pass reports the parse failure
        return diags
    _check_loops(tree, file, diags)
    _check_allocations(tree, file, diags)
    return diags
