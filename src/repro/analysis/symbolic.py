"""Exact multivariate Laurent-polynomial algebra for cost certificates.

The loop-nest cost certifier (:mod:`repro.analysis.cost`) expresses every
array's access count as a polynomial over the iteration-space symbols of
one MTTKRP execution — ``nnz``, ``n_fibers``, ``distinct_out``, rank
``R``, strip count ``n_strips``, ``itemsize`` — and proves kernel/model
agreement by *exact* normalized comparison, never by numeric sampling.

Negative integer exponents are allowed (Laurent polynomials): a rank
strip is ``R / n_strips`` columns wide, so strip-sliced factor widths are
``R * n_strips**-1`` — still closed under addition and multiplication,
still with a unique normal form, which is all the certifier needs.
Coefficients are :class:`fractions.Fraction`, so arithmetic is exact.

The normal form (sorted monomials, zero coefficients dropped) makes
equality structural: two expressions are equal iff algebra says so.
Property tests (commutativity, associativity, distributivity,
substitution/evaluation agreement) live in
``tests/analysis/test_symbolic_property.py``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

#: A monomial: sorted tuple of (symbol, nonzero integer exponent).
Monomial = tuple[tuple[str, int], ...]

#: Numbers accepted wherever a scalar can stand in for a polynomial.
Scalar = (int, Fraction)


def _as_fraction(value: "int | Fraction") -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class Poly:
    """An exact multivariate Laurent polynomial in normal form.

    Immutable; construct via :meth:`const`, :meth:`var`, or arithmetic.
    ``terms`` maps monomials to nonzero Fraction coefficients.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: "Mapping[Monomial, Fraction] | None" = None) -> None:
        normalized: dict[Monomial, Fraction] = {}
        for mono, coeff in (terms or {}).items():
            coeff = _as_fraction(coeff)
            if coeff == 0:
                continue
            clean = tuple(
                sorted((s, int(e)) for s, e in mono if int(e) != 0)
            )
            normalized[clean] = normalized.get(clean, Fraction(0)) + coeff
        object.__setattr__(
            self,
            "terms",
            {m: c for m, c in normalized.items() if c != 0},
        )

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Poly is immutable")

    # -- constructors --------------------------------------------------
    @classmethod
    def const(cls, value: "int | Fraction") -> "Poly":
        """The constant polynomial ``value``."""
        return cls({(): _as_fraction(value)})

    @classmethod
    def var(cls, name: str, power: int = 1) -> "Poly":
        """The monomial ``name**power`` (power may be negative)."""
        if not name:
            raise ValueError("symbol name must be non-empty")
        return cls({((name, int(power)),): Fraction(1)})

    @staticmethod
    def coerce(value: "Poly | int | Fraction") -> "Poly":
        """Lift a scalar to a constant polynomial; pass Polys through."""
        if isinstance(value, Poly):
            return value
        return Poly.const(value)

    # -- algebra -------------------------------------------------------
    def __add__(self, other: "Poly | int | Fraction") -> "Poly":
        if not isinstance(other, (Poly, *Scalar)):
            return NotImplemented
        other = Poly.coerce(other)
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Poly | int | Fraction") -> "Poly":
        if not isinstance(other, (Poly, *Scalar)):
            return NotImplemented
        return self + (-Poly.coerce(other))

    def __rsub__(self, other: "Poly | int | Fraction") -> "Poly":
        if not isinstance(other, (Poly, *Scalar)):
            return NotImplemented
        return Poly.coerce(other) + (-self)

    def __mul__(self, other: "Poly | int | Fraction") -> "Poly":
        if not isinstance(other, (Poly, *Scalar)):
            return NotImplemented
        other = Poly.coerce(other)
        terms: dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                powers: dict[str, int] = {}
                for sym, exp in m1 + m2:
                    powers[sym] = powers.get(sym, 0) + exp
                mono = tuple(
                    sorted((s, e) for s, e in powers.items() if e != 0)
                )
                terms[mono] = terms.get(mono, Fraction(0)) + c1 * c2
        return Poly(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Poly":
        """Integer powers; negative exponents require a single monomial
        (the only inverses Laurent polynomials have)."""
        if not isinstance(exponent, int):
            return NotImplemented
        if exponent == 0:
            return Poly.const(1)
        if exponent > 0:
            out = self
            for _ in range(exponent - 1):
                out = out * self
            return out
        return self.inverse() ** (-exponent)

    def inverse(self) -> "Poly":
        """``1 / self`` for single-monomial polynomials."""
        if len(self.terms) != 1:
            raise ValueError(
                f"only monomials are invertible, got {self}"
            )
        ((mono, coeff),) = self.terms.items()
        return Poly({tuple((s, -e) for s, e in mono): Fraction(1) / coeff})

    def __truediv__(self, other: "Poly | int | Fraction") -> "Poly":
        if not isinstance(other, (Poly, *Scalar)):
            return NotImplemented
        return self * Poly.coerce(other).inverse()

    # -- structure -----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Scalar):
            other = Poly.const(other)
        if not isinstance(other, Poly):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def __bool__(self) -> bool:
        return bool(self.terms)

    @property
    def is_constant(self) -> bool:
        return all(m == () for m in self.terms)

    def symbols(self) -> set[str]:
        """Every symbol appearing with a nonzero exponent."""
        return {s for mono in self.terms for s, _ in mono}

    # -- substitution / evaluation ------------------------------------
    def substitute(self, mapping: "Mapping[str, Poly | int | Fraction]") -> "Poly":
        """Replace symbols by polynomials (or scalars).

        Symbols raised to negative powers may only be replaced by
        invertible (single-monomial, nonzero) polynomials.
        """
        out = Poly.const(0)
        for mono, coeff in self.terms.items():
            term = Poly.const(coeff)
            for sym, exp in mono:
                if sym in mapping:
                    replacement = Poly.coerce(mapping[sym])
                    if exp < 0:
                        replacement = replacement.inverse() ** (-exp)
                    else:
                        replacement = replacement**exp
                    term = term * replacement
                else:
                    term = term * Poly.var(sym, exp)
            out = out + term
        return out

    def evaluate(self, env: "Mapping[str, int | Fraction | float]") -> Fraction:
        """Exact numeric value with every symbol bound in ``env``.

        Raises :class:`KeyError` for unbound symbols and
        :class:`ZeroDivisionError` when a negative power meets zero.
        """
        total = Fraction(0)
        for mono, coeff in self.terms.items():
            value = coeff
            for sym, exp in mono:
                bound = env[sym]
                frac = (
                    Fraction(bound)
                    if not isinstance(bound, Fraction)
                    else bound
                )
                value = value * frac**exp
            total += value
        return total

    # -- rendering -----------------------------------------------------
    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono in sorted(self.terms, key=lambda m: (-len(m), m)):
            coeff = self.terms[mono]
            syms = "*".join(
                sym if exp == 1 else f"{sym}**{exp}" for sym, exp in mono
            )
            if not syms:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(syms)
            elif coeff == -1:
                parts.append(f"-{syms}")
            else:
                parts.append(f"{coeff}*{syms}")
        out = " + ".join(parts)
        return out.replace("+ -", "- ")

    def __repr__(self) -> str:
        return f"Poly({self})"


# -- the certifier's iteration-space vocabulary ------------------------
#: Total nonzeros across all phases of a plan.
NNZ = Poly.var("nnz")
#: Total non-empty fibers across all phases.
N_FIBERS = Poly.var("n_fibers")
#: Per-phase distinct output rows, summed over phases.
DISTINCT_OUT = Poly.var("distinct_out")
#: Factorization rank.
RANK = Poly.var("R")
#: Number of rank strips (1 when the plan has no rank blocking).
N_STRIPS = Poly.var("n_strips")
#: Bytes per value/factor element (8 for float64, 4 for float32).
ITEMSIZE = Poly.var("itemsize")
#: Output-mode length (rows of ``A``).
I_OUT = Poly.var("I_out")

ZERO = Poly.const(0)
ONE = Poly.const(1)


def poly_sum(polys: "Iterable[Poly]") -> Poly:
    """Sum of an iterable of polynomials (0 when empty)."""
    total = ZERO
    for p in polys:
        total = total + p
    return total
