"""Symbolic race detector for blocked MTTKRP schedules (rules RS201/RS202).

The paper's blocking techniques are only safe to parallelize when
concurrent tasks write **disjoint rows of the mode-n output factor**:
every nonzero of block ``(a, b, c)`` writes output rows inside the
block's mode-``n`` interval, so the write-set of a block is known
*statically* from the grid boundaries — no execution needed.  This module
computes those write-sets for every schedule shape the library produces
(mode-block grids, blocked tensors, thread slice partitions, distributed
decompositions, raw COO chunkings) and proves disjointness, or reports
exactly which task pairs collide and whether privatized accumulators
(SPLATT-style per-task partials + reduction, the paper's Section VI fold)
would make the schedule safe.

Wired into :func:`repro.perf.parallel.parallel_predict_time` and
:func:`repro.dist.mttkrp.distributed_mttkrp` so unsafe schedules are
rejected before the time model ever trusts them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.util.errors import ScheduleError
from repro.util.validation import check_mode

#: Cap on the number of conflicting pairs enumerated in reports; the
#: all-pairs count is quadratic and the first few pairs carry the message.
MAX_REPORTED_CONFLICTS = 20


@dataclass(frozen=True)
class TaskWriteSet:
    """The output-mode rows one parallel task writes.

    ``start``/``stop`` bound the rows as a half-open interval; ``rows``
    optionally lists the exact (sorted, unique) row set when the task's
    writes are not contiguous (e.g. a chunk of an unsorted COO stream).
    """

    task: str
    start: int
    stop: int
    rows: "np.ndarray | None" = None

    @property
    def n_rows(self) -> int:
        """Number of distinct rows written."""
        if self.rows is not None:
            return int(self.rows.shape[0])
        return max(0, self.stop - self.start)

    def overlap(self, other: "TaskWriteSet") -> "tuple[int, int, int] | None":
        """``(lo, hi, n_shared)`` of the overlap with another task, or
        ``None`` when the write-sets are disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if lo >= hi:
            return None
        if self.rows is not None or other.rows is not None:
            a = self.rows if self.rows is not None else np.arange(self.start, self.stop)
            b = other.rows if other.rows is not None else np.arange(other.start, other.stop)
            shared = np.intersect1d(a, b, assume_unique=True)
            if shared.size == 0:
                return None
            return int(shared[0]), int(shared[-1]) + 1, int(shared.size)
        return lo, hi, hi - lo


@dataclass(frozen=True)
class Conflict:
    """Two tasks whose write-sets intersect."""

    a: str
    b: str
    start: int
    stop: int
    n_shared_rows: int


@dataclass
class RaceReport:
    """Verdict on one proposed parallel schedule."""

    mode: int
    tasks: list[TaskWriteSet]
    conflicts: list[Conflict]
    #: Total conflicting pairs (may exceed ``len(conflicts)`` when capped).
    n_conflict_pairs: int = 0

    @property
    def safe(self) -> bool:
        """True when every pair of tasks writes disjoint rows."""
        return self.n_conflict_pairs == 0

    @property
    def needs_privatization(self) -> bool:
        """True when the schedule is only safe with per-task privatized
        accumulators reduced afterwards (the paper's SPLATT-style fold)."""
        return self.n_conflict_pairs > 0

    def diagnostics(self, file: str = "<schedule>") -> list[Diagnostic]:
        """Render the verdict as ``repro check`` diagnostics."""
        diags: list[Diagnostic] = []
        out_blocks = {t.start for t in self.tasks}
        if len(self.tasks) > 1 and len(out_blocks) == 1 and self.conflicts:
            diags.append(
                Diagnostic(
                    "RS202",
                    file,
                    0,
                    0,
                    f"all {len(self.tasks)} parallel tasks write the same "
                    f"mode-{self.mode} row range "
                    f"[{self.tasks[0].start}, {self.tasks[0].stop})",
                    hint="parallelize over the output-mode block axis, or use "
                    "privatized accumulators with a reduction",
                )
            )
        for c in self.conflicts:
            diags.append(
                Diagnostic(
                    "RS201",
                    file,
                    0,
                    0,
                    f"tasks {c.a} and {c.b} both write mode-{self.mode} rows "
                    f"[{c.start}, {c.stop}) ({c.n_shared_rows} shared row(s))",
                    hint="serialize the pair, privatize the accumulator and "
                    "reduce, or re-block so output ranges are disjoint",
                )
            )
        if self.n_conflict_pairs > len(self.conflicts):
            extra = self.n_conflict_pairs - len(self.conflicts)
            diags.append(
                Diagnostic(
                    "RS201",
                    file,
                    0,
                    0,
                    f"... and {extra} more conflicting task pair(s)",
                    hint="run with fewer tasks to see the full list",
                )
            )
        return diags

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.safe:
            return (
                f"schedule safe: {len(self.tasks)} task(s) write disjoint "
                f"mode-{self.mode} row ranges"
            )
        return (
            f"schedule UNSAFE: {self.n_conflict_pairs} conflicting pair(s) "
            f"across {len(self.tasks)} task(s); privatized accumulators or "
            f"serialization required"
        )


def detect_conflicts(
    tasks: Sequence[TaskWriteSet], limit: int = MAX_REPORTED_CONFLICTS
) -> tuple[list[Conflict], int]:
    """All-pairs overlap test over interval-sorted tasks.

    Returns the first ``limit`` conflicts plus the total pair count.
    Sorting by start bound keeps the scan near-linear for disjoint
    schedules (each task only compares against successors that start
    before it ends).
    """
    order = sorted(range(len(tasks)), key=lambda i: (tasks[i].start, tasks[i].stop))
    conflicts: list[Conflict] = []
    total = 0
    for pos, i in enumerate(order):
        ti = tasks[i]
        for j in order[pos + 1 :]:
            tj = tasks[j]
            if tj.start >= ti.stop:
                break
            hit = ti.overlap(tj)
            if hit is None:
                continue
            total += 1
            if len(conflicts) < limit:
                lo, hi, n = hit
                conflicts.append(Conflict(ti.task, tj.task, lo, hi, n))
    return conflicts, total


def check_schedule(
    tasks: Sequence[TaskWriteSet], mode: int
) -> RaceReport:
    """Prove disjointness of a task list, or report the collisions."""
    conflicts, total = detect_conflicts(tasks)
    return RaceReport(
        mode=mode, tasks=list(tasks), conflicts=conflicts, n_conflict_pairs=total
    )


def verify_safe(
    tasks: Sequence[TaskWriteSet], mode: int, context: str
) -> RaceReport:
    """Raise :class:`ScheduleError` unless the schedule is disjoint.

    This is the rejection hook the time model and distributed driver call
    before trusting a schedule.
    """
    report = check_schedule(tasks, mode)
    if not report.safe:
        first = report.conflicts[0]
        raise ScheduleError(
            f"{context}: {report.n_conflict_pairs} parallel task pair(s) write "
            f"overlapping mode-{mode} output rows (e.g. {first.a} and {first.b} "
            f"share rows [{first.start}, {first.stop})); privatized accumulators "
            f"or a disjoint re-blocking are required"
        )
    return report


# ----------------------------------------------------------------------
# Write-set builders for every schedule shape the library produces.
# ----------------------------------------------------------------------

def write_sets_for_grid(
    grid, mode: int, parallel: str = "blocks"
) -> list[TaskWriteSet]:
    """Write-sets of a :class:`~repro.blocking.grid.BlockGrid` schedule.

    ``parallel="blocks"`` models one task per grid block (the hazardous
    naive parallelization: blocks differing only in non-output modes share
    their whole output interval).  ``parallel="output"`` models one task
    per output-mode block index — the safe axis, since each interval then
    has exactly one writer.
    """
    mode = check_mode(mode, grid.order)
    bounds = grid.boundaries[mode]
    if parallel == "output":
        return [
            TaskWriteSet(
                task=f"out-block {c}", start=int(bounds[c]), stop=int(bounds[c + 1])
            )
            for c in range(grid.block_counts[mode])
        ]
    if parallel != "blocks":
        raise ValueError(f"parallel must be 'blocks' or 'output', got {parallel!r}")
    tasks = []
    for flat in range(grid.n_blocks):
        coords = grid.block_coords(flat)
        c = coords[mode]
        tasks.append(
            TaskWriteSet(
                task=f"block{coords}", start=int(bounds[c]), stop=int(bounds[c + 1])
            )
        )
    return tasks


def write_sets_for_blocked(blocked) -> list[TaskWriteSet]:
    """Write-sets of a :class:`~repro.blocking.partition.BlockedTensor`'s
    non-empty blocks (one task per block, the MB execution order)."""
    mode = blocked.output_mode
    return [
        TaskWriteSet(
            task=f"block{b.coords}",
            start=int(b.bounds[mode][0]),
            stop=int(b.bounds[mode][1]),
        )
        for b in blocked.blocks
    ]


def write_sets_for_boundaries(
    boundaries: "np.ndarray | Sequence[int]", label: str = "thread"
) -> list[TaskWriteSet]:
    """Write-sets of a slice partition (``partition_rows`` /
    ``greedy_slice_partition`` boundaries, length ``T + 1``)."""
    bounds = np.asarray(boundaries)
    return [
        TaskWriteSet(
            task=f"{label} {t}", start=int(bounds[t]), stop=int(bounds[t + 1])
        )
        for t in range(bounds.shape[0] - 1)
    ]


def write_sets_for_ranges(
    ranges: Iterable[tuple[int, int]], label: str = "task"
) -> list[TaskWriteSet]:
    """Write-sets of explicit per-task ``(lo, hi)`` output-row ranges."""
    return [
        TaskWriteSet(task=f"{label} {t}", start=int(lo), stop=int(hi))
        for t, (lo, hi) in enumerate(ranges)
    ]


def write_sets_for_coo_chunks(
    tensor, mode: int, n_tasks: int
) -> list[TaskWriteSet]:
    """Write-sets of the naive non-blocked COO schedule: the nonzero
    stream split into ``n_tasks`` contiguous chunks *in storage order*.

    Unless the tensor happens to be sorted by the output mode, chunk row
    sets interleave — the canonical race the paper's blocking avoids.
    Exact row sets are computed per chunk, so a sorted tensor verifies
    clean and an unsorted one reports the true collisions.
    """
    mode = check_mode(mode, tensor.order)
    rows = np.asarray(tensor.indices[:, mode])
    nnz = rows.shape[0]
    n_tasks = max(1, min(int(n_tasks), max(nnz, 1)))
    bounds = (nnz * np.arange(n_tasks + 1)) // n_tasks
    tasks = []
    for t in range(n_tasks):
        chunk = rows[int(bounds[t]) : int(bounds[t + 1])]
        uniq = np.unique(chunk)
        if uniq.size == 0:
            tasks.append(TaskWriteSet(task=f"chunk {t}", start=0, stop=0))
            continue
        tasks.append(
            TaskWriteSet(
                task=f"chunk {t}",
                start=int(uniq[0]),
                stop=int(uniq[-1]) + 1,
                rows=uniq,
            )
        )
    return tasks


def write_sets_for_decomposition(decomp, mode: int) -> list[TaskWriteSet]:
    """Write-sets of a medium-grained distributed decomposition: each
    process writes its block's mode-``mode`` chunk of the output factor.

    Processes sharing an output chunk (the ``r x s`` slab) necessarily
    conflict — that is *by design*, resolved by the fold reduce-scatter;
    :func:`verify_fold_covers_conflicts` checks the fold grouping actually
    covers every conflicting pair.
    """
    mode = check_mode(mode, 3)
    return [
        TaskWriteSet(
            task=f"rank{coords}",
            start=int(block.bounds[mode][0]),
            stop=int(block.bounds[mode][1]),
        )
        for coords, block in sorted(decomp.blocks.items())
    ]


def verify_fold_covers_conflicts(decomp, mode: int) -> RaceReport:
    """Check a distributed schedule's conflicts are exactly the ones the
    fold privatizes.

    Every conflicting pair must sit in the same output-axis slab (equal
    coordinate on the grid axis that partitions ``mode``): those partials
    are reduce-scattered, so the race is resolved by privatization.  A
    conflict *across* slabs would be folded nowhere — corrupted output —
    so it raises :class:`ScheduleError`.
    """
    tasks = write_sets_for_decomposition(decomp, mode)
    # Uncapped pair enumeration: a cross-slab conflict hiding past the
    # report cap would silently corrupt the fold.
    conflicts, total = detect_conflicts(tasks, limit=len(tasks) * len(tasks))
    report = RaceReport(
        mode=mode, tasks=tasks, conflicts=conflicts, n_conflict_pairs=total
    )
    axis = decomp.axis_of_mode(mode)
    slab_of = {
        f"rank{coords}": int(coords[axis]) for coords in decomp.blocks
    }
    for c in report.conflicts:
        if slab_of[c.a] != slab_of[c.b]:
            raise ScheduleError(
                f"distributed schedule: processes {c.a} and {c.b} write "
                f"overlapping mode-{mode} rows [{c.start}, {c.stop}) but sit in "
                f"different output slabs — the fold never reduces them"
            )
    return report
