"""Execution sanitizer (rules SZ501-SZ506): instrumented kernel runs.

The static passes prove what a *plan* promises; this pass observes what a
*kernel* actually does.  :func:`sanitized_execute` wraps any registered
kernel's ``execute`` with guarded ndarray subclasses that record every
output-row write and every factor-row gather, then checks:

* SZ501 — observed writes (and nonzero output rows, which also catch
  ``np.add.at``-style writes that bypass ``__setitem__``) are a subset of
  the plan's declared :meth:`~repro.kernels.base.Plan.write_set`.
* SZ502 — every integer gather is in bounds for the array it indexes.
  Negative indices are flagged too: numpy would wrap them silently, and
  a sparse index is never legitimately negative.
* SZ503/SZ504 — no NaN/Inf in the output when every input was finite.
* SZ505 — the output dtype matches the factor dtype (the kernel contract:
  float32 factors yield a float32 output, float64 yields float64 —
  anything else is silent precision drift).
* SZ506 — the observed factor-row footprint (gather counts and distinct
  rows) matches :func:`repro.machine.traffic.predicted_footprint`.
  Kernels that gather from restacked private strip copies (RankB and the
  blocked-CSF local factors) are invisible to the guards; when a factor
  saw no gathers at all the comparison is skipped rather than reported.

The instrumentation is opt-in and costs one Python call per (chunked)
numpy operation — nothing in the normal execution path changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.util.validation import VALUE_DTYPE

#: Cap on reported out-of-bounds gather events per array.
MAX_OOB_EVENTS = 5


class _Tracker:
    """Write/read recorder for one root (C-contiguous, 2-D) array.

    Views of the root (row ranges, column strips) share its buffer; a
    guarded view locates itself by data-pointer offset, so recorded rows
    are always *global* rows of the root.  Arrays whose buffer lies
    outside the root span (copies, ufunc results that inherited the
    guard) are ignored.
    """

    def __init__(
        self, root: np.ndarray, label: str, *, track_writes: bool, track_reads: bool
    ) -> None:
        self.label = label
        self.track_writes = track_writes
        self.track_reads = track_reads
        self.addr = int(root.__array_interface__["data"][0])
        self.nbytes = int(root.nbytes)
        self.row_stride = int(root.strides[0])
        self.itemsize = int(root.itemsize)
        self.n_rows = int(root.shape[0])
        self.written = np.zeros(self.n_rows, dtype=bool)
        self.touched = np.zeros(self.n_rows, dtype=bool)
        self.gather_accesses = 0
        self.oob_events: list[tuple[int, int, int, int]] = []

    # -- geometry ------------------------------------------------------
    def _base_row(self, arr: np.ndarray) -> "int | None":
        """Root row index of ``arr``'s first element, or None if ``arr``
        does not alias the root buffer."""
        if self.nbytes == 0 or arr.size == 0 or self.row_stride <= 0:
            return None
        a = int(arr.__array_interface__["data"][0])
        if a < self.addr or a >= self.addr + self.nbytes:
            return None
        return (a - self.addr) // self.row_stride

    def _is_row_selector(self, arr: np.ndarray) -> bool:
        """Does axis 0 of ``arr`` step over *rows* of the root?  A 1-D
        row slice (``A[i]``) steps over columns instead."""
        if arr.ndim >= 2:
            return True
        if arr.ndim == 1 and arr.size > 1:
            return int(arr.strides[0]) >= self.row_stride
        return False

    def _resolve_rows(
        self, arr: np.ndarray, key
    ) -> "np.ndarray | None":
        """Global root rows selected by ``key`` on ``arr`` (bounds
        already checked/recorded for integer-array keys)."""
        base = self._base_row(arr)
        if base is None:
            return None
        if not self._is_row_selector(arr):
            return np.array([base])
        n = int(arr.shape[0])
        row_key = key[0] if isinstance(key, tuple) and len(key) > 0 else key
        if isinstance(key, tuple) and len(key) == 0:
            row_key = Ellipsis
        if row_key is Ellipsis or (
            isinstance(row_key, slice)
            and row_key == slice(None)
        ):
            local = np.arange(n)
        elif isinstance(row_key, slice):
            local = np.arange(*row_key.indices(n))
        elif isinstance(row_key, (int, np.integer)):
            local = np.array([int(row_key) % n if -n <= row_key < n else int(row_key)])
        elif isinstance(row_key, np.ndarray) and row_key.dtype.kind in "iu":
            flat = row_key.reshape(-1)
            self._record_bounds(flat, n)
            local = np.where(flat < 0, flat + n, flat)
            local = local[(local >= 0) & (local < n)]
        elif isinstance(row_key, np.ndarray) and row_key.dtype.kind == "b":
            local = np.flatnonzero(row_key.reshape(-1)[:n])
        else:
            # Unknown selector: be conservative, assume every row.
            local = np.arange(n)
        return local + base

    def _record_bounds(self, idx: np.ndarray, n: int) -> None:
        """SZ502 bookkeeping: indices < 0 (silent numpy wrap) or >= n."""
        if idx.size == 0:
            return
        lo = int(idx.min())
        hi = int(idx.max())
        if lo < 0 or hi >= n:
            bad = int(((idx < 0) | (idx >= n)).sum())
            if len(self.oob_events) < MAX_OOB_EVENTS:
                self.oob_events.append((bad, lo, hi, n))

    # -- recording -----------------------------------------------------
    def record_write(self, arr: np.ndarray, key, value) -> None:
        rows = self._resolve_rows(arr, key)
        if rows is None or rows.size == 0:
            return
        if (
            np.isscalar(value)
            and not isinstance(value, str)
            and float(value) == 0.0
            and rows.size == self.n_rows
        ):
            # The documented alloc_output zero-fill of a reused buffer.
            return
        rows = rows[(rows >= 0) & (rows < self.n_rows)]
        self.written[rows] = True

    def record_read(self, arr: np.ndarray, key) -> None:
        row_key = key[0] if isinstance(key, tuple) and len(key) > 0 else key
        if not (isinstance(row_key, np.ndarray) and row_key.dtype.kind in "iu"):
            return  # only gathers count toward the footprint
        base = self._base_row(arr)
        if base is None or not self._is_row_selector(arr):
            return
        n = int(arr.shape[0])
        flat = row_key.reshape(-1)
        self._record_bounds(flat, n)
        self.gather_accesses += int(flat.size)
        local = np.where(flat < 0, flat + n, flat)
        local = local[(local >= 0) & (local < n)]
        rows = local + base
        rows = rows[(rows >= 0) & (rows < self.n_rows)]
        self.touched[rows] = True


class GuardedArray(np.ndarray):
    """ndarray subclass that reports element access to a :class:`_Tracker`.

    The tracker rides along through views via ``__array_finalize__``;
    derived arrays with fresh buffers keep the reference but fail the
    tracker's aliasing check, so they record nothing.
    """

    _repro_tracker: "_Tracker | None" = None

    def __array_finalize__(self, obj) -> None:
        if obj is not None and self._repro_tracker is None:
            self._repro_tracker = getattr(obj, "_repro_tracker", None)

    def __getitem__(self, key):
        t = self._repro_tracker
        if t is not None and t.track_reads:
            try:
                t.record_read(self, key)
            except Exception:  # instrumentation must never change results
                pass
        return super().__getitem__(key)

    def __setitem__(self, key, value) -> None:
        t = self._repro_tracker
        if t is not None and t.track_writes:
            try:
                t.record_write(self, key, value)
            except Exception:
                pass
        super().__setitem__(key, value)


def _guard(
    array: np.ndarray, label: str, *, track_writes: bool, track_reads: bool
) -> tuple[GuardedArray, _Tracker]:
    # Preserve the supported float precisions so the dtype contract
    # (SZ505) is observable; everything else is normalized to float64.
    dt = array.dtype if array.dtype in (np.dtype(np.float32), VALUE_DTYPE) else VALUE_DTYPE
    base = np.ascontiguousarray(array, dtype=dt)
    tracker = _Tracker(
        base, label, track_writes=track_writes, track_reads=track_reads
    )
    guarded = base.view(GuardedArray)
    guarded._repro_tracker = tracker
    return guarded, tracker


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
@dataclass
class SanitizeReport:
    """Everything one instrumented execution observed."""

    diagnostics: list[Diagnostic]
    output: np.ndarray
    declared_write_set: tuple[tuple[int, int], ...]
    written_rows: int
    #: Per-factor observed gathers: label -> (accesses, distinct rows).
    gathers: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic was raised."""
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    def describe(self) -> str:
        n_err = sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)
        n_warn = len(self.diagnostics) - n_err
        parts = [
            f"sanitized execute: {self.written_rows} row(s) written within "
            f"{len(self.declared_write_set)} declared interval(s), "
            f"{n_err} error(s), {n_warn} warning(s)"
        ]
        for label, (acc, distinct) in sorted(self.gathers.items()):
            parts.append(f"  {label}: {acc} gather(s) over {distinct} distinct row(s)")
        return "\n".join(parts)


def _mask_from_intervals(
    intervals: Sequence[tuple[int, int]], n: int
) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    for lo, hi in intervals:
        mask[max(0, int(lo)) : min(n, int(hi))] = True
    return mask


def _plan_value_arrays(plan) -> list[np.ndarray]:
    """Best-effort discovery of the nonzero-value arrays a plan carries,
    for the finite-inputs precondition of SZ503/SZ504."""
    out: list[np.ndarray] = []

    def chase(obj, chain: str) -> None:
        for attr in chain.split("."):
            obj = getattr(obj, attr, None)
            if obj is None:
                return
        if isinstance(obj, np.ndarray):
            out.append(obj)

    for chain in ("splatt.vals", "base.splatt.vals", "csf.vals", "vals"):
        chase(plan, chain)
    blocked = getattr(plan, "blocked", None)
    if blocked is None:
        blocked = getattr(getattr(plan, "mb_plan", None), "blocked", None)
    if blocked is not None:
        for block in blocked.blocks:
            chase(block, "splatt.vals")
    blocks = getattr(plan, "blocks", None)
    if isinstance(blocks, list):
        for entry in blocks:
            if isinstance(entry, tuple) and len(entry) == 2:
                chase(entry[1], "vals")
    return out


def _diag(rule: str, message: str, hint: str = "", *, file: str, line: int = 0) -> Diagnostic:
    return Diagnostic(rule=rule, file=file, line=line, col=0, message=message, hint=hint)


# ----------------------------------------------------------------------
# the sanitizer
# ----------------------------------------------------------------------
def sanitized_execute(
    kernel,
    plan,
    factors: Sequence[np.ndarray],
    *,
    check_traffic: bool = True,
    file: str = "<sanitize>",
) -> SanitizeReport:
    """Run ``kernel.execute(plan, factors)`` under instrumentation and
    return the observed diagnostics (rules SZ501-SZ506).

    ``kernel`` is a :class:`~repro.kernels.base.Kernel` instance or a
    registered kernel name.  Factors are guarded for reads, the output
    buffer for writes; the kernel itself runs unmodified.
    """
    from repro.kernels.base import get_kernel

    if isinstance(kernel, str):
        kernel = get_kernel(kernel)

    mode = plan.mode
    n_rows = int(plan.shape[mode])
    rank = None
    guarded_factors: list[np.ndarray] = []
    factor_trackers: dict[int, _Tracker] = {}
    for m, f in enumerate(factors):
        if m == mode or f is None:
            guarded_factors.append(f)
            continue
        g, t = _guard(f, f"factor[{m}]", track_writes=False, track_reads=True)
        guarded_factors.append(g)
        factor_trackers[m] = t
        rank = g.shape[1] if g.ndim == 2 else rank

    inputs_finite = all(
        np.isfinite(np.asarray(f)).all()
        for m, f in enumerate(factors)
        if m != mode and f is not None
    ) and all(np.isfinite(v).all() for v in _plan_value_arrays(plan))

    # The dtype contract: kernels produce output in the shared factor
    # dtype (float32 stays float32), so the expected dtype — and the
    # sanitizer's own out-buffer — follow the guarded factors.
    factor_dtypes = {
        np.asarray(f).dtype
        for m, f in enumerate(guarded_factors)
        if m != mode and f is not None
    }
    expected_dtype = (
        factor_dtypes.pop() if len(factor_dtypes) == 1 else VALUE_DTYPE
    )
    out_buffer = np.zeros((n_rows, rank if rank else 1), dtype=expected_dtype)
    guarded_out, out_tracker = _guard(
        out_buffer, "output", track_writes=True, track_reads=False
    )

    result = kernel.execute(plan, guarded_factors, out=guarded_out)
    result_arr = np.asarray(result)

    diags: list[Diagnostic] = []

    # SZ505 — dtype drift (output must match the factor dtype).
    if result_arr.dtype != expected_dtype:
        diags.append(
            _diag(
                "SZ505",
                f"output dtype drifted to {result_arr.dtype} "
                f"(expected {np.dtype(expected_dtype).name})",
                "allocate through alloc_output with the factor dtype and "
                "keep accumulators in that precision",
                file=file,
            )
        )

    # SZ501 — writes within the declared write-set.  Nonzero output rows
    # count as writes too: np.add.at and raw ufunc stores bypass
    # __setitem__, but they cannot produce nonzeros outside their rows.
    declared = tuple(
        plan.write_set()
        if hasattr(plan, "write_set")
        else ((0, n_rows),)
    )
    declared_mask = _mask_from_intervals(declared, n_rows)
    observed_mask = out_tracker.written.copy()
    if result_arr.shape[:1] == (n_rows,):
        observed_mask |= np.any(result_arr != 0.0, axis=tuple(range(1, result_arr.ndim)))
    offending = np.flatnonzero(observed_mask & ~declared_mask)
    if offending.size:
        sample = ", ".join(str(int(r)) for r in offending[:8])
        diags.append(
            _diag(
                "SZ501",
                f"{offending.size} output row(s) written outside the declared "
                f"write-set (rows {sample}{', ...' if offending.size > 8 else ''})",
                "the kernel writes rows its plan does not own — with a "
                "parallel schedule this is a silent race",
                file=file,
            )
        )

    # SZ502 — gather bounds (factors and output fancy writes).
    for tracker in [out_tracker, *factor_trackers.values()]:
        for bad, lo, hi, n in tracker.oob_events:
            diags.append(
                _diag(
                    "SZ502",
                    f"{tracker.label}: {bad} gather index(es) outside [0, {n}) "
                    f"(observed range [{lo}, {hi}])"
                    + (
                        "; negative indices wrap silently in numpy"
                        if lo < 0
                        else ""
                    ),
                    "sparse indices must be validated before execution",
                    file=file,
                )
            )

    # SZ503/SZ504 — NaN/Inf emergence from finite inputs.
    if inputs_finite and result_arr.dtype.kind == "f":
        if np.isnan(result_arr).any():
            diags.append(
                _diag(
                    "SZ503",
                    f"{int(np.isnan(result_arr).sum())} NaN value(s) emerged "
                    "from finite inputs",
                    file=file,
                )
            )
        if np.isinf(result_arr).any():
            diags.append(
                _diag(
                    "SZ504",
                    f"{int(np.isinf(result_arr).sum())} Inf value(s) emerged "
                    "from finite inputs (overflow in accumulation?)",
                    file=file,
                )
            )

    # SZ506 — observed footprint vs the analytic traffic model.
    gathers: dict[str, tuple[int, int]] = {}
    for m, tracker in factor_trackers.items():
        gathers[f"factor[{m}]"] = (
            tracker.gather_accesses,
            int(tracker.touched.sum()),
        )
    if check_traffic and rank is not None:
        diags += _check_footprint(plan, rank, factor_trackers, file=file)

    return SanitizeReport(
        diagnostics=diags,
        output=result_arr,
        declared_write_set=declared,
        written_rows=int(out_tracker.written.sum()),
        gathers=gathers,
    )


def _check_footprint(
    plan, rank: int, factor_trackers: "dict[int, _Tracker]", *, file: str
) -> list[Diagnostic]:
    from repro.machine.traffic import predicted_footprint

    pred = predicted_footprint(plan, rank)
    out: list[Diagnostic] = []
    for m, predicted_accesses, predicted_distinct, label in (
        (plan.inner_mode, pred.b_accesses, pred.b_distinct_max, "B (inner)"),
        (plan.fiber_mode, pred.c_accesses, pred.c_distinct_max, "C (fiber)"),
    ):
        tracker = factor_trackers.get(m)
        if tracker is None or tracker.gather_accesses == 0:
            # The kernel gathered from restacked private copies (RankB
            # strips, blocked-CSF local factors) — nothing observable.
            continue
        observed = tracker.gather_accesses
        if observed != predicted_accesses:
            out.append(
                _diag(
                    "SZ506",
                    f"{label}: observed {observed} gather(s), traffic model "
                    f"predicts {predicted_accesses} "
                    f"({pred.n_strips} strip(s))",
                    "the analytic model and the kernel disagree about the "
                    "access pattern — one of them is wrong",
                    file=file,
                )
            )
        distinct = int(tracker.touched.sum())
        if distinct > predicted_distinct:
            out.append(
                _diag(
                    "SZ506",
                    f"{label}: observed {distinct} distinct row(s), traffic "
                    f"model bounds the footprint by {predicted_distinct}",
                    "block_stats under-reports the distinct rows this kernel "
                    "touches",
                    file=file,
                )
            )
    return out
