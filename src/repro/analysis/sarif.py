"""SARIF 2.1.0 rendering for ``repro check`` (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is the output format
code-scanning UIs ingest; CI uploads the file produced here through
``github/codeql-action/upload-sarif`` so findings annotate pull requests
inline.  One ``reportingDescriptor`` is emitted per rule in the catalog
(not just the rules that fired), so the scanning UI can always resolve a
result's ``ruleId`` to its summary and help text.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePath

from repro.analysis.diagnostics import RULES, Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severity -> SARIF result level.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptors() -> list[dict]:
    """Every catalog rule as a SARIF ``reportingDescriptor``."""
    descriptors = []
    for rule in RULES.values():
        descriptors.append(
            {
                "id": rule.id,
                "name": rule.id,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": _LEVELS[rule.severity]},
                "helpUri": (
                    "https://example.invalid/repro/docs/static-analysis"
                    f"#{rule.id.lower()}"
                ),
            }
        )
    return descriptors


def _artifact_uri(file: str) -> str:
    """A relative POSIX URI for ``file`` (SARIF wants forward slashes;
    code-scanning wants repo-relative paths when possible)."""
    path = Path(file)
    if path.is_absolute():
        try:
            path = path.relative_to(Path.cwd())
        except ValueError:
            pass
    return PurePath(path).as_posix()


def _result(diag: Diagnostic, rule_index: dict) -> dict:
    message = diag.message
    if diag.hint:
        message += f" (hint: {diag.hint})"
    return {
        "ruleId": diag.rule,
        "ruleIndex": rule_index[diag.rule],
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(diag.file),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, diag.line),
                        # Diagnostic columns are 0-based AST offsets;
                        # SARIF columns are 1-based.
                        "startColumn": diag.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(diags: list, files_checked: int = 0) -> dict:
    """The SARIF log object for one ``repro check`` run."""
    descriptors = _rule_descriptors()
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "https://example.invalid/repro/docs/static-analysis"
                        ),
                        "rules": descriptors,
                    }
                },
                "results": [_result(d, rule_index) for d in diags],
                "columnKind": "unicodeCodePoints",
                "properties": {"filesChecked": files_checked},
            }
        ],
    }


def render_sarif(diags: list, files_checked: int = 0) -> str:
    """Serialized SARIF log (``repro check --format sarif``)."""
    return json.dumps(to_sarif(diags, files_checked), indent=2)
