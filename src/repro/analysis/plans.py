"""Symbolic plan verifier (rules PL401-PL409).

The paper's blocking structures all make the same implicit promise: they
tile an index space **exactly once**.  MB grids must cover every tensor
mode with no gaps and no overlaps (Fig. 3a), RankB strips must tile
``[0, R)`` with register blocks covering each strip including the
remainder (Sec. V-B), medium-grain slabs must assign every nonzero to
exactly one process block, and the 4D rank-extended decomposition must
keep its layer <-> rank-strip bijection so fold reductions see the full
rank (Sec. VI).  None of that was *proved* anywhere — a bad plan from a
buggy search strategy silently produces wrong MTTKRP output.

This module proves those invariants with a small half-open interval-set
algebra (:func:`tiling_report`) and reports violations through the same
:class:`~repro.analysis.diagnostics.Diagnostic` stream as every other
``repro check`` pass:

* :func:`verify_plan` — dispatch on any plan-like object (``BlockGrid``,
  ``RankBlocking``, ``ProcessGrid``, ``MediumGrainDecomposition``, or a
  kernel ``Plan``) and return diagnostics.
* :func:`scan_source` / :func:`check_file_plans` — an AST pass that
  finds *literal* grid/partition constructions in benchmarks, examples,
  and tests, constructs them, and verifies each one statically.

Plan types are imported lazily inside the dispatcher so this module can
be imported from anywhere (including ``blocking``/``dist`` call sites)
without cycles.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.util.errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blocking.grid import BlockGrid
    from repro.blocking.rank import RankBlocking
    from repro.dist.grid import ProcessGrid
    from repro.dist.mediumgrain import MediumGrainDecomposition

#: Cap per-call diagnostics for any one failure kind so a degenerate
#: plan does not flood the report (mirrors races.MAX_REPORTED_CONFLICTS).
MAX_REPORTED = 5

#: Ranks a ``RankBlocking`` found without a rank in scope (the AST pass)
#: is probed against.  Covers tiny, register-block-boundary, non-multiple
#: and large ranks.
PROBE_RANKS = (8, 16, 100, 128, 512)


# ----------------------------------------------------------------------
# interval-set algebra
# ----------------------------------------------------------------------
def tiling_report(
    intervals: Iterable[tuple[int, int]], extent: int
) -> tuple[list[tuple[int, int]], list[tuple[int, int]], list[tuple[int, int]]]:
    """Prove a set of half-open intervals tiles ``[0, extent)`` exactly.

    Returns ``(gaps, overlaps, malformed)`` — all empty iff the proof
    succeeds.  Empty intervals (``lo == hi``) cover nothing and overlap
    nothing, so they are ignored; reversed (``hi < lo``) or out-of-range
    intervals are reported as malformed.
    """
    gaps: list[tuple[int, int]] = []
    overlaps: list[tuple[int, int]] = []
    malformed: list[tuple[int, int]] = []
    ivs: list[tuple[int, int]] = []
    for lo, hi in intervals:
        lo, hi = int(lo), int(hi)
        if hi < lo or lo < 0 or hi > extent:
            malformed.append((lo, hi))
            continue
        if lo == hi:
            continue
        ivs.append((lo, hi))
    ivs.sort()
    cursor = 0
    for lo, hi in ivs:
        if lo > cursor:
            gaps.append((cursor, lo))
        elif lo < cursor:
            overlaps.append((lo, min(cursor, hi)))
        cursor = max(cursor, hi)
    if cursor < extent:
        gaps.append((cursor, extent))
    return gaps, overlaps, malformed


def boundaries_to_intervals(boundaries: Sequence[int]) -> list[tuple[int, int]]:
    """Consecutive-pair intervals of a boundary vector."""
    b = [int(x) for x in boundaries]
    return [(b[i], b[i + 1]) for i in range(len(b) - 1)]


def _diag(
    rule: str,
    message: str,
    hint: str = "",
    *,
    file: str = "<plan>",
    line: int = 0,
    col: int = 0,
) -> Diagnostic:
    return Diagnostic(rule=rule, file=file, line=line, col=col, message=message, hint=hint)


def _report_tiling(
    intervals: Iterable[tuple[int, int]],
    extent: int,
    *,
    gap_rule: str,
    overlap_rule: str,
    what: str,
    gap_hint: str = "",
    overlap_hint: str = "",
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """Run :func:`tiling_report` and convert failures to diagnostics."""
    gaps, overlaps, malformed = tiling_report(intervals, extent)
    out: list[Diagnostic] = []
    for lo, hi in gaps[:MAX_REPORTED]:
        out.append(
            _diag(
                gap_rule,
                f"{what}: indices [{lo}, {hi}) are covered by no interval",
                gap_hint,
                file=file,
                line=line,
            )
        )
    for lo, hi in overlaps[:MAX_REPORTED]:
        out.append(
            _diag(
                overlap_rule,
                f"{what}: indices [{lo}, {hi}) are covered more than once",
                overlap_hint,
                file=file,
                line=line,
            )
        )
    for lo, hi in malformed[:MAX_REPORTED]:
        out.append(
            _diag(
                overlap_rule,
                f"{what}: interval [{lo}, {hi}) is malformed for extent {extent}"
                " (reversed or out of range)",
                overlap_hint,
                file=file,
                line=line,
            )
        )
    return out


# ----------------------------------------------------------------------
# structure verifiers
# ----------------------------------------------------------------------
def verify_boundaries(
    boundaries: Sequence[int],
    extent: int,
    what: str,
    *,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL401/PL402 for one mode's boundary vector."""
    return _report_tiling(
        boundaries_to_intervals(boundaries),
        extent,
        gap_rule="PL401",
        overlap_rule="PL402",
        what=what,
        gap_hint="boundaries must start at 0, end at the mode extent, and increase",
        overlap_hint="boundaries must be strictly increasing",
        file=file,
        line=line,
    )


def verify_grid(
    grid: "BlockGrid", *, file: str = "<plan>", line: int = 0
) -> list[Diagnostic]:
    """PL401/PL402: every mode of an MB grid tiles its extent exactly."""
    out: list[Diagnostic] = []
    for m, bounds in enumerate(grid.boundaries):
        out += verify_boundaries(
            bounds, grid.shape[m], f"grid mode {m}", file=file, line=line
        )
    return out


def verify_strips(
    strips: Sequence[tuple[int, int]],
    rank: int,
    *,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL403: rank strips must tile ``[0, rank)``."""
    return _report_tiling(
        strips,
        rank,
        gap_rule="PL403",
        overlap_rule="PL403",
        what=f"rank strips over R={rank}",
        gap_hint="strips must cover every rank column exactly once",
        overlap_hint="strips must cover every rank column exactly once",
        file=file,
        line=line,
    )


def verify_rank_blocking(
    rb: "RankBlocking",
    rank: int,
    *,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL403/PL404 for a ``RankBlocking`` at a concrete rank.

    Proves the strip set tiles ``[0, rank)`` and that each strip's
    register-block count covers the strip width including the remainder
    block (``(n-1)*reg < width <= n*reg``).
    """
    try:
        strips = rb.strips(rank)
    except ReproError as exc:
        return [
            _diag(
                "PL403",
                f"RankBlocking cannot produce strips for R={rank}: {exc}",
                "n_blocks/block_cols must be consistent with the rank",
                file=file,
                line=line,
            )
        ]
    out = verify_strips(strips, rank, file=file, line=line)
    reg = rb.register_block
    for lo, hi in strips:
        width = hi - lo
        if width <= 0:
            continue
        n = rb.register_blocks(width)
        covered = [(lo + i * reg, lo + min((i + 1) * reg, width)) for i in range(n)]
        gaps, overlaps, malformed = tiling_report(
            [(a - lo, b - lo) for a, b in covered], width
        )
        if gaps or overlaps or malformed:
            out.append(
                _diag(
                    "PL404",
                    f"strip [{lo}, {hi}): {n} register block(s) of width {reg} "
                    f"do not cover the {width}-column strip "
                    f"(gaps={gaps[:2]}, overlaps={overlaps[:2]})",
                    "register_blocks must be ceil(strip_width / register_block)",
                    file=file,
                    line=line,
                )
            )
    return out


def verify_thread_ranges(
    ranges: Sequence[tuple[int, int]],
    extent: int,
    *,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL407: an explicit ``thread_ranges`` override must tile the output
    rows exactly once — a gap silently drops rows from the predicted
    (and, on real hardware, computed) output; an overlap is a race."""
    return _report_tiling(
        ranges,
        extent,
        gap_rule="PL407",
        overlap_rule="PL407",
        what=f"thread_ranges over {extent} output rows",
        gap_hint="every output row must belong to exactly one thread",
        overlap_hint="every output row must belong to exactly one thread",
        file=file,
        line=line,
    )


def verify_process_grid(
    grid: "ProcessGrid",
    rank: int | None = None,
    *,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL408: layer <-> (a, b, c, t) bijection and, when a rank is in
    scope, rank-strip tiling of the t-way rank extension."""
    out: list[Diagnostic] = []
    seen: set[tuple[int, int, int, int]] = set()
    for r in range(grid.n_ranks):
        coords = grid.coords(r)
        if coords in seen:
            out.append(
                _diag(
                    "PL408",
                    f"grid coordinates {coords} map to more than one rank",
                    file=file,
                    line=line,
                )
            )
        seen.add(coords)
        back = grid.rank_of(*coords)
        if back != r:
            out.append(
                _diag(
                    "PL408",
                    f"rank {r} -> coords {coords} -> rank {back}: "
                    "coords/rank_of are not inverse",
                    file=file,
                    line=line,
                )
            )
        if len(out) >= MAX_REPORTED:
            break
    if rank is not None:
        out += verify_rank_extension(
            grid.rank_groups, rank, file=file, line=line
        )
    return out


def verify_rank_extension(
    rank_groups: int,
    rank: int,
    *,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL408: the t-way rank extension must split ``[0, rank)`` into
    ``rank_groups`` disjoint strips whose union is the full rank — that
    is what makes the final layer allgather a complete fold."""
    from repro.blocking.rank import RankBlocking

    if rank_groups > rank:
        return [
            _diag(
                "PL408",
                f"rank_groups={rank_groups} exceeds rank {rank}: some layers "
                "would own an empty strip and the allgather under-fills A",
                "use at most `rank` rank groups",
                file=file,
                line=line,
            )
        ]
    try:
        strips = RankBlocking(n_blocks=rank_groups).strips(rank)
    except ReproError as exc:
        return [
            _diag(
                "PL408",
                f"rank extension t={rank_groups} cannot strip R={rank}: {exc}",
                file=file,
                line=line,
            )
        ]
    diags = verify_strips(strips, rank, file=file, line=line)
    # Re-label strip failures as fold-completeness findings.
    return [
        _diag(
            "PL408",
            f"rank extension t={rank_groups}: {d.message}",
            "every rank column must be computed by exactly one layer",
            file=file,
            line=line,
        )
        for d in diags
    ]


def verify_decomposition(
    decomp: "MediumGrainDecomposition",
    rank: int | None = None,
    *,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL405/PL406 (and PL408 for 4D grids) for a medium-grain
    decomposition.

    * PL405 — per-mode chunk boundaries tile the tensor shape, every
      grid coordinate has a block, and each block's bounds equal the
      chunks its coordinates select.
    * PL406 — every nonzero a block holds lies inside the block's
      bounds; with disjoint bounds (PL405) and per-process nnz equal to
      the total, this proves the nonzero -> block map is a bijection.
    * PL408 — for 4D grids (``rank_groups > 1``) with a rank in scope,
      the rank extension tiles ``[0, rank)``.
    """
    out: list[Diagnostic] = []
    shape = decomp.tensor_shape
    q, r, s = decomp.grid.dims
    for mode in range(3):
        axis = decomp.axis_of_mode(mode)
        n_chunks = decomp.grid.dims[axis]
        bounds = decomp.boundaries[mode]
        if len(bounds) != n_chunks + 1:
            out.append(
                _diag(
                    "PL405",
                    f"mode {mode}: {len(bounds)} boundary entries for "
                    f"{n_chunks} chunks (need n_chunks + 1)",
                    file=file,
                    line=line,
                )
            )
            continue
        out += _report_tiling(
            boundaries_to_intervals(bounds),
            shape[mode],
            gap_rule="PL405",
            overlap_rule="PL405",
            what=f"decomposition mode {mode}",
            file=file,
            line=line,
        )
    expected = {(a, b, c) for a in range(q) for b in range(r) for c in range(s)}
    have = set(decomp.blocks)
    for coords in sorted(expected - have)[:MAX_REPORTED]:
        out.append(
            _diag(
                "PL405",
                f"grid position {coords} has no block",
                "materialize empty blocks so every process exists",
                file=file,
                line=line,
            )
        )
    for coords in sorted(have - expected)[:MAX_REPORTED]:
        out.append(
            _diag(
                "PL405",
                f"block at {coords} is outside the {q}x{r}x{s} grid",
                file=file,
                line=line,
            )
        )
    total_nnz = 0
    reported_406 = 0
    for coords in sorted(have & expected):
        block = decomp.blocks[coords]
        chunk_for_axis = coords
        for mode in range(3):
            axis = decomp.axis_of_mode(mode)
            want = decomp.mode_chunk(mode, chunk_for_axis[axis])
            if tuple(block.bounds[mode]) != want:
                out.append(
                    _diag(
                        "PL405",
                        f"block {coords} mode-{mode} bounds "
                        f"{tuple(block.bounds[mode])} != chunk {want}",
                        file=file,
                        line=line,
                    )
                )
        sub = block.tensor
        total_nnz += sub.nnz
        if sub.nnz and reported_406 < MAX_REPORTED:
            for mode in range(3):
                lo, hi = block.bounds[mode]
                idx = sub.indices[:, mode]
                bad = int(((idx < lo) | (idx >= hi)).sum())
                if bad:
                    out.append(
                        _diag(
                            "PL406",
                            f"block {coords}: {bad} nonzero(s) fall outside "
                            f"its mode-{mode} bounds [{lo}, {hi}) — they are "
                            "owned by (at least) two blocks or by none",
                            file=file,
                            line=line,
                        )
                    )
                    reported_406 += 1
    if decomp.grid.is_4d and rank is not None:
        out += verify_rank_extension(
            decomp.grid.rank_groups, rank, file=file, line=line
        )
    if decomp.grid.is_4d:
        out += verify_process_grid(decomp.grid, file=file, line=line)
    return out


def verify_capacity(
    plan,
    rank: int,
    machine,
    *,
    target_level: str | None = None,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """PL409 (warning): flag a plan whose worst-block factor working set
    exceeds the cache level the blocking claims to target.

    The working set of one block at one rank strip is the distinct
    factor rows it touches times the strip width (Sec. IV's premise:
    blocking exists to make exactly this fit).  The target defaults to
    the machine's fast tier (``fast_cache_bytes``) and honours the same
    residency fraction the traffic model uses.
    """
    from repro.machine.traffic import _FACTOR_CACHE_FRACTION

    if target_level is None:
        budget = machine.fast_cache_bytes
        level_name = machine.caches[-2].name if len(machine.caches) >= 2 else machine.caches[-1].name
    else:
        matches = [c for c in machine.caches if c.name == target_level]
        if not matches:
            raise ConfigError(
                f"machine has no cache level {target_level!r}; "
                f"known: {[c.name for c in machine.caches]}"
            )
        budget = matches[0].capacity_bytes
        level_name = matches[0].name
    budget = int(budget * _FACTOR_CACHE_FRACTION)
    rb = getattr(plan, "rank_blocking", None)
    if rb is not None:
        strip_cols = max(hi - lo for lo, hi in rb.strips(rank))
    else:
        strip_cols = rank
    itemsize = 8  # VALUE_DTYPE is float64
    worst_rows = 0
    worst_coords = None
    for st in plan.block_stats():
        rows = st.distinct_out + st.distinct_inner + st.distinct_fiber
        if rows > worst_rows:
            worst_rows = rows
            worst_coords = st.coords
    ws_bytes = worst_rows * strip_cols * itemsize
    if ws_bytes > budget:
        return [
            _diag(
                "PL409",
                f"block {worst_coords}: factor working set "
                f"{ws_bytes / 1024:.0f} KiB ({worst_rows} rows x {strip_cols} "
                f"cols) exceeds the {level_name} budget {budget / 1024:.0f} KiB",
                "increase block counts or narrow the rank strips",
                file=file,
                line=line,
            )
        ]
    return []


# ----------------------------------------------------------------------
# dispatcher
# ----------------------------------------------------------------------
def verify_plan(
    obj,
    *,
    rank: int | None = None,
    machine=None,
    extent: int | None = None,
    target_level: str | None = None,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """Verify any plan-like object and return its diagnostics.

    Dispatches on type: ``BlockGrid`` (PL401/PL402), ``RankBlocking``
    (PL403/PL404 — needs ``rank``), ``ProcessGrid`` (PL408),
    ``MediumGrainDecomposition`` (PL405/PL406/PL408), a kernel ``Plan``
    (its grid, rank blocking, and — with ``machine`` and ``rank`` —
    PL409 capacity), or a plain sequence of ``(lo, hi)`` ranges with
    ``extent`` (PL407 thread ranges).  An empty list is the proof of
    soundness.
    """
    from repro.blocking.grid import BlockGrid
    from repro.blocking.rank import RankBlocking
    from repro.dist.grid import ProcessGrid
    from repro.dist.mediumgrain import MediumGrainDecomposition
    from repro.kernels.base import Plan

    if isinstance(obj, BlockGrid):
        return verify_grid(obj, file=file, line=line)
    if isinstance(obj, RankBlocking):
        if rank is None:
            return verify_rank_blocking_probes(obj, file=file, line=line)
        return verify_rank_blocking(obj, rank, file=file, line=line)
    if isinstance(obj, ProcessGrid):
        return verify_process_grid(obj, rank, file=file, line=line)
    if isinstance(obj, MediumGrainDecomposition):
        return verify_decomposition(obj, rank, file=file, line=line)
    if isinstance(obj, Plan):
        out: list[Diagnostic] = []
        blocked = getattr(obj, "blocked", None)
        if blocked is None:
            mb = getattr(obj, "mb_plan", None)
            blocked = getattr(mb, "blocked", None)
        if blocked is not None:
            out += verify_grid(blocked.grid, file=file, line=line)
        rb = getattr(obj, "rank_blocking", None)
        if rb is not None:
            if rank is not None:
                out += verify_rank_blocking(rb, rank, file=file, line=line)
            else:
                out += verify_rank_blocking_probes(rb, file=file, line=line)
        if machine is not None and rank is not None:
            out += verify_capacity(
                obj, rank, machine, target_level=target_level, file=file, line=line
            )
        return out
    if extent is not None and _looks_like_ranges(obj):
        return verify_thread_ranges(obj, extent, file=file, line=line)
    raise ConfigError(
        f"verify_plan does not know how to verify {type(obj).__name__}"
        + ("" if extent is None else " (with extent)")
    )


def _looks_like_ranges(obj) -> bool:
    try:
        return all(len(pair) == 2 for pair in obj)
    except TypeError:
        return False


def verify_rank_blocking_probes(
    rb: "RankBlocking",
    *,
    ranks: Sequence[int] = PROBE_RANKS,
    file: str = "<plan>",
    line: int = 0,
) -> list[Diagnostic]:
    """Verify a ``RankBlocking`` with no rank in scope against a probe
    set of ranks, skipping ranks the blocking is not defined for."""
    out: list[Diagnostic] = []
    for r in ranks:
        if rb.n_blocks is not None and rb.n_blocks > r:
            continue
        out += verify_rank_blocking(rb, r, file=file, line=line)
    return out


# ----------------------------------------------------------------------
# AST pass over literal constructions
# ----------------------------------------------------------------------
_CONSTRUCTOR_RULE = {
    "BlockGrid": "PL401",
    "RankBlocking": "PL403",
    "ProcessGrid": "PL408",
}


def _literal(node: ast.expr):
    """``ast.literal_eval`` that signals failure with a sentinel."""
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError, TypeError):
        return _SKIP


_SKIP = object()


def _raises_spans(tree: ast.AST) -> list[tuple[int, int]]:
    """Line spans of ``with pytest.raises(...)`` bodies — literal plan
    constructions there are *meant* to be invalid."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            name = ""
            if isinstance(expr, ast.Call):
                func = expr.func
                name = getattr(func, "attr", "") or getattr(func, "id", "")
            if name == "raises":
                end = getattr(node, "end_lineno", node.lineno) or node.lineno
                spans.append((node.lineno, end))
                break
    return spans


def scan_source(
    source: str, filename: str, tree: "ast.Module | None" = None
) -> list[Diagnostic]:
    """Find literal ``BlockGrid(...)`` / ``BlockGrid.from_boundaries(...)``
    / ``RankBlocking(...)`` / ``ProcessGrid(...)`` constructions in a
    source file, construct each, and verify it.  ``tree`` optionally
    reuses the runner's shared parse of the module.

    Calls whose arguments are not literals are skipped (a dynamic plan
    is the tuner's job to verify), as are calls inside
    ``with pytest.raises(...)`` blocks (deliberately invalid fixtures).
    """
    try:
        if tree is None:
            tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return []
    spans = _raises_spans(tree)
    out: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        ctor: str | None = None
        factory = False
        if isinstance(func, ast.Name) and func.id in _CONSTRUCTOR_RULE:
            ctor = func.id
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "from_boundaries"
            and isinstance(func.value, ast.Name)
            and func.value.id == "BlockGrid"
        ):
            ctor = "BlockGrid"
            factory = True
        if ctor is None:
            continue
        if any(lo <= node.lineno <= hi for lo, hi in spans):
            continue
        args = [_literal(a) for a in node.args]
        kwargs = {k.arg: _literal(k.value) for k in node.keywords if k.arg}
        if any(a is _SKIP for a in args) or any(
            v is _SKIP for v in kwargs.values()
        ):
            continue
        out += _verify_literal(
            ctor, factory, args, kwargs, file=filename, line=node.lineno
        )
    return out


def _verify_literal(
    ctor: str,
    factory: bool,
    args: list,
    kwargs: dict,
    *,
    file: str,
    line: int,
) -> list[Diagnostic]:
    from repro.blocking.grid import BlockGrid
    from repro.blocking.rank import RankBlocking
    from repro.dist.grid import ProcessGrid

    try:
        if ctor == "BlockGrid" and factory:
            obj = BlockGrid.from_boundaries(*args, **kwargs)
        elif ctor == "BlockGrid":
            obj = BlockGrid(*args, **kwargs)
        elif ctor == "RankBlocking":
            obj = RankBlocking(*args, **kwargs)
        else:
            obj = ProcessGrid(*args, **kwargs)
    except ReproError as exc:
        return [
            _diag(
                _CONSTRUCTOR_RULE[ctor],
                f"literal {ctor} construction is invalid: {exc}",
                file=file,
                line=line,
            )
        ]
    except TypeError:
        return []  # signature mismatch (e.g. shadowed name) — not a plan bug
    return verify_plan(obj, file=file, line=line)


def check_file_plans(path: str) -> list[Diagnostic]:
    """Run :func:`scan_source` over one file on disk."""
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    except OSError:
        return []
    return scan_source(source, path)
