"""Interprocedural dtype & effect dataflow analysis (rules DF601-DF612).

PRs 4-5 made the float32 precision contract, the parallel executor, and
the tracer first-class, but enforced them only at *runtime*: SZ505
catches dtype drift when a test happens to execute the drifting path,
``verify_safe`` vets a schedule when it is launched, and the tracer's
overhead gate needs a benchmark run.  This pass proves the same three
contracts *statically*, before any code executes:

**Dtype lattice (DF601-DF605).**  A six-point lattice is propagated
through assignments, calls, and NumPy allocations::

    BOTTOM < {F32, F64, FACTOR} < MIXED < UNKNOWN

``FACTOR`` marks values whose precision follows the runtime factor/value
dtype (the sanctioned state: ``check_factors`` / ``factor_dtype`` /
``value_dtype_of`` results and anything derived from them); ``F32``/
``F64`` mark values pinned to a literal precision; ``MIXED`` is the
error state two distinct concrete precisions join into; ``UNKNOWN`` is
top (no claim, never flagged).  On precision-contract paths (files under
``kernels``/``cpd``/``exec``/``tune``/``machine``/``dist``, plus every
kernel method wherever it lives) the pass flags literal
``dtype=np.float64`` allocations (DF601), dtype-less allocations whose
float64 default silently widens float32 pipelines (DF602), widening
``.astype`` casts of factor-derived values (DF603), and mixed-precision
binops (DF604 when both sides are locally evident, DF605 when one side
arrived through a cross-function summary — the interprocedural variant).

**The VALUE_DTYPE alias (DF612).**  ``VALUE_DTYPE`` is the sanctioned
float64 *default*, so allocating with it is normally silent — but it is
still a literal-float64 sink, and the original ``repro.dist`` upcast bug
hid behind exactly that: factor-derived values flowed into
``dtype=VALUE_DTYPE`` allocations.  The lattice therefore carries a
``pinned`` provenance bit on values resolved from the ``VALUE_DTYPE``
constant, and DF612 fires when (a) a pinned-float64 allocation happens
while a factor-derived value is live in the function, (b) a pinned
``.astype``/cast widens a factor-derived value, or (c) a pinned-float64
value is bound to ``factors``/``factor``.  Derive the dtype with
``value_dtype_of`` / ``factor_dtype`` instead.

**Write effects (DF606-DF608).**  Worker-task functions (anything passed
to a pool's ``submit``) and kernel ``prepare``/``execute`` bodies must
write only through their own arguments — their partitioned output view —
never through module-level or closure state (DF606, including writes
reached through a summarized helper).  Process-backend tasks are pickled
into a child: capturing module-level mutable state is a silent
divergence (DF607), and submitting lambdas/nested functions or known
unpicklable arguments fails at runtime on some platforms only (DF608).

**Tracer placement (DF609-DF610).**  The tracer's design forbids
per-nonzero emission (its disabled-path overhead gate is ≤5% *because*
hooks run per call/block).  Emission inside a per-element loop is DF609
anywhere; emission inside *any* loop of a kernel body is DF610 —
counters there must be accumulated per call, as ``_traced_execute``
does.

**Registration gate (DF611).**  :func:`enforce_kernel_dataflow` runs the
same checks over a ``Kernel`` subclass's ``prepare``/``execute`` source
at class-definition / registration time and raises
:class:`~repro.util.errors.RegistrationError` on any error-severity
finding, so a contract-violating backend cannot enter the registry.
Opt out with ``REPRO_DATAFLOW_VET=0`` (or per class:
``class K(Kernel, dataflow_vet=False)``), e.g. for deliberately broken
kernels in tests.

Run it with ``repro check --dataflow``; suppress individual findings
with ``# repro: noqa[DF601]`` (suppressions are honoured by the
registration gate too).
"""

from __future__ import annotations

import ast
import enum
import functools
import inspect
import os
import textwrap
import weakref
from dataclasses import dataclass, field, replace
from pathlib import PurePath
from typing import Iterable, Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    suppressions_for_source,
)
from repro.analysis.hotpath import _dotted_chain, _per_element_index_var

#: Directories whose files are precision-contract paths for the dtype
#: rules (DF601-DF605).  Kernel-class methods are in scope regardless.
DTYPE_SCOPE_DIRS: frozenset = frozenset(
    {"kernels", "cpd", "exec", "tune", "machine", "dist"}
)

#: Environment opt-out for the registration-time gate (DF611): set to
#: ``0`` / ``false`` / ``off`` to define/register kernels unvetted.
VET_ENV_VAR = "REPRO_DATAFLOW_VET"


def is_dtype_scope(file: str) -> bool:
    """True when ``file`` lies on a precision-contract path."""
    return bool(DTYPE_SCOPE_DIRS.intersection(PurePath(file).parts[:-1]))


def is_kernel_file(file: str) -> bool:
    """True for modules under a ``kernels`` directory (DF610 scope)."""
    return "kernels" in PurePath(file).parts[:-1]


# ---------------------------------------------------------------------
# The dtype lattice
# ---------------------------------------------------------------------
class DType(enum.Enum):
    """One point of the precision lattice."""

    BOTTOM = "bottom"  # no information yet (identity of join)
    F32 = "f32"  # pinned to float32 by a literal
    F64 = "f64"  # pinned to float64 by a literal / numpy default
    FACTOR = "factor"  # follows the runtime factor/value dtype
    MIXED = "mixed"  # two distinct concrete precisions met (error state)
    UNKNOWN = "unknown"  # top: no claim is made

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The three incomparable concrete points between BOTTOM and MIXED.
CONCRETE = frozenset({DType.F32, DType.F64, DType.FACTOR})


def join(a: DType, b: DType) -> DType:
    """Least upper bound of two lattice points.

    Commutative, associative, idempotent (property-tested); BOTTOM is
    the identity, UNKNOWN absorbs, and any two distinct points of
    ``{F32, F64, FACTOR, MIXED}`` join to MIXED.
    """
    if a is b:
        return a
    if a is DType.UNKNOWN or b is DType.UNKNOWN:
        return DType.UNKNOWN
    if a is DType.BOTTOM:
        return b
    if b is DType.BOTTOM:
        return a
    return DType.MIXED


def join_all(values: Iterable[DType]) -> DType:
    """Fold :func:`join` over ``values`` (BOTTOM for an empty iterable)."""
    return functools.reduce(join, values, DType.BOTTOM)


@dataclass(frozen=True)
class Value:
    """A lattice point plus its provenance: ``via_call`` marks values
    that flowed through a cross-function summary (DF605 vs DF604);
    ``pinned`` marks float64 resolved from the ``VALUE_DTYPE`` module
    constant (the DF612 sink)."""

    dtype: DType = DType.UNKNOWN
    via_call: bool = False
    pinned: bool = False


UNKNOWN = Value()
BOTTOM = Value(DType.BOTTOM)
FACTOR = Value(DType.FACTOR)
PINNED_F64 = Value(DType.F64, pinned=True)


def join_values(a: Value, b: Value) -> Value:
    return Value(join(a.dtype, b.dtype), a.via_call or b.via_call, a.pinned or b.pinned)


def is_pinned_f64(v: Value) -> bool:
    """True for float64 values that trace back to ``VALUE_DTYPE``."""
    return v.dtype is DType.F64 and v.pinned


# ---------------------------------------------------------------------
# Function summaries (the interprocedural layer)
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class FunctionSummary:
    """What one scanned function looks like from a call site."""

    name: str
    file: str
    line: int
    #: Join of the function's return expressions under seeded params.
    returns: DType = DType.UNKNOWN
    #: Module-level names the function (transitively) writes through.
    global_writes: tuple[str, ...] = ()


#: Functions with built-in meaning; never shadowed by summaries.
_FACTOR_CALLS = frozenset({"check_factors", "factor_dtype", "value_dtype_of"})
_ALLOCATORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}
_LIKE_ALLOCATORS = frozenset({"zeros_like", "empty_like", "ones_like", "full_like"})
_COERCERS = frozenset({"array", "asarray", "asanyarray", "ascontiguousarray"})
_TRACER_EMITTERS = frozenset({"span", "count", "metric", "add_span"})
_UNPICKLABLE_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "open"})


def _classify_dtype_literal(node: "ast.expr | None") -> "DType | None":
    """F32/F64 when ``node`` literally spells a float dtype, else None."""
    if node is None:
        return None
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id in ("np", "numpy"):
            if node.attr in ("float64", "double"):
                return DType.F64
            if node.attr in ("float32", "single"):
                return DType.F32
    if isinstance(node, ast.Name) and node.id == "float":
        return DType.F64
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in ("float64", "f8", "double", "d"):
            return DType.F64
        if node.value in ("float32", "f4", "single", "f"):
            return DType.F32
    return None


def _dtype_argument(call: ast.Call, pos: "int | None") -> "ast.expr | None":
    """The dtype argument of an allocator/coercer call, if present."""
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    if pos is not None and len(call.args) > pos:
        return call.args[pos]
    return None


def _assigned_names(node: ast.AST) -> set[str]:
    """Every name bound anywhere inside ``node``: assignments, loop and
    with targets, walrus, comprehension targets, imports, nested defs,
    exception aliases, function parameters.

    Store-context only — the root of ``STATE[k] = 1`` is a *load* of
    ``STATE`` (a write through it, not a binding of it), which is
    exactly the distinction the effect rules hinge on.
    """
    names: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and isinstance(n.ctx, (ast.Store, ast.Del)):
            names.add(n.id)
        elif isinstance(n, (ast.Import, ast.ImportFrom)):
            for alias in n.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(n.name)
        elif isinstance(n, ast.ExceptHandler) and n.name:
            names.add(n.name)
        elif isinstance(n, ast.arg):
            names.add(n.arg)
    return names


def _param_names(fn: ast.FunctionDef) -> list[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _store_root(target: ast.expr) -> "str | None":
    """Root name of a subscript/attribute store target
    (``plan.scratch[i]`` -> ``plan``), or None for other shapes."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


# ---------------------------------------------------------------------
# Module-shape extraction
# ---------------------------------------------------------------------
@dataclass
class ModuleInfo:
    """Structural facts about one module the per-function passes need."""

    file: str
    tree: ast.Module
    #: Names bound at module level (assignments + imports + defs).
    global_names: set[str] = field(default_factory=set)
    #: Module-level names bound to mutable containers.
    mutable_globals: set[str] = field(default_factory=set)
    #: Module-level function-def names.
    function_names: set[str] = field(default_factory=set)
    #: Worker-task function name -> pool context (process/thread/any).
    worker_context: dict = field(default_factory=dict)
    #: ``(call, context, enclosing_fn)`` for every ``pool.submit`` site.
    submit_sites: list = field(default_factory=list)
    #: ``(fn_def, class_name)`` for kernel-class prepare/execute bodies.
    kernel_methods: list = field(default_factory=list)
    #: Every analyzable function: ``(fn_def, kernel_class_or_None)``.
    functions: list = field(default_factory=list)


def _is_mutable_ctor(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        f = node.func
        name = f.id if isinstance(f, ast.Name) else (f.attr if isinstance(f, ast.Attribute) else "")
        return name in ("list", "dict", "set", "bytearray", "defaultdict", "deque", "OrderedDict", "Counter")
    return False


def _kernel_base(cls: ast.ClassDef) -> bool:
    """A class is kernel-shaped when any base's last component ends with
    ``Kernel`` (covers ``Kernel``, ``base.Kernel``, ``SplattKernel``)."""
    for b in cls.bases:
        last = b.id if isinstance(b, ast.Name) else (b.attr if isinstance(b, ast.Attribute) else "")
        if last.endswith("Kernel"):
            return True
    return False


def _pool_context(call: ast.expr) -> "str | None":
    """``process``/``thread`` for a ``*PoolExecutor(...)`` constructor."""
    if not isinstance(call, ast.Call):
        return None
    f = call.func
    name = f.id if isinstance(f, ast.Name) else (f.attr if isinstance(f, ast.Attribute) else "")
    if name == "ProcessPoolExecutor":
        return "process"
    if name == "ThreadPoolExecutor":
        return "thread"
    return None


def module_info(tree: ast.Module, file: str) -> ModuleInfo:
    info = ModuleInfo(file=file, tree=tree)
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                for sub in ast.walk(t):
                    if isinstance(sub, ast.Name):
                        info.global_names.add(sub.id)
                        if node.value is not None and _is_mutable_ctor(node.value):
                            info.mutable_globals.add(sub.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                info.global_names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.global_names.add(node.name)
            info.function_names.add(node.name)
            info.functions.append((node, None))
        elif isinstance(node, ast.ClassDef):
            info.global_names.add(node.name)
            kernel = _kernel_base(node)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls_name = node.name if kernel else None
                    info.functions.append((item, cls_name))
                    if kernel and item.name in ("prepare", "execute"):
                        info.kernel_methods.append((item, node.name))

    # Pool contexts: `with ProcessPoolExecutor(...) as pool:` binds a
    # pool name whose .submit sites (and their callables) we record.
    for fn, _cls in info.functions:
        local_defs = {
            n.name
            for n in ast.walk(fn)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not fn
        }
        for node in ast.walk(fn):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                ctx = _pool_context(item.context_expr)
                if ctx is None or not isinstance(item.optional_vars, ast.Name):
                    continue
                pool_name = item.optional_vars.id
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "submit"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == pool_name
                    ):
                        info.submit_sites.append((sub, ctx, local_defs))
                        if sub.args and isinstance(sub.args[0], ast.Name):
                            name = sub.args[0].id
                            prev = info.worker_context.get(name)
                            info.worker_context[name] = (
                                ctx if prev in (None, ctx) else "any"
                            )
    return info


# ---------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------
def _direct_global_writes(fn: ast.FunctionDef) -> set[str]:
    """Names the function stores through without binding them locally
    (subscript/attribute stores whose root is a free variable, plus
    assignments to ``global``-declared names)."""
    local = set(_param_names(fn)) | _assigned_names(fn)
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    writes: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Name) and t.id in declared_global:
                    writes.add(t.id)
                elif isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = _store_root(t)
                    if root is not None and root not in local:
                        writes.add(root)
    return writes


def build_summaries(
    modules: Sequence[ModuleInfo], rounds: int = 2
) -> dict:
    """Two-round fixpoint over every scanned function: round one infers
    return dtypes and direct global writes with an empty table, round
    two re-infers with round one's table so helper-of-helper returns and
    transitive global writes propagate."""
    summaries: dict = {}
    for _ in range(max(1, rounds)):
        next_table: dict = {}
        for info in modules:
            for fn, cls_name in info.functions:
                analyzer = _DtypeAnalyzer(
                    info,
                    summaries,
                    diags=None,
                    check_dtype=False,
                    file=info.file,
                )
                returns = analyzer.run(fn)
                writes = set(_direct_global_writes(fn))
                # Transitive effects: calling a global-writing helper is
                # itself a global write.
                for node in ast.walk(fn):
                    if isinstance(node, ast.Call):
                        name = _call_last_name(node)
                        s = summaries.get(name)
                        if s is not None:
                            writes.update(s.global_writes)
                summary = FunctionSummary(
                    name=fn.name,
                    file=info.file,
                    line=fn.lineno,
                    returns=returns,
                    global_writes=tuple(sorted(writes)),
                )
                prior = next_table.get(fn.name)
                if prior is not None:
                    # Same bare name in several modules: keep the join so
                    # call resolution stays conservative.
                    summary = FunctionSummary(
                        name=fn.name,
                        file=prior.file,
                        line=prior.line,
                        returns=join(prior.returns, summary.returns),
                        global_writes=tuple(
                            sorted(set(prior.global_writes) | writes)
                        ),
                    )
                next_table[fn.name] = summary
        summaries = next_table
    return summaries


def _call_last_name(call: ast.Call) -> "str | None":
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


# ---------------------------------------------------------------------
# Per-function dtype propagation (DF601-DF605)
# ---------------------------------------------------------------------
class _DtypeAnalyzer:
    """Abstract interpretation of one function body over the lattice.

    With ``diags=None`` the analyzer only computes the return value's
    lattice point (summary collection); with a list it also emits
    diagnostics when ``check_dtype`` is set.
    """

    def __init__(
        self,
        module: "ModuleInfo | None",
        summaries: dict,
        diags: "list[Diagnostic] | None",
        *,
        check_dtype: bool,
        file: str,
    ) -> None:
        self.module = module
        self.summaries = summaries
        self.diags = diags
        self.check_dtype = check_dtype and diags is not None
        self.file = file
        self.env: dict[str, Value] = {}
        self.ret = DType.BOTTOM

    # -- entry --------------------------------------------------------
    def run(self, fn: ast.FunctionDef) -> DType:
        for name in _param_names(fn):
            self.env[name] = FACTOR if name in ("factors", "factor") else UNKNOWN
        self.exec_block(fn.body)
        return self.ret

    # -- diagnostics --------------------------------------------------
    def _diag(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        if self.check_dtype:
            self.diags.append(
                Diagnostic(
                    rule,
                    self.file,
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0),
                    message,
                    hint=hint,
                )
            )

    # -- statements ---------------------------------------------------
    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def _merge(self, other_env: dict) -> None:
        for name in set(self.env) | set(other_env):
            a = self.env.get(name, BOTTOM)
            b = other_env.get(name, BOTTOM)
            self.env[name] = join_values(a, b)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            lhs = self.eval(stmt.target)
            rhs = self.eval(stmt.value)
            self._check_binop(stmt, lhs, rhs)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = join_values(lhs, rhs)
        elif isinstance(stmt, ast.Return):
            v = self.eval(stmt.value) if stmt.value is not None else BOTTOM
            self.ret = join(self.ret, v.dtype)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Elements of a container inherit the container's point.
            v = self.eval(stmt.iter)
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    self.env[sub.id] = v
            snapshot = dict(self.env)
            self.exec_block(stmt.body)
            self._merge(snapshot)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            snapshot = dict(self.env)
            self.exec_block(stmt.body)
            self._merge(snapshot)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            self.exec_block(stmt.body)
            taken = self.env
            self.env = before
            self.exec_block(stmt.orelse)
            self._merge(taken)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                v = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            self.env[sub.id] = v
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        # Nested defs/classes, pass, raise, etc.: no dtype flow tracked.

    def _factor_live(self) -> bool:
        """A factor-derived value is bound somewhere in this function."""
        return any(v.dtype is DType.FACTOR for v in self.env.values())

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        v = self.eval(value)
        check_factors_call = (
            isinstance(value, ast.Call)
            and _call_last_name(value) == "check_factors"
        )
        for t in targets:
            if isinstance(t, ast.Name):
                if t.id in ("factors", "factor") and is_pinned_f64(v):
                    self._diag(
                        "DF612",
                        value,
                        f"{t.id!r} is bound to a VALUE_DTYPE-pinned float64 "
                        "value; a float32 run is silently upcast at this "
                        "binding",
                        hint="derive the dtype from the runtime inputs "
                        "(value_dtype_of(tensor.values) / factor_dtype)",
                    )
                self.env[t.id] = v
            elif isinstance(t, (ast.Tuple, ast.List)):
                for i, elt in enumerate(t.elts):
                    if isinstance(elt, ast.Name):
                        if check_factors_call:
                            # (factors, rank) = check_factors(...)
                            self.env[elt.id] = FACTOR if i == 0 else UNKNOWN
                        else:
                            self.env[elt.id] = v
            # Subscript/attribute stores: effects pass territory.

    # -- expressions --------------------------------------------------
    def eval(self, node: "ast.expr | None") -> Value:
        if node is None:
            return BOTTOM
        if isinstance(node, ast.Constant):
            return BOTTOM  # python scalars promote weakly
        if isinstance(node, ast.Name):
            if node.id == "VALUE_DTYPE":
                return PINNED_F64
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in ("np", "numpy"):
                lit = _classify_dtype_literal(node)
                return Value(lit) if lit is not None else UNKNOWN
            if node.attr in ("dtype", "T", "real", "flat"):
                return self.eval(node.value)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            return self.eval(node.value)
        if isinstance(node, ast.BinOp):
            lhs = self.eval(node.left)
            rhs = self.eval(node.right)
            self._check_binop(node, lhs, rhs)
            return join_values(lhs, rhs)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            vals = [self.eval(e) for e in node.elts if not isinstance(e, ast.Starred)]
            return functools.reduce(join_values, vals, BOTTOM)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join_values(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.NamedExpr):
            v = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = v
            return v
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node.generators, node.elt)
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node.generators, node.value)
        if isinstance(node, ast.Compare):
            return BOTTOM
        return UNKNOWN

    def _eval_comprehension(
        self, generators: Sequence[ast.comprehension], elt: ast.expr
    ) -> Value:
        """Bind each generator target to its iterable's point, then the
        comprehension's point is the element expression's — so
        ``[np.ascontiguousarray(f, dtype=VALUE_DTYPE) for f in init]``
        carries the pinned-float64 provenance DF612 needs."""
        for gen in generators:
            v = self.eval(gen.iter)
            for sub in ast.walk(gen.target):
                if isinstance(sub, ast.Name):
                    self.env[sub.id] = v
            for cond in gen.ifs:
                self.eval(cond)
        return self.eval(elt)

    def _check_binop(self, node: ast.AST, lhs: Value, rhs: Value) -> None:
        if lhs.dtype in CONCRETE and rhs.dtype in CONCRETE and lhs.dtype is not rhs.dtype:
            rule = "DF605" if (lhs.via_call or rhs.via_call) else "DF604"
            via = " (one side arrived through a function summary)" if rule == "DF605" else ""
            self._diag(
                rule,
                node,
                f"mixed-precision operation: {lhs.dtype} combined with "
                f"{rhs.dtype}{via} silently widens float32 pipelines",
                hint="derive both operands from one dtype (factor_dtype / "
                "value_dtype_of) instead of pinning a literal precision",
            )

    def _eval_call(self, node: ast.Call) -> Value:
        f = node.func
        # .astype(...) and np.float64(...) casts -------------------------
        if isinstance(f, ast.Attribute) and f.attr == "astype":
            recv = self.eval(f.value)
            arg = node.args[0] if node.args else _dtype_argument(node, None)
            lit = _classify_dtype_literal(arg)
            if lit is DType.F64:
                if recv.dtype in (DType.FACTOR, DType.F32):
                    self._diag(
                        "DF603",
                        node,
                        "widening .astype(float64) on a factor-derived value "
                        "breaks the precision contract",
                        hint="cast to the pipeline's own dtype "
                        "(.astype(A.dtype) / the factor_dtype result)",
                    )
                return Value(DType.F64, recv.via_call)
            if lit is DType.F32:
                return Value(DType.F32, recv.via_call)
            if arg is not None:
                arg_v = self.eval(arg)
                if is_pinned_f64(arg_v) and recv.dtype in (DType.FACTOR, DType.F32):
                    self._diag(
                        "DF612",
                        node,
                        ".astype(VALUE_DTYPE) widens a factor-derived value "
                        "to the pinned float64 default",
                        hint="cast to the pipeline's own dtype "
                        "(.astype(A.dtype) / the factor_dtype result)",
                    )
                return arg_v
            return recv

        chain = _dotted_chain(f) if isinstance(f, ast.Attribute) else None
        if chain is not None and chain[0] in ("np", "numpy"):
            attr = f.attr  # type: ignore[union-attr]
            if attr in ("float64", "double"):
                arg_v = self.eval(node.args[0]) if node.args else BOTTOM
                if arg_v.dtype in (DType.FACTOR, DType.F32):
                    self._diag(
                        "DF603",
                        node,
                        "np.float64(...) widens a factor-derived value",
                        hint="stay in the factor dtype; use the array's own "
                        ".dtype for casts",
                    )
                return Value(DType.F64)
            if attr == "float32":
                return Value(DType.F32)
            if attr in _ALLOCATORS:
                dtype_node = _dtype_argument(node, _ALLOCATORS[attr])
                if dtype_node is None:
                    self._diag(
                        "DF602",
                        node,
                        f"np.{attr}(...) without an explicit dtype defaults "
                        "to float64 on a precision-contract path",
                        hint="pass dtype= derived from the inputs "
                        "(factor_dtype(factors), A.dtype)",
                    )
                    return Value(DType.F64)
                return self._dtype_value(node, dtype_node, f"np.{attr}")
            if attr in _LIKE_ALLOCATORS:
                dtype_node = _dtype_argument(node, None)
                if dtype_node is None:
                    return self.eval(node.args[0]) if node.args else UNKNOWN
                return self._dtype_value(node, dtype_node, f"np.{attr}")
            if attr in _COERCERS:
                dtype_node = _dtype_argument(node, None)
                if dtype_node is not None:
                    return self._dtype_value(node, dtype_node, f"np.{attr}")
                return self.eval(node.args[0]) if node.args else UNKNOWN
            # Other numpy functions: propagate the join of the args.
            vals = [self.eval(a) for a in node.args if not isinstance(a, ast.Starred)]
            return functools.reduce(join_values, vals, BOTTOM) if vals else UNKNOWN

        name = _call_last_name(node)
        if name in _FACTOR_CALLS:
            return FACTOR
        if name == "alloc_output":
            dtype_node = _dtype_argument(node, 3)
            if dtype_node is not None:
                return self._dtype_value(node, dtype_node, "alloc_output")
            # alloc_output's default is VALUE_DTYPE (float64).
            return Value(DType.F64)
        summary = self.summaries.get(name) if name else None
        if summary is not None and not (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
        ):
            for a in node.args:
                self.eval(a)
            return Value(summary.returns, via_call=True)
        # Unknown call; method calls keep their receiver's point so
        # `arr.sum()` / `f.max(axis=0)` stay in the pipeline's dtype.
        for a in node.args:
            self.eval(a)
        if isinstance(f, ast.Attribute):
            return self.eval(f.value)
        return UNKNOWN

    def _dtype_value(self, call: ast.Call, dtype_node: ast.expr, what: str) -> Value:
        lit = _classify_dtype_literal(dtype_node)
        if lit is DType.F64:
            self._diag(
                "DF601",
                call,
                f"{what}(..., dtype=float64) pins a literal precision on a "
                "precision-contract path",
                hint="derive the dtype from the inputs (factor_dtype, "
                ".dtype of the source array) or use VALUE_DTYPE if the "
                "promotion is the sanctioned default",
            )
            return Value(DType.F64)
        if lit is DType.F32:
            return Value(DType.F32)
        v = self.eval(dtype_node)
        if is_pinned_f64(v) and self._factor_live():
            self._diag(
                "DF612",
                call,
                f"{what}(..., dtype=VALUE_DTYPE) pins float64 while "
                "factor-derived values are live in this function — a "
                "float32 pipeline is silently upcast here",
                hint="derive the dtype from the inputs "
                "(value_dtype_of(tensor.values), factor_dtype(factors), "
                "A.dtype) rather than the VALUE_DTYPE default",
            )
        return v


# ---------------------------------------------------------------------
# Tracer placement (DF609-DF610)
# ---------------------------------------------------------------------
def _is_tracer_emission(node: ast.Call) -> bool:
    f = node.func
    if not (isinstance(f, ast.Attribute) and f.attr in _TRACER_EMITTERS):
        return False
    recv = f.value
    if isinstance(recv, ast.Call) and _call_last_name(recv) == "current_tracer":
        return True
    if isinstance(recv, ast.Name):
        receiver = recv.id
    elif isinstance(recv, ast.Attribute):
        chain = _dotted_chain(recv)
        receiver = chain[1] if chain else ""
    else:
        return False
    return "tracer" in receiver.lower()


class _TracerVisitor(ast.NodeVisitor):
    """Walks one function keeping a loop stack; emission inside a
    per-element loop is DF609, emission inside any loop of a kernel
    body is DF610."""

    def __init__(self, file: str, kernel_scope: bool, diags: list) -> None:
        self.file = file
        self.kernel_scope = kernel_scope
        self.diags = diags
        self._loops: list[bool] = []  # True = per-element loop
        self._seen: set[tuple[str, int]] = set()

    def visit_For(self, node: ast.For) -> None:
        per_element = _per_element_index_var(node) is not None
        self._loops.append(per_element)
        self.generic_visit(node)
        self._loops.pop()

    def visit_While(self, node: ast.While) -> None:
        self._loops.append(False)
        self.generic_visit(node)
        self._loops.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs start their own loop context.
        saved, self._loops = self._loops, []
        self.generic_visit(node)
        self._loops = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        if _is_tracer_emission(node):
            emitter = node.func.attr  # type: ignore[union-attr]
            if any(self._loops) and ("DF609", node.lineno) not in self._seen:
                self._seen.add(("DF609", node.lineno))
                self.diags.append(
                    Diagnostic(
                        "DF609",
                        self.file,
                        node.lineno,
                        node.col_offset,
                        f"tracer.{emitter}(...) inside a per-element loop is "
                        "O(nnz) overhead the tracer design forbids",
                        hint="accumulate into a local and emit one counter/span "
                        "per call, as kernels.base._traced_execute does",
                    )
                )
            elif (
                self.kernel_scope
                and self._loops
                and ("DF610", node.lineno) not in self._seen
            ):
                self._seen.add(("DF610", node.lineno))
                self.diags.append(
                    Diagnostic(
                        "DF610",
                        self.file,
                        node.lineno,
                        node.col_offset,
                        f"tracer.{emitter}(...) inside a kernel loop runs per "
                        "block/chunk; kernel hooks must emit per call",
                        hint="move the emission outside the loop (the execute "
                        "wrapper already records per-call totals)",
                    )
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------
# Write effects (DF606-DF608)
# ---------------------------------------------------------------------
def _effect_diags(
    fn: ast.FunctionDef,
    info: "ModuleInfo | None",
    summaries: dict,
    file: str,
    *,
    context: str,
    what: str,
) -> list:
    """DF606/DF607 findings for one worker-task or kernel-method body.

    ``context`` is ``process``/``thread``/``any`` for pool tasks or
    ``kernel`` for prepare/execute bodies; ``what`` names the function
    in messages.
    """
    diags: list[Diagnostic] = []
    local = set(_param_names(fn)) | _assigned_names(fn)
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    reported: set[tuple[str, int]] = set()

    def report(rule: str, node: ast.AST, message: str, hint: str) -> None:
        key = (rule, getattr(node, "lineno", 1))
        if key in reported:
            return
        reported.add(key)
        diags.append(
            Diagnostic(
                rule,
                file,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
                hint=hint,
            )
        )

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Name) and t.id in declared_global:
                    report(
                        "DF606",
                        node,
                        f"{what} rebinds module-level {t.id!r} via `global`",
                        hint="workers/kernels must write only through their "
                        "arguments (the partitioned output view)",
                    )
                elif isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = _store_root(t)
                    if root is not None and root not in local:
                        report(
                            "DF606",
                            node,
                            f"{what} writes through {root!r}, which is not "
                            "derived from its arguments (module-level or "
                            "closure state)",
                            hint="pass the buffer in explicitly; parallel "
                            "workers sharing hidden state race or silently "
                            "diverge under the process backend",
                        )
        elif isinstance(node, ast.Call):
            name = _call_last_name(node)
            s = summaries.get(name) if name else None
            if s is not None and s.global_writes:
                report(
                    "DF606",
                    node,
                    f"{what} calls {name}(), which writes module-level "
                    f"state ({', '.join(s.global_writes)})",
                    hint="thread the state through arguments; hidden helper "
                    "writes break worker isolation",
                )
        elif (
            context == "process"
            and isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and info is not None
            and node.id in info.mutable_globals
            and node.id not in local
        ):
            report(
                "DF607",
                node,
                f"process-backend task {what} captures module-level mutable "
                f"{node.id!r}; the child re-imports its own copy, so writes "
                "and reads silently diverge from the parent",
                hint="pass the data as an argument (pickled once per task) "
                "or reconstruct it in the child",
            )
    return diags


def _submit_diags(info: ModuleInfo, file: str) -> list:
    """DF608: unpicklable callables/arguments at process-pool submit sites."""
    diags: list[Diagnostic] = []
    for call, ctx, local_defs in info.submit_sites:
        if ctx != "process":
            continue
        callee = call.args[0] if call.args else None
        bad: "str | None" = None
        if isinstance(callee, ast.Lambda):
            bad = "a lambda"
        elif isinstance(callee, ast.Name) and callee.id in local_defs:
            bad = f"nested function {callee.id!r}"
        if bad is not None:
            diags.append(
                Diagnostic(
                    "DF608",
                    file,
                    call.lineno,
                    call.col_offset,
                    f"process pool submit() receives {bad}, which cannot be "
                    "pickled into the worker process",
                    hint="move the task function to module level",
                )
            )
        for arg in call.args[1:]:
            if isinstance(arg, ast.Lambda):
                diags.append(
                    Diagnostic(
                        "DF608",
                        file,
                        arg.lineno,
                        arg.col_offset,
                        "lambda argument to a process-pool task cannot be "
                        "pickled",
                        hint="pass data, not callables, to process workers",
                    )
                )
            elif (
                isinstance(arg, ast.Call)
                and _call_last_name(arg) in _UNPICKLABLE_CTORS
            ):
                diags.append(
                    Diagnostic(
                        "DF608",
                        file,
                        arg.lineno,
                        arg.col_offset,
                        f"{_call_last_name(arg)}() result passed to a "
                        "process-pool task is not picklable",
                        hint="create locks/handles inside the worker instead",
                    )
                )
    return diags


# ---------------------------------------------------------------------
# File-level entry points
# ---------------------------------------------------------------------
def scan_module(
    tree: ast.Module, file: str, summaries: "dict | None" = None
) -> list:
    """Run every dataflow check over one parsed module."""
    summaries = summaries if summaries is not None else {}
    info = module_info(tree, file)
    diags: list[Diagnostic] = []
    dtype_scope_file = is_dtype_scope(file)
    kernel_file = is_kernel_file(file)

    for fn, kernel_cls in info.functions:
        in_kernel = kernel_cls is not None and fn.name in ("prepare", "execute")
        # Dtype propagation (DF601-DF605).
        analyzer = _DtypeAnalyzer(
            info,
            summaries,
            diags,
            check_dtype=dtype_scope_file or in_kernel,
            file=file,
        )
        analyzer.run(fn)
        # Tracer placement (DF609 everywhere, DF610 in kernel scope).
        _TracerVisitor(file, kernel_file or in_kernel, diags).visit(fn)
        # Write effects (DF606/DF607) for workers and kernel bodies.
        ctx = info.worker_context.get(fn.name)
        if ctx is not None or in_kernel:
            diags.extend(
                _effect_diags(
                    fn,
                    info,
                    summaries,
                    file,
                    context=ctx or "kernel",
                    what=(
                        f"{kernel_cls}.{fn.name}()" if in_kernel else f"{fn.name}()"
                    ),
                )
            )
    diags.extend(_submit_diags(info, file))
    return diags


def scan_source(
    source: str, file: str, summaries: "dict | None" = None
) -> list:
    """Single-file convenience: parse and :func:`scan_module`.

    When no ``summaries`` table is given one is built from this file
    alone, so single-module interprocedural findings still work.
    """
    try:
        tree = ast.parse(source, filename=file)
    except SyntaxError:  # the contract pass reports the parse failure
        return []
    if summaries is None:
        summaries = build_summaries([module_info(tree, file)])
    return scan_module(tree, file, summaries)


def scan_files(sources: dict, parsed: "dict | None" = None) -> dict:
    """The interprocedural entry the runner uses: build one summary
    table across every file, then scan each against it.  Returns
    ``{file: [Diagnostic, ...]}`` (pre-suppression).

    ``parsed`` optionally maps file -> pre-parsed ``ast.Module`` (the
    runner's shared parse cache); files absent from it are parsed here.
    """
    trees: dict[str, ast.Module] = {}
    for file, source in sources.items():
        cached = parsed.get(file) if parsed else None
        if cached is not None:
            trees[file] = cached
            continue
        try:
            trees[file] = ast.parse(source, filename=file)
        except SyntaxError:
            continue
    modules = [module_info(tree, file) for file, tree in trees.items()]
    summaries = build_summaries(modules)
    return {
        file: scan_module(tree, file, summaries)
        for file, tree in trees.items()
    }


# ---------------------------------------------------------------------
# Registration-time gate (DF611)
# ---------------------------------------------------------------------
#: Classes already vetted clean this process (skip repeat work when
#: `register_kernel` re-vets an already-defined class).
_VETTED_OK: "weakref.WeakSet" = weakref.WeakSet()


def dataflow_vet_enabled() -> bool:
    """The env opt-out: ``REPRO_DATAFLOW_VET=0|false|off|no`` disables
    the DF611 registration gate."""
    return os.environ.get(VET_ENV_VAR, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def vet_kernel_class(cls: type) -> list:
    """Dataflow diagnostics for a Kernel subclass's own ``prepare`` /
    ``execute`` bodies (inherited methods were vetted with their class).

    Source is recovered through :func:`inspect.getsource`; dynamically
    generated classes (``exec``/``type``) have none and are skipped —
    the file-level ``repro check --dataflow`` pass covers code on disk.
    Inline ``# repro: noqa[...]`` suppressions are honoured.
    """
    diags: list[Diagnostic] = []
    for meth in ("prepare", "execute"):
        impl = cls.__dict__.get(meth)
        if impl is None:
            continue
        impl = inspect.unwrap(impl)
        code = getattr(impl, "__code__", None)
        if code is None:
            continue
        try:
            segment = textwrap.dedent(inspect.getsource(impl))
        except (OSError, TypeError):
            continue
        try:
            tree = ast.parse(segment)
        except SyntaxError:
            continue
        fn = tree.body[0] if tree.body else None
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        meth_diags: list[Diagnostic] = []
        analyzer = _DtypeAnalyzer(
            None, {}, meth_diags, check_dtype=True, file=code.co_filename
        )
        analyzer.run(fn)
        _TracerVisitor(code.co_filename, True, meth_diags).visit(fn)
        meth_diags.extend(
            _effect_diags(
                fn,
                None,
                {},
                code.co_filename,
                context="kernel",
                what=f"{cls.__name__}.{meth}()",
            )
        )
        meth_diags = apply_suppressions(
            meth_diags, suppressions_for_source(segment)
        )
        # Shift segment-relative lines back to absolute file positions.
        offset = code.co_firstlineno - fn.lineno
        diags.extend(replace(d, line=d.line + offset) for d in meth_diags)
    return diags


def enforce_kernel_dataflow(cls: type) -> None:
    """The DF611 gate: raise ``RegistrationError`` when a Kernel
    subclass's body trips any error-severity dataflow rule.

    Called from ``Kernel.__init_subclass__`` (class-definition time) and
    ``register_kernel`` (registration time).  No-op when the
    ``REPRO_DATAFLOW_VET`` opt-out is set or the class was already
    vetted clean in this process.
    """
    if not dataflow_vet_enabled() or cls in _VETTED_OK:
        return
    errors = [d for d in vet_kernel_class(cls) if d.severity is Severity.ERROR]
    if errors:
        from repro.util.errors import RegistrationError

        listing = "\n  ".join(d.format() for d in errors)
        raise RegistrationError(
            f"DF611: kernel class {cls.__name__!r} failed registration-time "
            f"dataflow vetting ({len(errors)} error(s); set "
            f"{VET_ENV_VAR}=0 to bypass):\n  {listing}"
        )
    _VETTED_OK.add(cls)


def vet_backend_fn(fn, label: "str | None" = None) -> list:
    """Dataflow diagnostics for a backend op function (DF613 scope).

    Backend ops registered through :func:`repro.backends.register_backend`
    replace certified kernel ``execute`` bodies at dispatch time, so they
    get the same registration-time scrutiny kernel methods get: the dtype
    lattice, the tracer-placement rules, and the effect rules all run
    over the function's own source.  Dynamically generated functions
    (no retrievable source) are skipped, as with kernel classes; inline
    ``# repro: noqa[...]`` suppressions are honoured.
    """
    impl = inspect.unwrap(fn)
    code = getattr(impl, "__code__", None)
    if code is None:
        return []
    try:
        segment = textwrap.dedent(inspect.getsource(impl))
    except (OSError, TypeError):
        return []
    try:
        tree = ast.parse(segment)
    except SyntaxError:
        return []
    node = tree.body[0] if tree.body else None
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    diags: list[Diagnostic] = []
    analyzer = _DtypeAnalyzer(
        None, {}, diags, check_dtype=True, file=code.co_filename
    )
    analyzer.run(node)
    _TracerVisitor(code.co_filename, True, diags).visit(node)
    diags.extend(
        _effect_diags(
            node,
            None,
            {},
            code.co_filename,
            context="kernel",
            what=label or f"{impl.__module__}.{impl.__qualname__}()",
        )
    )
    diags = apply_suppressions(diags, suppressions_for_source(segment))
    offset = code.co_firstlineno - node.lineno
    return [replace(d, line=d.line + offset) for d in diags]


_VETTED_FNS: set = set()


def enforce_backend_dataflow(fn, label: "str | None" = None) -> None:
    """The DF613 gate: raise ``RegistrationError`` when a backend op's
    body trips any error-severity dataflow rule.

    Called by :func:`repro.backends.register_backend` for every op a
    backend declares.  Honours the same ``REPRO_DATAFLOW_VET`` opt-out
    as the kernel-class gate, and caches clean functions per process.
    """
    key = getattr(fn, "__wrapped__", fn)
    if not dataflow_vet_enabled() or id(key) in _VETTED_FNS:
        return
    errors = [
        d for d in vet_backend_fn(fn, label) if d.severity is Severity.ERROR
    ]
    if errors:
        from repro.util.errors import RegistrationError

        listing = "\n  ".join(d.format() for d in errors)
        raise RegistrationError(
            f"DF613: backend op {label or getattr(fn, '__qualname__', fn)!r} "
            f"failed registration-time dataflow vetting ({len(errors)} "
            f"error(s); set {VET_ENV_VAR}=0 to bypass):\n  {listing}"
        )
    _VETTED_FNS.add(id(key))
