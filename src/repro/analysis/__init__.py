"""Static analysis for the kernel zoo and its parallel schedules.

Three passes behind one diagnostic model (``repro check``):

* :mod:`repro.analysis.contract` — AST kernel-contract checker: every
  registered kernel conforms to the :class:`~repro.kernels.base.Kernel` /
  :class:`~repro.kernels.base.Plan` ABCs (rules KC101-KC111);
* :mod:`repro.analysis.races` — symbolic blocked-schedule race detector:
  proves parallel tasks write disjoint mode-n output rows, or reports the
  conflicting pairs and whether privatized accumulators fix them (rules
  RS201-RS202); wired into :mod:`repro.perf.parallel` and
  :mod:`repro.dist.mttkrp`;
* :mod:`repro.analysis.hotpath` — hot-path performance lint for kernel
  modules: devectorized loops, repeated attribute lookups, silent dtype
  promotion (rules HP301-HP303);
* :mod:`repro.analysis.plans` — symbolic plan verifier: proves blocking
  grids, rank strips, thread ranges, and distributed decompositions tile
  their index spaces exactly once, and that tuner outputs fit their
  cache-level target (rules PL401-PL409); wired into
  :mod:`repro.tune.tuner`, :mod:`repro.perf.parallel`, and
  :mod:`repro.dist.mttkrp`;
* :mod:`repro.analysis.sanitize` — instrumented kernel execution: checks
  observed writes against the plan's declared write-set, gather bounds,
  NaN/Inf emergence, dtype drift, and the traffic-model footprint
  (rules SZ501-SZ506; ``repro sanitize``);
* :mod:`repro.analysis.dataflow` — interprocedural dtype & effect
  dataflow (opt-in via ``repro check --dataflow``): propagates a
  precision lattice to prove the float32 contract statically, infers
  worker-task write effects, and lints tracer placement (rules
  DF601-DF610); DF611 is its registration-time gate in
  ``Kernel.__init_subclass__`` / ``register_kernel``;
* :mod:`repro.analysis.cost` — symbolic loop-nest cost certifier
  (opt-in via ``repro check --cost``): abstractly interprets each
  shipped kernel's ``execute`` body into per-array polynomial access
  certificates and proves they match ``estimate_traffic`` /
  ``predicted_footprint``, the plan's declared ``write_set()``, and the
  obs counter emissions (rules CT701-CT707, CT709);
  :mod:`repro.analysis.calibrate` closes the loop at runtime by
  cross-checking measured counters against the certificates on tiny
  seeded tensors (CT708; ``repro check --cost --calibrate``).

Unused ``# repro: noqa`` suppressions are reported as DG001.  Findings
render as text, JSON, or SARIF 2.1.0 (:mod:`repro.analysis.sarif`).

Rule catalog with rationale and suppression: ``docs/static-analysis.md``.
"""

from repro.analysis.dataflow import (
    DType,
    FunctionSummary,
    dataflow_vet_enabled,
    enforce_kernel_dataflow,
    join,
    scan_files,
    vet_kernel_class,
)
from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    render_json,
    render_text,
    resolve_rules,
    rule_family_counts,
    unused_suppression_diagnostics,
)
from repro.analysis.sarif import render_sarif, to_sarif
from repro.analysis.plans import (
    tiling_report,
    verify_decomposition,
    verify_grid,
    verify_plan,
    verify_rank_blocking,
    verify_thread_ranges,
)
from repro.analysis.sanitize import SanitizeReport, sanitized_execute
from repro.analysis.races import (
    Conflict,
    RaceReport,
    TaskWriteSet,
    check_schedule,
    detect_conflicts,
    verify_fold_covers_conflicts,
    verify_safe,
    write_sets_for_blocked,
    write_sets_for_boundaries,
    write_sets_for_coo_chunks,
    write_sets_for_decomposition,
    write_sets_for_grid,
    write_sets_for_ranges,
)
from repro.analysis.calibrate import calibrate_all, calibrate_kernel
from repro.analysis.cost import (
    KERNEL_COST_SPECS,
    CostCertificate,
    certify_all,
    certify_kernel,
    certify_kernel_source,
    cost_vet_enabled,
    derive_certificate,
    enforce_kernel_cost,
)
from repro.analysis.runner import CheckResult, ParseCache, run_check
from repro.analysis.symbolic import Poly, poly_sum

__all__ = [
    "RULES",
    "Diagnostic",
    "Rule",
    "Severity",
    "render_json",
    "render_text",
    "resolve_rules",
    "Conflict",
    "RaceReport",
    "TaskWriteSet",
    "check_schedule",
    "detect_conflicts",
    "verify_fold_covers_conflicts",
    "verify_safe",
    "write_sets_for_blocked",
    "write_sets_for_boundaries",
    "write_sets_for_coo_chunks",
    "write_sets_for_decomposition",
    "write_sets_for_grid",
    "write_sets_for_ranges",
    "rule_family_counts",
    "tiling_report",
    "verify_decomposition",
    "verify_grid",
    "verify_plan",
    "verify_rank_blocking",
    "verify_thread_ranges",
    "SanitizeReport",
    "sanitized_execute",
    "CheckResult",
    "ParseCache",
    "run_check",
    "Poly",
    "poly_sum",
    "KERNEL_COST_SPECS",
    "CostCertificate",
    "certify_all",
    "certify_kernel",
    "certify_kernel_source",
    "cost_vet_enabled",
    "derive_certificate",
    "enforce_kernel_cost",
    "calibrate_all",
    "calibrate_kernel",
    "DType",
    "FunctionSummary",
    "dataflow_vet_enabled",
    "enforce_kernel_dataflow",
    "join",
    "scan_files",
    "vet_kernel_class",
    "unused_suppression_diagnostics",
    "render_sarif",
    "to_sarif",
]
