"""Static analysis for the kernel zoo and its parallel schedules.

Three passes behind one diagnostic model (``repro check``):

* :mod:`repro.analysis.contract` — AST kernel-contract checker: every
  registered kernel conforms to the :class:`~repro.kernels.base.Kernel` /
  :class:`~repro.kernels.base.Plan` ABCs (rules KC101-KC111);
* :mod:`repro.analysis.races` — symbolic blocked-schedule race detector:
  proves parallel tasks write disjoint mode-n output rows, or reports the
  conflicting pairs and whether privatized accumulators fix them (rules
  RS201-RS202); wired into :mod:`repro.perf.parallel` and
  :mod:`repro.dist.mttkrp`;
* :mod:`repro.analysis.hotpath` — hot-path performance lint for kernel
  modules: devectorized loops, repeated attribute lookups, silent dtype
  promotion (rules HP301-HP303).

Rule catalog with rationale and suppression: ``docs/static-analysis.md``.
"""

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    render_json,
    render_text,
    resolve_rules,
)
from repro.analysis.races import (
    Conflict,
    RaceReport,
    TaskWriteSet,
    check_schedule,
    detect_conflicts,
    verify_fold_covers_conflicts,
    verify_safe,
    write_sets_for_blocked,
    write_sets_for_boundaries,
    write_sets_for_coo_chunks,
    write_sets_for_decomposition,
    write_sets_for_grid,
    write_sets_for_ranges,
)
from repro.analysis.runner import CheckResult, run_check

__all__ = [
    "RULES",
    "Diagnostic",
    "Rule",
    "Severity",
    "render_json",
    "render_text",
    "resolve_rules",
    "Conflict",
    "RaceReport",
    "TaskWriteSet",
    "check_schedule",
    "detect_conflicts",
    "verify_fold_covers_conflicts",
    "verify_safe",
    "write_sets_for_blocked",
    "write_sets_for_boundaries",
    "write_sets_for_coo_chunks",
    "write_sets_for_decomposition",
    "write_sets_for_grid",
    "write_sets_for_ranges",
    "CheckResult",
    "run_check",
]
