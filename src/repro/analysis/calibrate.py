"""Runtime calibration of symbolic cost certificates (CT708/CT709).

The static certifier (:mod:`repro.analysis.cost`) proves that each
kernel's loop nest matches the traffic model's polynomials.  This module
closes the loop at runtime: it runs every shipped kernel on a tiny
seeded tensor under an enabled :class:`~repro.obs.Tracer` and
cross-checks three independent witnesses **exactly** (Fraction
arithmetic, no tolerances):

* the measured ``kernel.*`` counters against the certificate's counter
  polynomials evaluated at the plan's real ``block_stats()``;
* ``predicted_footprint``'s B/C access counts against the certificate's
  derived gather-row polynomials;
* ``estimate_traffic``'s tensor-stream bytes against the summed
  canonical stream-byte polynomials.

Any inequality is CT708 (calibration drift: the model, the kernel, or
the counter emission moved and the others did not follow).  A kernel
that cannot be run or whose certificate cannot be evaluated on the
calibration plan (unbound symbol, missing counter) is CT709.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.analysis.cost import (
    KERNEL_COST_SPECS,
    CostCertificate,
    KernelCostSpec,
    ModuleRegistry,
    certify_kernel,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.symbolic import Poly, poly_sum

#: Per-kernel prepare() parameters for the calibration plans.  Rank 8
#: with 2 rank blocks gives exact 4-column strips; 2x2x2 grids exercise
#: the block loops without degenerating to one block.
CALIBRATION_PARAMS: dict[str, dict] = {
    "coo": {},
    "splatt": {},
    "csf": {},
    "csf-any": {"mode_order": (0, 1, 2)},
    "mb": {"block_counts": (2, 2, 2)},
    "rankb": {"n_rank_blocks": 2},
    "mb+rankb": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
    "csf-blocked": {"block_counts": (2, 2, 2), "n_rank_blocks": 2},
}

CALIBRATION_SHAPE = (12, 10, 8)
CALIBRATION_EVENTS = 400
CALIBRATION_RANK = 8
CALIBRATION_SEED = 20180521  # IPDPS'18 presentation date


def calibration_env(plan, rank: int) -> dict[str, int]:
    """Bind the certificate symbols to one concrete plan."""
    stats = plan.block_stats()
    rank_blocking = getattr(plan, "rank_blocking", None)
    n_strips = (
        rank_blocking.n_strips(rank) if rank_blocking is not None else 1
    )
    return {
        "nnz": sum(b.nnz for b in stats),
        "n_fibers": sum(b.n_fibers for b in stats),
        "distinct_out": sum(b.distinct_out for b in stats),
        "R": rank,
        "n_strips": n_strips,
        "itemsize": 8,  # float64 calibration factors
        "I_out": int(plan.shape[plan.mode]),
    }


def _eval(poly: Poly, env: Mapping[str, int]) -> Fraction:
    return poly.evaluate(env)


def _drift(
    file: str,
    line: int,
    kernel: str,
    what: str,
    measured: object,
    predicted: object,
) -> Diagnostic:
    return Diagnostic(
        "CT708",
        file,
        line,
        0,
        f"kernel {kernel!r} calibration drift in {what}: measured "
        f"{measured} != certificate {predicted}",
        hint="the kernel, the traffic model, and the counter emissions "
        "must agree exactly; re-derive whichever moved",
    )


def _unverifiable(
    file: str, line: int, kernel: str, detail: str
) -> Diagnostic:
    return Diagnostic(
        "CT709",
        file,
        line,
        0,
        f"kernel {kernel!r} certificate unverifiable at calibration: "
        f"{detail}",
        hint="the calibration run must bind every certificate symbol "
        "and produce every counter the certificate predicts",
    )


def calibrate_kernel(
    name: str,
    cert: "CostCertificate | None" = None,
    registry: "ModuleRegistry | None" = None,
) -> list[Diagnostic]:
    """Run one kernel on the calibration tensor and cross-check the
    measured counters, footprint prediction, and traffic estimate
    against its certificate."""
    import numpy as np

    from repro.kernels import get_kernel
    from repro.machine.spec import power8
    from repro.machine.traffic import estimate_traffic, predicted_footprint
    from repro.obs import Tracer, use_tracer
    from repro.tensor import poisson_tensor

    spec: KernelCostSpec = KERNEL_COST_SPECS[name]
    registry = registry or ModuleRegistry()
    if cert is None:
        cert, diags = certify_kernel(name, registry)
        if cert is None:
            return diags
    file = cert.file
    kernel = get_kernel(name)
    tensor = poisson_tensor(
        CALIBRATION_SHAPE, CALIBRATION_EVENTS, seed=CALIBRATION_SEED
    )
    rank = CALIBRATION_RANK
    try:
        plan = kernel.prepare(tensor, 0, **CALIBRATION_PARAMS[name])
        rng = np.random.default_rng(CALIBRATION_SEED + 1)
        factors = [rng.standard_normal((n, rank)) for n in tensor.shape]
        tracer = Tracer()
        with use_tracer(tracer):
            kernel.execute(plan, factors)
    except Exception as exc:  # noqa: BLE001 - reported as CT709
        return [
            _unverifiable(
                file, cert.exec_line, name, f"calibration run failed: {exc}"
            )
        ]
    env = calibration_env(plan, rank)
    diags: list[Diagnostic] = []

    # 1) measured obs counters vs certificate counter polynomials
    counter_polys = {
        "kernel.gathers": cert.gathers_counter(),
        "kernel.factor_bytes": cert.factor_bytes_counter(),
    }
    for counter, poly in counter_polys.items():
        if counter not in tracer.counters:
            diags.append(
                _unverifiable(
                    file,
                    cert.exec_line,
                    name,
                    f"counter {counter!r} was never emitted",
                )
            )
            continue
        measured = Fraction(tracer.counters[counter]).limit_denominator()
        try:
            predicted = _eval(poly, env)
        except KeyError as exc:
            diags.append(
                _unverifiable(
                    file,
                    cert.exec_line,
                    name,
                    f"counter {counter!r} polynomial has unbound symbol "
                    f"{exc.args[0]!r}",
                )
            )
            continue
        if measured != predicted:
            diags.append(
                _drift(
                    file,
                    cert.exec_line,
                    name,
                    counter,
                    measured,
                    predicted,
                )
            )

    # 2) predicted_footprint access counts vs derived gather rows
    fp = predicted_footprint(plan, rank)
    for role, measured_rows in (
        ("B", Fraction(fp.b_accesses)),
        ("C", Fraction(fp.c_accesses)),
    ):
        poly = cert.gather_rows.get(role)
        line = cert.gather_lines.get(role, cert.exec_line)
        if poly is None:
            diags.append(
                _unverifiable(
                    file,
                    line,
                    name,
                    f"certificate derived no {role} gathers to compare "
                    "against predicted_footprint",
                )
            )
            continue
        try:
            predicted = _eval(poly, env)
        except KeyError as exc:
            diags.append(
                _unverifiable(
                    file,
                    line,
                    name,
                    f"{role} gather polynomial has unbound symbol "
                    f"{exc.args[0]!r}",
                )
            )
            continue
        if measured_rows != predicted:
            diags.append(
                _drift(
                    file,
                    line,
                    name,
                    f"{role} gather rows",
                    measured_rows,
                    predicted,
                )
            )

    # 3) estimate_traffic stream bytes vs summed canonical stream polys
    est = estimate_traffic(plan, rank, power8(), itemsize=8)
    measured_bytes = Fraction(est.stream_read_bytes).limit_denominator()
    try:
        predicted_bytes = _eval(
            poly_sum(cert.stream_bytes.values()), env
        )
    except KeyError as exc:
        diags.append(
            _unverifiable(
                file,
                cert.exec_line,
                name,
                f"stream-byte polynomial has unbound symbol "
                f"{exc.args[0]!r}",
            )
        )
    else:
        if measured_bytes != predicted_bytes:
            diags.append(
                _drift(
                    file,
                    cert.exec_line,
                    name,
                    "tensor stream bytes",
                    measured_bytes,
                    predicted_bytes,
                )
            )
    return diags


def calibrate_all(
    certificates: "Mapping[str, CostCertificate] | None" = None,
) -> dict[str, list[Diagnostic]]:
    """Calibrate every shipped kernel; returns diagnostics keyed by
    file (merged into the runner's stream like any other pass)."""
    registry = ModuleRegistry()
    by_file: dict[str, list[Diagnostic]] = {}
    for name in KERNEL_COST_SPECS:
        cert = certificates.get(name) if certificates else None
        for d in calibrate_kernel(name, cert, registry):
            by_file.setdefault(d.file, []).append(d)
    return by_file
